#!/usr/bin/env python
"""Turnstile quantiles over a live inventory (insertions AND deletions).

Comparison-based summaries cannot survive deletions (Section 1.2.2's
impossibility argument: insert n items, delete all but one), so this is
where the dyadic sketches earn their keep.

Scenario: an order book tracks resting orders by price tick.  Orders are
placed (insert) and filled or cancelled (delete); the exchange wants live
price percentiles over *currently resting* orders — e.g. the median
resting price, or which price has 90% of orders below it.  We stream a
day of order flow through DCS with OLS post-processing and check the
answers against an exact order book.

Run:  python examples/turnstile_inventory.py
"""

from __future__ import annotations

import numpy as np

from repro import DCSWithPostProcessing
from repro.streams import churn_stream, remaining_values

PRICE_BITS = 16  # price ticks in [0, 65536)
OPS = 300_000
EPS = 0.01
CHECKPOINTS = [50_000, 150_000, 300_000]
PHIS = [0.1, 0.5, 0.9]


def replay(sketch, ops) -> None:
    """Feed update pairs through the sketch's vectorized batch path.

    DCS is a *linear* sketch — its state is a sum of per-update
    contributions — so inserts and deletes within a chunk can be applied
    in any order; batching changes nothing but speed.
    """
    prices = np.asarray([price for price, _delta in ops], dtype=np.int64)
    deltas = np.asarray([delta for _price, delta in ops], dtype=np.int64)
    inserts = prices[deltas == 1]
    deletes = prices[deltas == -1]
    if len(inserts):
        sketch.update_batch(inserts)
    if len(deletes):
        sketch.update_batch(deletes, -1)


def main() -> None:
    print(f"replaying {OPS:,} order-book events (45% cancels/fills)")
    ops = churn_stream(
        OPS, universe_log2=PRICE_BITS, delete_fraction=0.45, seed=17
    )
    sketch = DCSWithPostProcessing(
        eps=EPS, universe_log2=PRICE_BITS, seed=5
    )

    worst = 0.0
    done = 0
    for checkpoint in CHECKPOINTS:
        replay(sketch, ops[done:checkpoint])
        done = checkpoint
        resting = remaining_values(ops[:checkpoint])
        n = len(resting)
        print(f"\nafter {checkpoint:,} events: {n:,} resting orders "
              f"(sketch: {sketch.size_bytes() / 1024:.0f} KB)")
        print(f"{'phi':>5} | {'sketch tick':>11} | {'exact tick':>10} "
              f"| rank err")
        print("-" * 48)
        for phi in PHIS:
            approx = sketch.query(phi)
            truth = int(resting[min(n - 1, int(phi * n))])
            lo = int(np.searchsorted(resting, approx, "left"))
            hi = int(np.searchsorted(resting, approx, "right"))
            err = 0.0 if lo <= phi * n <= hi else min(
                abs(phi * n - lo), abs(phi * n - hi)
            )
            worst = max(worst, err / n)
            print(f"{phi:>5} | {approx:>11} | {truth:>10} "
                  f"| {err / n:.2e}")

    print(f"\nworst observed rank error: {worst:.2e} (eps = {EPS})")
    assert worst <= EPS, "turnstile guarantee violated"
    print("the order book was summarized through heavy churn — something "
          "no comparison-based summary can do.")


if __name__ == "__main__":
    main()
