#!/usr/bin/env python
"""Distribution drift detection via sliding-window quantiles and the
Kolmogorov–Smirnov divergence.

The paper's introduction motivates quantiles as the nonparametric way to
describe and *compare* distributions — Q-Q plots and the KS divergence.
This example puts that to work: a model-serving pipeline watches a
feature's distribution for drift, comparing a reference summary (built
during training) against a sliding window over live traffic.

Scenario: a credit-score-like feature streams in.  Halfway through, an
upstream schema change rescales it.  The monitor compares window vs
reference with KS every batch and raises drift when KS exceeds a
threshold; it also prints the equi-probable histogram so an operator can
see *where* the distributions diverge.

Run:  python examples/drift_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import GKArray
from repro.cash_register.sliding_window import SlidingWindowQuantiles
from repro.evaluation.analysis import describe, ks_distance, pdf_histogram

WINDOW = 20_000
BATCH = 10_000
BATCHES = 12
DRIFT_AT = 6  # batches before the upstream change
KS_THRESHOLD = 0.15


def batch_of_scores(batch_idx: int, rng: np.random.Generator) -> np.ndarray:
    scores = rng.beta(5, 2, size=BATCH) * 800 + 100
    if batch_idx >= DRIFT_AT:
        scores = scores * 0.7 + 50  # upstream rescaling bug
    return scores


def main() -> None:
    rng = np.random.default_rng(5)

    # Reference distribution from "training time".
    reference = GKArray(eps=0.002)
    reference.extend((rng.beta(5, 2, size=100_000) * 800 + 100).tolist())
    ref_card = describe(reference)
    print(
        f"reference: n={ref_card.n:,} median={ref_card.median:.0f} "
        f"iqr={ref_card.iqr:.0f} p01={ref_card.p01:.0f} "
        f"p99={ref_card.p99:.0f}"
    )

    window = SlidingWindowQuantiles(eps=0.01, window=WINDOW)
    drift_flagged_at = None

    print(f"\n{'batch':>5} | {'win median':>10} | {'KS':>6} | status")
    print("-" * 42)
    for batch_idx in range(BATCHES):
        for x in batch_of_scores(batch_idx, rng).tolist():
            window.update(x)
        ks = ks_distance(window, reference, resolution=100)
        status = "ok"
        if ks > KS_THRESHOLD and drift_flagged_at is None:
            drift_flagged_at = batch_idx
            status = "DRIFT"
        elif ks > KS_THRESHOLD:
            status = "drift (ongoing)"
        print(
            f"{batch_idx:>5} | {float(window.query(0.5)):>10.0f} | "
            f"{ks:>6.3f} | {status}"
        )

    assert drift_flagged_at is not None, "drift was never detected"
    assert drift_flagged_at >= DRIFT_AT, "false positive before the change"
    lag = drift_flagged_at - DRIFT_AT
    print(f"\ndrift detected {lag} batch(es) after the change "
          f"(window must part-fill with new data first)")

    # Show WHERE the distributions diverge: side-by-side histograms.
    print("\nequi-probable histogram (density x 1e3):")
    ref_edges, ref_dens = pdf_histogram(reference, bins=10)
    win_edges, win_dens = pdf_histogram(window, bins=10)
    print(f"{'ref bucket':>15} {'dens':>6} | {'window bucket':>15} {'dens':>6}")
    for i in range(10):
        print(
            f"[{ref_edges[i]:6.0f},{ref_edges[i + 1]:6.0f}) "
            f"{ref_dens[i] * 1e3:6.2f} | "
            f"[{win_edges[i]:6.0f},{win_edges[i + 1]:6.0f}) "
            f"{win_dens[i] * 1e3:6.2f}"
        )
    print("\nthe window's mass sits visibly left of the reference —"
          " the rescaling bug.")


if __name__ == "__main__":
    main()
