#!/usr/bin/env python
"""Sensor-network aggregation with mergeable q-digests.

q-digest was designed for exactly this (Shrivastava et al. [26], the
paper's reference for the algorithm): each sensor summarizes its own
readings in bounded memory, summaries travel up an aggregation tree, and
inner nodes *merge* children without ever seeing raw readings.  q-digest
is the only deterministic mergeable quantile summary, so the error bound
survives arbitrary merge topologies.

Scenario: 64 temperature sensors on a LIDAR-like terrain (our synthetic
Neuse River stand-in supplies spatially-correlated readings), aggregated
through a 3-level tree: 64 sensors -> 8 relays -> 1 base station.  The
base station extracts terrain elevation quantiles and we verify them
against the pooled raw data.

Run:  python examples/sensor_aggregation.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactQuantiles, QDigest
from repro.streams import synthetic_lidar

SENSORS = 64
RELAYS = 8
READINGS = 4_000
UNIVERSE_LOG2 = 20
EPS = 0.01
PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]


def main() -> None:
    # Each sensor observes one shard of the terrain scan.
    all_readings = synthetic_lidar(SENSORS * READINGS, seed=3,
                                   universe_log2=UNIVERSE_LOG2)
    shards = np.array_split(all_readings, SENSORS)

    # Level 0: every sensor builds its own digest.
    sensor_digests = []
    for shard in shards:
        digest = QDigest(eps=EPS, universe_log2=UNIVERSE_LOG2)
        digest.extend(shard.tolist())
        sensor_digests.append(digest)
    sensor_kb = sensor_digests[0].size_bytes() / 1024
    print(
        f"{SENSORS} sensors x {READINGS:,} readings; each digest "
        f"~{sensor_kb:.1f} KB (raw shard would be "
        f"{READINGS * 4 / 1024:.0f} KB)"
    )

    # Level 1: relays merge groups of sensors.
    relay_digests = []
    per_relay = SENSORS // RELAYS
    for r in range(RELAYS):
        merged = sensor_digests[r * per_relay]
        for digest in sensor_digests[r * per_relay + 1 : (r + 1) * per_relay]:
            merged.merge(digest)
        relay_digests.append(merged)
    print(f"{RELAYS} relays merged {per_relay} digests each")

    # Level 2: the base station merges the relays.
    base = relay_digests[0]
    for digest in relay_digests[1:]:
        base.merge(digest)
    print(
        f"base station digest: n={base.n:,}, "
        f"{base.size_bytes() / 1024:.1f} KB, {base.node_count()} nodes\n"
    )

    exact = ExactQuantiles(all_readings.tolist())
    n = exact.n
    print(f"{'phi':>5} | {'digest':>8} | {'exact':>8} | rank err")
    print("-" * 40)
    worst = 0.0
    for phi in PHIS:
        approx = base.query(phi)
        truth = exact.query(phi)
        lo, hi = exact.rank_interval(approx)
        err = 0.0 if lo <= phi * n <= hi else min(
            abs(phi * n - lo), abs(phi * n - hi)
        )
        worst = max(worst, err / n)
        print(f"{phi:>5} | {approx:>8} | {truth:>8} | {err / n:.2e}")

    # Merging multiplies the error budget by the tree depth in the worst
    # case; q-digest's mergeability bounds it by eps per merge "layer".
    budget = EPS * 3
    print(f"\nworst rank error {worst:.2e} (tree-depth budget {budget})")
    assert worst <= budget


if __name__ == "__main__":
    main()
