#!/usr/bin/env python
"""Quickstart: summarize a stream you cannot afford to store.

Builds each of the library's main summaries over one million latency-like
measurements, queries the median and tail quantiles, and compares answers
and memory against the exact (store-everything) baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactQuantiles, make_sketch

N = 1_000_000
EPS = 0.001  # quantiles accurate to within 0.1% of the rank
PHIS = [0.5, 0.9, 0.99, 0.999]


def main() -> None:
    rng = np.random.default_rng(7)
    # A lognormal "request latency" stream (milliseconds): heavy tail,
    # exactly where naive averages mislead and quantiles shine.
    latencies_ms = rng.lognormal(mean=1.0, sigma=0.7, size=N)

    exact = ExactQuantiles(latencies_ms.tolist())

    print(f"stream: {N:,} latency measurements, eps = {EPS}")
    print(f"exact baseline stores {exact.size_bytes() / 1e6:.1f} MB\n")
    header = (
        f"{'summary':>12} | {'p50':>7} | {'p90':>7} | {'p99':>7} | "
        f"{'p99.9':>7} | {'memory':>9} | notes"
    )
    print(header)
    print("-" * len(header))

    truth = exact.quantiles(PHIS)
    print(_row("exact", truth, exact.size_bytes(), "ground truth"))

    for name, note in [
        ("gk_array", "deterministic guarantee, batched merges"),
        ("gk_adaptive", "deterministic guarantee, per-element heap"),
        ("random", "randomized, smallest space"),
        ("mrl99", "randomized, the 1999 classic"),
    ]:
        sketch = make_sketch(name, eps=EPS)
        sketch.extend(latencies_ms.tolist())
        answers = sketch.quantiles(PHIS)
        print(_row(sketch.name, answers, sketch.size_bytes(), note))

    # Verify the guarantee on the tail quantile.
    sketch = make_sketch("gk_array", eps=EPS)
    sketch.extend(latencies_ms.tolist())
    p999 = sketch.query(0.999)
    lo, hi = exact.rank_interval(p999)
    err = 0 if lo <= 0.999 * N <= hi else min(
        abs(0.999 * N - lo), abs(0.999 * N - hi)
    )
    print(
        f"\nGKArray's p99.9 has rank error {err / N:.2e} "
        f"(guarantee: <= {EPS})"
    )
    assert err <= EPS * N


def _row(name: str, answers, size_bytes: int, note: str) -> str:
    cells = " | ".join(f"{a:7.2f}" for a in answers)
    return f"{name:>12} | {cells} | {_fmt_bytes(size_bytes):>9} | {note}"


def _fmt_bytes(b: int) -> str:
    if b >= 1e6:
        return f"{b / 1e6:.1f} MB"
    return f"{b / 1e3:.1f} KB"


if __name__ == "__main__":
    main()
