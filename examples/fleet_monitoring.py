#!/usr/bin/env python
"""Continuous fleet-wide latency monitoring with bounded communication.

The distributed-monitoring setting of the paper's references [9] and
[30]: a fleet of servers each measures its own request latencies; a
central dashboard must show fleet-wide percentiles *continuously*, but
shipping every measurement would melt the network.

The ContinuousQuantileMonitor syncs a server's local summary only when
that server has accumulated enough unreported traffic to matter
(threshold ~ eps * N / k).  The dashboard answers any quantile query
from the latest snapshots with zero additional communication.

Scenario: 6 servers, 480k requests.  Server 3 develops a slow disk
one-third of the way in (its latencies triple).  Communication is
O((k/eps^2) log n) — independent of n — so the protocol needs a long
stream before it beats ship-everything; this example sits past that
crossover.  We track the fleet p99
continuously and count every word on the wire, comparing against the
ship-every-measurement baseline.

Run:  python examples/fleet_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.distributed import ContinuousQuantileMonitor

SERVERS = 6
REQUESTS = 480_000
EPS = 0.1
DEGRADE_AT = REQUESTS // 3
SLOW_SERVER = 3


def main() -> None:
    rng = np.random.default_rng(31)
    monitor = ContinuousQuantileMonitor(sites=SERVERS, eps=EPS)

    seen = []
    servers = rng.integers(0, SERVERS, size=REQUESTS)
    base_latency = rng.lognormal(mean=2.5, sigma=0.4, size=REQUESTS)

    print(f"{SERVERS} servers, {REQUESTS:,} requests, eps={EPS}")
    print(f"{'requests':>9} | {'fleet p50':>9} | {'fleet p99':>9} | "
          f"{'words sent':>10} | {'syncs':>5}")
    print("-" * 55)

    checkpoints = {REQUESTS // 6 * i for i in range(1, 7)}
    for i in range(REQUESTS):
        server = int(servers[i])
        latency = float(base_latency[i])
        if i >= DEGRADE_AT and server == SLOW_SERVER:
            latency *= 3.0  # slow disk
        monitor.observe(server, latency)
        seen.append(latency)
        if (i + 1) in checkpoints:
            p50 = float(monitor.query(0.5))
            p99 = float(monitor.query(0.99))
            print(f"{i + 1:>9,} | {p50:>9.1f} | {p99:>9.1f} | "
                  f"{monitor.words_sent:>10,} | {monitor.syncs:>5}")

    # Accuracy check against ground truth.
    arr = np.sort(np.asarray(seen))
    worst = 0.0
    for phi in (0.1, 0.5, 0.9, 0.99):
        q = monitor.query(phi)
        lo = float(np.searchsorted(arr, q, "left"))
        hi = float(np.searchsorted(arr, q, "right"))
        target = phi * len(arr)
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        worst = max(worst, err / len(arr))
    naive_words = REQUESTS  # one word per forwarded measurement
    print(f"\nworst rank error: {worst:.2e} (budget {EPS})")
    print(f"communication: {monitor.words_sent:,} words vs "
          f"{naive_words:,} for ship-everything "
          f"({monitor.words_sent / naive_words:.1%})")
    assert worst <= EPS
    assert monitor.words_sent < naive_words
    # The p99 must reflect the degraded server (it contributes 1/12 of
    # traffic at 3x latency, which lands in the tail).
    healthy_p99 = float(np.quantile(base_latency[:DEGRADE_AT], 0.99))
    assert float(monitor.query(0.99)) > healthy_p99 * 1.3
    print("the slow disk on server 3 is visible in the fleet p99 — "
          "without shipping raw measurements.")


if __name__ == "__main__":
    main()
