#!/usr/bin/env python
"""Network health monitoring with streaming quantiles.

The paper's motivating application from ISP practice [8]: track the
distribution of per-packet round-trip times across the day and alert when
the tail moves.  The stream never fits in memory; a quantile summary per
time window does — and windows can be *merged* to answer queries over
longer horizons, which is why this example uses the mergeable ``Random``
summary.

Scenario: 24 "hours" of RTT measurements.  Most hours are healthy
(RTT ~ 20ms lognormal); hours 14-16 suffer a congestion event that
inflates the tail.  The monitor keeps one summary per hour, flags hours
whose p99 deviates from the trailing baseline, and merges hourly
summaries into a daily one at the end.

Run:  python examples/network_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import RandomSketch

EPS = 0.005
HOURS = 24
PACKETS_PER_HOUR = 100_000
CONGESTED = {14, 15, 16}
ALERT_FACTOR = 1.5  # alert when p99 exceeds 1.5x the trailing median p99


def hour_of_traffic(hour: int, rng: np.random.Generator) -> np.ndarray:
    """RTT samples (ms) for one hour; congested hours grow a heavy tail."""
    base = rng.lognormal(mean=3.0, sigma=0.35, size=PACKETS_PER_HOUR)
    if hour in CONGESTED:
        spikes = rng.random(PACKETS_PER_HOUR) < 0.08
        base[spikes] *= rng.uniform(3, 10, size=int(spikes.sum()))
    return base


def main() -> None:
    rng = np.random.default_rng(99)
    hourly: list[RandomSketch] = []
    p99_history: list[float] = []
    alerts: list[int] = []

    print(f"monitoring {HOURS}h x {PACKETS_PER_HOUR:,} packets, eps={EPS}")
    print(f"{'hour':>4} | {'p50':>7} | {'p99':>8} | {'memory':>8} | status")
    print("-" * 50)

    for hour in range(HOURS):
        sketch = RandomSketch(eps=EPS, seed=hour)
        sketch.extend(hour_of_traffic(hour, rng).tolist())
        p50 = float(sketch.query(0.5))
        p99 = float(sketch.query(0.99))
        baseline = float(np.median(p99_history)) if p99_history else p99
        status = "ok"
        if p99 > ALERT_FACTOR * baseline:
            status = f"ALERT p99 {p99 / baseline:.1f}x baseline"
            alerts.append(hour)
        else:
            # Congested hours are excluded from the baseline window.
            p99_history = (p99_history + [p99])[-6:]
        print(
            f"{hour:>4} | {p50:7.1f} | {p99:8.1f} | "
            f"{sketch.size_bytes() / 1024:6.1f}KB | {status}"
        )
        hourly.append(sketch)

    # Merge the hourly summaries into a daily summary (mergeability!).
    daily = hourly[0]
    for sketch in hourly[1:]:
        daily.merge(sketch)
    print(
        f"\ndaily summary over {daily.n:,} packets: "
        f"p50={float(daily.query(0.5)):.1f}ms "
        f"p99={float(daily.query(0.99)):.1f}ms "
        f"p99.9={float(daily.query(0.999)):.1f}ms "
        f"({daily.size_bytes() / 1024:.1f} KB)"
    )

    assert set(alerts) == CONGESTED, (
        f"expected alerts exactly in {sorted(CONGESTED)}, got {alerts}"
    )
    print(f"alerts fired for hours {alerts} — congestion detected.")


if __name__ == "__main__":
    main()
