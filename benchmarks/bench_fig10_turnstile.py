"""Figure 10 — the headline turnstile comparison: DCM vs DCS vs Post.

Five panels from one sweep on the synthetic MPCAT stream:

* 10a/10b: eps vs actual max/avg error — the analysis is loose (actual
  max error ~ eps/10), and Post improves DCS across the board.
* 10c: error-space — DCS needs ~1/10 of DCM's space at equal error;
  Post shifts DCS's curve further left at no space cost.
* 10d/10e: error-time and space-time — Post's update path IS DCS's
  (post-processing runs at query time only).

Comparing against Figure 5 shows the turnstile model costs roughly an
order of magnitude more space/time at equal accuracy.

Deletions are not streamed here: as the paper notes (Section 4.3),
turnstile sketches are linear, so only the remaining elements matter.
The correctness of real deletions is covered by the test suite.
"""

from __future__ import annotations

from conftest import run_once, write_exhibit
from repro.evaluation import (
    by_algorithm,
    plot_results,
    results_table,
    sweep,
    tradeoff_series,
)

ALGORITHMS = ["dcm", "dcs", "dcs+post"]
EPS_VALUES = [0.05, 0.02, 0.01, 0.005]
UNIVERSE_LOG2 = 24


def test_fig10_turnstile(benchmark, mpcat_small) -> None:
    def compute():
        return sweep(
            ALGORITHMS,
            mpcat_small,
            EPS_VALUES,
            universe_log2=UNIVERSE_LOG2,
            repeats=3,
            seed=1,
        )

    results = run_once(benchmark, compute)
    parts = [
        results_table(
            results,
            title=(
                f"Figure 10: turnstile algorithms on synthetic MPCAT-OBS "
                f"(n={len(mpcat_small)}, log u={UNIVERSE_LOG2})"
            ),
        ),
        tradeoff_series(results, "eps", "max_error",
                        title="Fig 10a: eps vs actual max error"),
        tradeoff_series(results, "eps", "avg_error",
                        title="Fig 10b: eps vs actual avg error"),
        tradeoff_series(results, "avg_error", "peak_kb",
                        title="Fig 10c: avg error vs space (KB)"),
        tradeoff_series(results, "avg_error", "update_time_us",
                        title="Fig 10d: avg error vs update time (us)"),
        tradeoff_series(results, "peak_kb", "update_time_us",
                        title="Fig 10e: space (KB) vs update time (us)"),
        plot_results(results, "avg_error", "peak_kb",
                     title="Fig 10c (chart): avg error vs space KB"),
    ]
    write_exhibit("fig10_turnstile", "\n\n".join(parts))

    curves = by_algorithm(results)
    # Observed max error is far below the eps handed to the algorithms.
    for rs in curves.values():
        for r in rs:
            assert r.max_error < r.eps
    # DCS needs much less space than DCM at the same eps (their defaults
    # encode the papers' analyses: w = log u / eps vs sqrt(log u) / eps).
    for dcm, dcs in zip(curves["dcm"], curves["dcs"]):
        assert dcs.peak_words < 0.5 * dcm.peak_words
        # ... while achieving comparable (same order) error.
        assert dcs.avg_error < 10 * dcm.avg_error + 1e-6
    # Post strictly improves DCS's error using identical streaming state.
    for dcs, post in zip(curves["dcs"], curves["dcs+post"]):
        assert post.avg_error < dcs.avg_error
        assert post.peak_words == dcs.peak_words
    # The paper's 60-80% reduction band, allowing slack at the extremes.
    reductions = [
        1 - post.avg_error / dcs.avg_error
        for dcs, post in zip(curves["dcs"], curves["dcs+post"])
    ]
    assert max(reductions) > 0.4, reductions
