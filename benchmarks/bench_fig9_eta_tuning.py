"""Figure 9 — tuning the truncation threshold eta for Post.

Post prunes the dyadic tree at ``eta * eps * n`` before solving the OLS
system.  Smaller eta keeps more nodes: more accuracy, bigger truncated
tree (more post-processing work).  The paper sweeps eta at
eps in {0.1, 0.01, 0.001} and finds eta = 0.1 the sweet spot, with the
corrected error at 20-40% of raw DCS.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, write_exhibit
from repro.evaluation import format_table, measure_errors
from repro.turnstile import DyadicCountSketch

ETAS = [1.0, 0.5, 0.2, 0.1, 0.05, 0.02]
EPS_VALUES = [0.1, 0.01, 0.002]
UNIVERSE_LOG2 = 24


def test_fig9_eta_tuning(benchmark, mpcat_tiny) -> None:
    sorted_truth = np.sort(mpcat_tiny)

    def compute():
        out = []
        for eps in EPS_VALUES:
            dcs = DyadicCountSketch(
                eps=eps, universe_log2=UNIVERSE_LOG2, seed=9
            )
            dcs.update_batch(mpcat_tiny)
            raw = measure_errors(dcs, sorted_truth, max(eps, 0.002), 499)
            sketch_words = dcs.size_words()
            for eta in ETAS:
                snap = dcs.post_processed(eta=eta)
                post = measure_errors(
                    snap, sorted_truth, max(eps, 0.002), 499
                )
                out.append([
                    eps, eta,
                    snap.node_count(),
                    snap.size_words() / sketch_words,
                    raw.avg_error,
                    post.avg_error,
                    post.avg_error / raw.avg_error if raw.avg_error else 0,
                ])
        return out

    rows = run_once(benchmark, compute)
    write_exhibit(
        "fig9_eta_tuning",
        format_table(
            ["eps", "eta", "tree nodes", "tree/sketch size",
             "raw avg_err", "post avg_err", "post/raw"],
            rows,
            title=(
                f"Figure 9: eta vs truncated-tree size and error "
                f"reduction (synthetic MPCAT, n={len(mpcat_tiny)})"
            ),
        ),
    )

    # Shapes: tree size decreases with eta; post error improves on raw at
    # the sweet spot for every eps.
    for eps in EPS_VALUES:
        sub = [r for r in rows if r[0] == eps]
        sizes = [r[2] for r in sub]  # ordered by decreasing... ETAS desc
        assert all(a <= b for a, b in zip(sizes, sizes[1:])), sizes
        sweet = next(r for r in sub if r[1] == 0.1)
        assert sweet[6] < 1.0, ("post should beat raw at eta=0.1", sweet)
