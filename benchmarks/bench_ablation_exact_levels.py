"""Ablation — exact counters at the coarse dyadic levels.

Section 3's engineering rule: "if the reduced universe size is smaller
than the sketch size, we should maintain the frequencies exactly".  This
ablation disables that rule (``exact_cutoff=0``) and compares.  Exact
levels cost nothing extra (they are smaller than the sketch they
replace), remove all error from the coarse half of every rank
decomposition, and anchor the OLS post-processing (sigma = 0 nodes).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, write_exhibit
from repro.evaluation import format_table, measure_errors, scaled_n
from repro.streams import uniform_stream
from repro.turnstile import DyadicCountSketch

EPS = 0.01
UNIVERSE_LOG2 = 24
REPEATS = 3


def test_ablation_exact_levels(benchmark) -> None:
    n = scaled_n(100_000)
    data = uniform_stream(n, universe_log2=UNIVERSE_LOG2, seed=22)
    sorted_truth = np.sort(data)

    def run_variant(exact_cutoff):
        maxes, avgs, words = [], [], 0
        for seed in range(REPEATS):
            sk = DyadicCountSketch(
                eps=EPS, universe_log2=UNIVERSE_LOG2, seed=seed,
                exact_cutoff=exact_cutoff,
            )
            sk.update_batch(data)
            report = measure_errors(sk, sorted_truth, EPS, 199)
            maxes.append(report.max_error)
            avgs.append(report.avg_error)
            words = sk.size_words()
        return float(np.mean(maxes)), float(np.mean(avgs)), words

    def compute():
        rows = []
        for label, cutoff in [
            ("exact levels ON (paper rule)", None),
            ("exact levels OFF (sketch everywhere)", 0),
        ]:
            mx, avg, words = run_variant(cutoff)
            rows.append([label, mx, avg, words * 4 / 1024])
        return rows

    rows = run_once(benchmark, compute)
    write_exhibit(
        "ablation_exact_levels",
        format_table(
            ["variant", "max_err", "avg_err", "space KB"],
            rows,
            title=(
                f"Ablation: exact coarse levels in DCS "
                f"(uniform, u=2^{UNIVERSE_LOG2}, n={n}, eps={EPS})"
            ),
        ),
    )
    on, off = rows
    # The paper rule never hurts accuracy and saves space.
    assert on[2] <= off[2] * 1.2
    assert on[3] <= off[3]
