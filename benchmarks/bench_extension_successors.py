"""Extension — the lineage: the paper's winners vs their successors.

The calibration literature credits this experimental study with
influencing the sketch generation that followed (KLL, t-digest in Apache
DataSketches).  This exhibit puts the paper's best cash-register
algorithms (GKArray, Random) on the same error-space/time chart as KLL
(Random's direct descendant), t-digest (the industrial tail-accuracy
design), and the FO-style SampledGK prototype the paper chose to drop.

Expected shapes: KLL sits on or inside Random's error-space frontier
(geometric compactors strictly generalize uniform buffers); t-digest
wins the extreme tail at tiny memory but gives no uniform rank
guarantee; SampledGK is dominated once sampling engages — the paper's
stated reason for excluding FO.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, write_exhibit
from repro.cash_register import GKArray, RandomSketch
from repro.core import ExactQuantiles
from repro.evaluation import format_table, scaled_n, text_plot
from repro.streams import uniform_stream
from repro.successors import KLL, SampledGK, TDigest

EPS_VALUES = [0.02, 0.005, 0.002]
PHIS = list(np.linspace(0.05, 0.95, 19))


def test_extension_successors(benchmark) -> None:
    n = scaled_n(100_000)
    data = uniform_stream(n, universe_log2=24, seed=25)
    exact = ExactQuantiles(data.tolist())

    def measure(sk):
        sk.extend(data.tolist())
        worst = 0.0
        for phi in PHIS:
            q = sk.query(float(phi))
            lo, hi = exact.rank_interval(q)
            target = phi * n
            err = 0.0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            worst = max(worst, err / n)
        return worst, sk.size_words()

    def compute():
        rows = []
        series = {}
        for eps in EPS_VALUES:
            contenders = [
                ("GKArray", GKArray(eps=eps)),
                ("Random", RandomSketch(eps=eps, seed=7)),
                ("KLL", KLL(eps=eps, seed=7)),
                ("SampledGK", SampledGK(eps=eps, seed=7)),
                ("TDigest", TDigest(delta=max(20.0, 2.0 / eps))),
            ]
            for name, sk in contenders:
                err, words = measure(sk)
                rows.append([name, eps, err, words * 4 / 1024])
                series.setdefault(name, []).append(
                    (max(err, 1e-7), words * 4 / 1024)
                )
        return rows, series

    rows, series = run_once(benchmark, compute)
    chart = text_plot(
        series,
        title="Lineage: max error vs space (KB), log-log",
        x_label="max err",
        y_label="KB",
    )
    write_exhibit(
        "extension_successors",
        format_table(
            ["algorithm", "eps/config", "max err", "space KB"],
            rows,
            title=(
                f"Extension: the paper's winners vs successors "
                f"(uniform, n={n})"
            ),
        )
        + "\n\n"
        + chart,
    )

    def row(name, eps):
        return next(r for r in rows if r[0] == name and r[1] == eps)

    # KLL stays within its guarantee and within Random's space.
    for eps in EPS_VALUES:
        assert row("KLL", eps)[2] <= eps
        assert row("KLL", eps)[3] <= row("Random", eps)[3] * 1.05
    # The FO-style prototype is dominated somewhere (the paper's verdict):
    # at the largest eps (sampling active) its error exceeds Random's.
    assert row("SampledGK", 0.02)[2] > row("Random", 0.02)[2]
