"""Extension — fault-tolerant aggregation: drop rate x topology sweep.

What does an unreliable network *cost*?  The reliable transport converts
message loss into retransmissions (communication overhead) and site
crashes into coverage loss (accuracy degradation).  This exhibit sweeps
the drop rate over every topology, with the worst surviving-site case —
one crashed mid-tree site — at the highest level, and records the three
currencies the trade spans: observed rank error vs. the full stream,
coverage at the root, and retransmitted words as a fraction of the
paper's lossless accounting.

Expected shape: retransmission overhead grows like ``drop / (1 - drop)``
per edge independent of topology; rank error stays ~eps while coverage
is 1.0 and jumps to ~(1 - coverage) once a site crashes; chains suffer
the most extra retries because every summary crosses the most edges.
"""

from __future__ import annotations

from conftest import run_once, write_exhibit
from repro.distributed import FaultPlan, make_network, merge_summaries
from repro.evaluation import format_table, scaled_n

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]
EPS = 0.02
SITES = 16
DROP_RATES = [0.0, 0.05, 0.1, 0.2]


def test_extension_fault_tolerance(benchmark) -> None:
    n = scaled_n(100_000)

    def compute():
        rows = []
        for topology in ("star", "tree", "chain"):
            for drop in DROP_RATES:
                # Worst case at the top drop rate: also crash one
                # non-leaf site, taking its whole subtree with it.
                crash = (5,) if drop == DROP_RATES[-1] else ()
                plan = FaultPlan(
                    seed=97, drop_rate=drop, duplicate_rate=drop / 2,
                    corrupt_rate=drop / 2, crash_sites=crash,
                    max_retries=30,
                )
                net = make_network(
                    n, sites=SITES, topology=topology, seed=42, skew=0.6,
                    faults=plan,
                )
                truth = net.union_sorted()
                result = merge_summaries(
                    net, eps=EPS, summary="qdigest", seed=5
                )
                overhead = (
                    result.retransmitted_words / result.words_sent
                    if result.words_sent
                    else 0.0
                )
                rows.append([
                    topology,
                    drop,
                    len(crash),
                    result.coverage,
                    result.effective_eps,
                    result.max_rank_error(truth, PHIS),
                    result.words_sent,
                    overhead,
                ])
        return rows

    rows = run_once(benchmark, compute)
    write_exhibit(
        "extension_fault_tolerance",
        format_table(
            ["topology", "drop", "crashes", "coverage", "eff eps",
             "max err", "words", "retx overhead"],
            rows,
            title=(
                f"Extension: fault-tolerant aggregation, n={n}, "
                f"{SITES} sites, eps={EPS}, merge-qdigest"
            ),
        ),
    )

    by_key = {(r[0], r[1]): r for r in rows}
    for topology in ("star", "tree", "chain"):
        # Lossless sweep point: full coverage, no overhead, error <= eps.
        clean = by_key[(topology, 0.0)]
        assert clean[3] == 1.0 and clean[7] == 0.0
        assert clean[5] <= 3 * EPS
        # Retries keep coverage at 1.0 under pure message loss...
        assert by_key[(topology, 0.1)][3] == 1.0
        # ...and the observed error stays within the degraded bound
        # even with a crashed subtree.
        crashed = by_key[(topology, DROP_RATES[-1])]
        assert crashed[3] < 1.0
        assert crashed[5] <= crashed[4]
        # Lost coverage never inflates the lossless words accounting.
        assert crashed[6] <= clean[6]
