"""Sharded-ingest scaling curve: 1/2/4/8 workers per algorithm.

For every mergeable algorithm in the spec this measures, at
``scaled_n(1_000_000)`` elements:

* a serial baseline: one sketch, one chunked batch feed;
* the sharded engine at 1, 2, 4, and 8 workers (wall clock covers
  ingest *and* the merge tree — the honest end-to-end number);
* the merged summary's observed max rank error (must stay within the
  shards' ``eps``);
* run-to-run determinism of the merged answers at a fixed
  :class:`~repro.parallel.plan.ShardPlan`.

Results land in ``BENCH_parallel.json`` at the repo root together with
the machine context (CPU count, Python, platform, git sha) — a scaling
number without its core count is meaningless, and a 1-core box
truthfully reports speedup ~1x with the engine's transport overhead on
display.  The speedup acceptance gate only arms on boxes with >= 4
cores.  Regenerate with::

    PYTHONPATH=src python benchmarks/bench_parallel.py

``--smoke`` runs a small-n, 2-worker subset for CI;  ``REPRO_SCALE``
scales the stream length as usual.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

import numpy as np

from repro.evaluation import machine_context, scaled_n
from repro.evaluation.harness import build_sketch
from repro.parallel import ShardPlan, parallel_feed

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_parallel.json"

#: (registry name, constructor kwargs).  Mergeable algorithms only;
#: dcs exercises the shared-seed turnstile path.
SPECS = [
    ("gk_array", dict(eps=0.001)),
    ("gk_adaptive", dict(eps=0.001)),
    ("kll", dict(eps=0.01)),
    ("random", dict(eps=0.01)),
    ("mrl99", dict(eps=0.01)),
    ("qdigest", dict(eps=0.01, universe_log2=16)),
    ("dcs", dict(eps=0.01, universe_log2=16)),
]

SMOKE_SPECS = [
    ("gk_array", dict(eps=0.001)),
    ("kll", dict(eps=0.01)),
    ("qdigest", dict(eps=0.01, universe_log2=16)),
]

WORKERS = (1, 2, 4, 8)
SMOKE_WORKERS = (1, 2)
PHI_COUNT = 99
CHUNK = 1 << 16
SEED = 42

#: Minimum cores before the 4-worker speedup gate arms.
SPEEDUP_GATE_CORES = 4
SPEEDUP_TARGET = 2.5


def _serial_seconds(name: str, params: dict, data: np.ndarray) -> float:
    kwargs = dict(params)
    eps = kwargs.pop("eps")
    universe_log2 = kwargs.pop("universe_log2", None)
    sketch = build_sketch(name, eps, universe_log2, seed=SEED, **kwargs)
    feed = getattr(sketch, "update_batch", None)
    if feed is None or not hasattr(sketch, "delete"):
        feed = sketch.extend
    start = time.perf_counter()
    for lo in range(0, len(data), CHUNK):
        feed(data[lo : lo + CHUNK])
    return time.perf_counter() - start


def _max_error(sketch, sorted_data: np.ndarray) -> float:
    n = len(sorted_data)
    worst = 0.0
    for i in range(PHI_COUNT):
        phi = (i + 1) / (PHI_COUNT + 1)
        value = sketch.query(phi)
        lo = float(np.searchsorted(sorted_data, value, "left"))
        hi = float(np.searchsorted(sorted_data, value, "right"))
        target = phi * n
        if lo <= target <= hi:
            continue
        worst = max(worst, min(abs(target - lo), abs(target - hi)) / n)
    return worst


def _answers(sketch) -> list:
    phis = [(i + 1) / (PHI_COUNT + 1) for i in range(PHI_COUNT)]
    return list(sketch.query_batch(phis))


def measure_algorithm(
    name: str,
    params: dict,
    data: np.ndarray,
    sorted_data: np.ndarray,
    workers: tuple,
) -> dict:
    """Serial baseline plus the per-worker-count scaling curve."""
    kwargs = dict(params)
    eps = kwargs.pop("eps")
    universe_log2 = kwargs.pop("universe_log2", None)
    serial_s = _serial_seconds(name, params, data)
    curve = {}
    for count in workers:
        plan = ShardPlan(seed=SEED, shards=count)
        merged, seconds = parallel_feed(
            name, data, eps, plan,
            universe_log2=universe_log2, **kwargs,
        )
        error = _max_error(merged, sorted_data)
        row = {
            "seconds": seconds,
            "speedup_vs_serial": serial_s / max(seconds, 1e-12),
            "max_error": error,
            "within_eps": bool(error <= eps),
        }
        if count > 1:
            again, _ = parallel_feed(
                name, data, eps, plan,
                universe_log2=universe_log2, **kwargs,
            )
            row["deterministic"] = _answers(merged) == _answers(again)
        curve[str(count)] = row
    return {
        "eps": eps,
        "serial_seconds": serial_s,
        "workers": curve,
    }


def run_bench(
    n: int | None = None,
    smoke: bool = False,
) -> dict:
    """Run the scaling sweep and return the BENCH_parallel.json payload."""
    specs = SMOKE_SPECS if smoke else SPECS
    workers = SMOKE_WORKERS if smoke else WORKERS
    if n is None:
        n = scaled_n(50_000 if smoke else 1_000_000)
    rng = np.random.default_rng(SEED)
    data = rng.integers(0, 1 << 16, size=n, dtype=np.int64)
    sorted_data = np.sort(data)
    algorithms = {}
    for name, params in specs:
        algorithms[name] = measure_algorithm(
            name, params, data, sorted_data, workers
        )
    machine = machine_context(timestamp=time.time())
    cores = machine["cpu_count"] or 1
    return {
        "schema": 1,
        "n": n,
        "smoke": smoke,
        "repro_scale": float(os.environ.get("REPRO_SCALE", "1")),
        "generated_by": "benchmarks/bench_parallel.py",
        "phi_count": PHI_COUNT,
        "worker_counts": list(workers),
        "machine": machine,
        # A scaling curve from a box with fewer cores than the gate
        # threshold measures transport overhead, not parallel speedup.
        # Stamp the artifact so downstream readers (and check_payload)
        # never mistake it for a real scaling result.
        "degraded_run": bool(cores < SPEEDUP_GATE_CORES),
        "algorithms": algorithms,
    }


def check_payload(payload: dict) -> list[str]:
    """Acceptance checks; returns a list of failure strings.

    Error and determinism checks always apply.  The 4-worker >= 2.5x
    speedup gate refuses to arm when the box has fewer than
    ``SPEEDUP_GATE_CORES`` cores — such a run must instead carry the
    ``"degraded_run": true`` stamp so nobody reads its speedup column
    as a scaling result.
    """
    failures = []
    for name, row in payload["algorithms"].items():
        for count, cell in row["workers"].items():
            if not cell["within_eps"]:
                failures.append(
                    f"{name}@{count}w: max_error {cell['max_error']:.5f} "
                    f"exceeds eps {row['eps']}"
                )
            if cell.get("deterministic") is False:
                failures.append(f"{name}@{count}w: non-deterministic merge")
    cores = payload["machine"]["cpu_count"] or 1
    if cores < SPEEDUP_GATE_CORES:
        if not payload.get("degraded_run", False):
            failures.append(
                f"{cores}-core box below the {SPEEDUP_GATE_CORES}-core "
                "gate threshold but the artifact is missing "
                '"degraded_run": true'
            )
        return failures
    if payload.get("degraded_run", False):
        failures.append(
            f'"degraded_run": true stamped on a {cores}-core box '
            f"(threshold {SPEEDUP_GATE_CORES})"
        )
    if not payload["smoke"]:
        scaled = [
            name
            for name, row in payload["algorithms"].items()
            if row["workers"].get("4", {}).get("speedup_vs_serial", 0.0)
            >= SPEEDUP_TARGET
        ]
        if len(scaled) < 3:
            failures.append(
                f"only {len(scaled)} algorithm(s) reached "
                f"{SPEEDUP_TARGET}x at 4 workers on a {cores}-core box"
            )
    return failures


def format_table(payload: dict) -> str:
    counts = payload["worker_counts"]
    header = " ".join(f"{f'{c}w':>8s}" for c in counts)
    lines = [
        f"Sharded ingest scaling (n={payload['n']}, "
        f"{payload['machine']['cpu_count']} cores)",
        f"{'algorithm':12s} {'serial s':>9s} {header}  max_err(last)",
    ]
    for name, row in payload["algorithms"].items():
        cells = " ".join(
            f"{row['workers'][str(c)]['speedup_vs_serial']:7.2f}x"
            for c in counts
        )
        last = row["workers"][str(counts[-1])]["max_error"]
        lines.append(
            f"{name:12s} {row['serial_seconds']:9.2f} {cells}  {last:.5f}"
        )
    return "\n".join(lines)


def write_artifact(payload: dict) -> None:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def test_bench_parallel(benchmark) -> None:
    from conftest import run_once, write_exhibit

    payload = run_once(benchmark, lambda: run_bench(smoke=True))
    write_exhibit("BENCH_parallel_smoke", format_table(payload))
    failures = check_payload(payload)
    assert not failures, "\n".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small-n, 2-worker subset (CI smoke; does not overwrite a "
             "full artifact with a smoke one unless none exists)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="artifact path (default: repo-root BENCH_parallel.json)",
    )
    args = parser.parse_args()
    result = run_bench(smoke=args.smoke)
    out = args.out
    table_name = "BENCH_parallel.txt"
    if out is None:
        out = ARTIFACT
        if args.smoke and ARTIFACT.exists():
            existing = json.loads(ARTIFACT.read_text())
            if not existing.get("smoke", False):
                out = REPO_ROOT / "BENCH_parallel.smoke.json"
                table_name = "BENCH_parallel.smoke.txt"
    out.write_text(json.dumps(result, indent=2) + "\n")
    table = format_table(result)
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / table_name).write_text(table + "\n")
    print(table)
    print(f"\nwrote {out}")
    problems = check_payload(result)
    if problems:
        raise SystemExit("FAIL:\n" + "\n".join(problems))
    print("all acceptance checks passed")
