"""Figure 12 — turnstile accuracy vs data skewness (normal sigma = 0.05
vs 0.25).

The Count-Sketch error scales with sqrt(F2), the second frequency moment:
concentrated (skewed, small sigma) data has large F2, diffuse data small
F2.  Count-Min's error depends on n, not F2.  So when sigma grows (less
skew), DCS and Post improve markedly while DCM barely moves — the paper's
closing evidence that the unbiased sketch is the right choice.
"""

from __future__ import annotations

from conftest import run_once, write_exhibit
from repro.evaluation import format_table, scaled_n, sweep
from repro.streams import normal_stream

SIGMAS = [0.05, 0.25]
EPS_VALUES = [0.05, 0.02, 0.01]
ALGORITHMS = ["dcm", "dcs", "dcs+post"]
UNIVERSE_LOG2 = 24


def test_fig12_skewness(benchmark) -> None:
    n = scaled_n(100_000)

    def compute():
        tagged = []
        for sigma in SIGMAS:
            data = normal_stream(
                n, universe_log2=UNIVERSE_LOG2, sigma=sigma, seed=12
            )
            for r in sweep(
                ALGORITHMS, data, EPS_VALUES,
                universe_log2=UNIVERSE_LOG2, repeats=3, seed=3,
            ):
                tagged.append((sigma, r))
        return tagged

    tagged = run_once(benchmark, compute)
    rows = [
        [f"{r.algorithm}@sigma={sigma}", r.eps, r.max_error, r.avg_error]
        for sigma, r in tagged
    ]
    write_exhibit(
        "fig12_skewness",
        format_table(
            ["algorithm@sigma", "eps", "max_err (12a)", "avg_err (12b)"],
            rows,
            title=(
                f"Figure 12: data skewness, normal u=2^{UNIVERSE_LOG2} "
                f"(n={n})"
            ),
        ),
    )

    def pick(sigma, name, eps):
        return next(
            r for s, r in tagged
            if s == sigma and r.algorithm == name and r.eps == eps
        )

    # Less skew (larger sigma) helps the Count-Sketch-based algorithms.
    improvements = {}
    for name in ALGORITHMS:
        ratios = []
        for eps in EPS_VALUES:
            skewed = pick(0.05, name, eps).avg_error
            diffuse = pick(0.25, name, eps).avg_error
            ratios.append(diffuse / skewed if skewed else 1.0)
        improvements[name] = sum(ratios) / len(ratios)
    assert improvements["dcs"] < 1.0, improvements
    # DCS gains more from reduced skew than DCM does (the F2 effect).
    assert improvements["dcs"] < improvements["dcm"] + 0.15, improvements
