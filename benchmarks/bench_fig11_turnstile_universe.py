"""Figure 11 — turnstile algorithms vs universe size (normal sigma=0.15).

The universe size sets the height of the dyadic hierarchy, so it drives
both the space (one sketch per level) and the update time (one sketch
touch per level) of every turnstile algorithm.  The paper compares
u = 2^16 against u = 2^32: the smaller universe is more accurate at equal
space and faster at equal eps; its curves halt early because at some
point the sketch can store all frequencies exactly.
"""

from __future__ import annotations

from conftest import run_once, write_exhibit
from repro.evaluation import format_table, scaled_n, sweep
from repro.streams import normal_stream

UNIVERSES = [16, 32]
EPS_VALUES = [0.05, 0.01, 0.005]
ALGORITHMS = ["dcm", "dcs", "dcs+post"]


def test_fig11_turnstile_universe(benchmark) -> None:
    n = scaled_n(100_000)

    def compute():
        tagged = []
        for log_u in UNIVERSES:
            data = normal_stream(n, universe_log2=log_u, sigma=0.15, seed=11)
            for r in sweep(
                ALGORITHMS, data, EPS_VALUES,
                universe_log2=log_u, repeats=3, seed=2,
            ):
                tagged.append((log_u, r))
        return tagged

    tagged = run_once(benchmark, compute)
    rows = [
        [f"{r.algorithm}@u=2^{log_u}", r.eps, r.max_error, r.avg_error,
         r.peak_kb, r.update_time_us]
        for log_u, r in tagged
    ]
    write_exhibit(
        "fig11_turnstile_universe",
        format_table(
            ["algorithm@universe", "eps", "max_err", "avg_err",
             "space KB (11a)", "us/update (11b)"],
            rows,
            title=(
                f"Figure 11: universe size, normal sigma=0.15 (n={n})"
            ),
        ),
    )

    def pick(log_u, name, eps):
        return next(
            r for lu, r in tagged
            if lu == log_u and r.algorithm == name and r.eps == eps
        )

    for name in ALGORITHMS:
        for eps in EPS_VALUES:
            small = pick(16, name, eps)
            big = pick(32, name, eps)
            # Smaller universe: less space and faster updates...
            assert small.peak_words < big.peak_words
            assert small.update_time_us < big.update_time_us
            # ...and at least comparable accuracy.
            assert small.avg_error <= 3 * big.avg_error + 1e-6
