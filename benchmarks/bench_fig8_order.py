"""Figure 8 — random vs sorted arrival order (uniform data, u = 2^32).

Arrival order is the classic hard case for GK-style summaries: sorted
input keeps every new element at the frontier, where nothing is removable
yet.  The paper compares random and sorted arrival at fixed n; space of
the turnstile algorithms is order-invariant by construction, Random's is
pre-allocated, and the GK variants grow on sorted input.
"""

from __future__ import annotations

from conftest import run_once, write_exhibit
from repro.evaluation import (
    build_sketch,
    feed_stream,
    format_table,
    measure_errors,
    scaled_n,
)
from repro.streams import sorted_stream, uniform_stream
import numpy as np

ALGORITHMS = [
    ("gk_adaptive", {}),
    ("gk_array", {}),
    ("gk_theory", {}),
    ("random", {}),
    ("qdigest", {"universe_log2": 32}),
]
EPS = 0.002


def test_fig8_order(benchmark) -> None:
    n = scaled_n(100_000)

    def compute():
        streams = {
            "random-order": uniform_stream(n, universe_log2=32, seed=8),
            "sorted": sorted_stream(n, universe_log2=32, seed=8),
            "reverse-sorted": sorted_stream(
                n, universe_log2=32, seed=8, descending=True
            ),
        }
        out = []
        for order, data in streams.items():
            sorted_truth = np.sort(data)
            for name, kwargs in ALGORITHMS:
                sketch = build_sketch(name, eps=EPS, seed=0, **kwargs)
                seconds, peak = feed_stream(sketch, data)
                report = measure_errors(sketch, sorted_truth, EPS, 499)
                out.append([
                    name, order, report.max_error, report.avg_error,
                    peak * 4 / 1024, 1e6 * seconds / n,
                ])
        return out

    rows = run_once(benchmark, compute)
    write_exhibit(
        "fig8_order",
        format_table(
            ["algorithm", "order", "max_err", "avg_err", "space KB",
             "us/update"],
            rows,
            title=f"Figure 8: arrival order, uniform u=2^32, eps={EPS}, n={n}",
        ),
    )

    def cell(name, order, col):
        return next(
            r[col] for r in rows if r[0] == name and r[1] == order
        )

    # Error guarantees hold regardless of order for the deterministic
    # algorithms.
    for name in ("gk_adaptive", "gk_array", "gk_theory", "qdigest"):
        for order in ("random-order", "sorted", "reverse-sorted"):
            assert cell(name, order, 2) <= EPS
    # GK space stays in the same ballpark across orders — the paper's
    # observation that (unlike the worst-case analysis) real monotone
    # streams do not blow the summary up.
    for name in ("gk_adaptive", "gk_array", "gk_theory"):
        for order in ("sorted", "reverse-sorted"):
            assert cell(name, order, 4) < 3 * cell(name, "random-order", 4)
    # Random's space is order-invariant (pre-allocated).
    assert cell("random", "sorted", 4) == cell("random", "random-order", 4)
