"""Figure 7 — scaling the stream length (uniform data, u = 2^32,
eps = 1e-4 in the paper; eps scales with our smaller streams).

Expected shapes (Section 4.2.5): update time and space are essentially
flat in n for every algorithm; Random's per-element time *decreases*
(sampling discards ever more of the stream), and so does q-digest's
(COMPRESS runs only log n times).  GK variants' space stays flat on
randomly ordered data.
"""

from __future__ import annotations

from conftest import run_once, write_exhibit
from repro.evaluation import (
    build_sketch,
    feed_stream,
    format_table,
    scaled_n,
)
from repro.streams import uniform_stream

ALGORITHMS = [
    ("gk_adaptive", {}),
    ("gk_array", {}),
    ("random", {}),
    ("qdigest", {"universe_log2": 32}),
]
#: Length multipliers standing in for the paper's 10^7..10^10 range.
LENGTHS = [1, 4, 16]
EPS = 0.002


def test_fig7_stream_length(benchmark) -> None:
    base = scaled_n(25_000)

    def compute():
        out = []
        for mult in LENGTHS:
            n = base * mult
            data = uniform_stream(n, universe_log2=32, seed=7)
            for name, kwargs in ALGORITHMS:
                sketch = build_sketch(name, eps=EPS, seed=0, **kwargs)
                seconds, peak = feed_stream(sketch, data)
                out.append(
                    [name, n, 1e6 * seconds / n, peak * 4 / 1024]
                )
        return out

    rows = run_once(benchmark, compute)
    write_exhibit(
        "fig7_stream_length",
        format_table(
            ["algorithm", "n", "us/update (7a)", "space KB (7b)"],
            rows,
            title=(
                f"Figure 7: varying stream length, uniform u=2^32, "
                f"eps={EPS}"
            ),
        ),
    )

    def series(name, col):
        return [row[col] for row in rows if row[0] == name]

    # Space is essentially flat in n once past the startup transient
    # (q-digest only saturates when n >> k, so compare the larger two).
    for name, _ in ALGORITHMS:
        spaces = series(name, 3)
        assert spaces[-1] < 1.5 * spaces[-2], (name, spaces)
        if name != "qdigest":
            assert max(spaces) < 2.5 * min(spaces), (name, spaces)
    # Random's space is *constant* (pre-allocated buffers).
    rnd = series("random", 3)
    assert max(rnd) == min(rnd)
    # Per-element time does not blow up with n.  q-digest's time first
    # *rises* into its compression regime (COMPRESS is idle while
    # n < k), so it is compared across the last two lengths only.
    for name, _ in ALGORITHMS:
        times = series(name, 2)
        if name == "qdigest":
            assert times[-1] < 3 * times[-2], (name, times)
        else:
            assert times[-1] < 3 * times[0], (name, times)
