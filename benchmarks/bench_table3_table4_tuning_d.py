"""Tables 3 and 4 — tuning the sketch depth d for DCS.

For a fixed total sketch budget, deeper sketches (more rows d) buy
failure probability while shallower ones buy per-row accuracy (width w).
The paper fixes total size, varies d in {3, 5, 7, 9, 11, 13}, and reports
the average (Table 3) and maximum (Table 4) quantile error on uniform
data with u = 2^32, finding d = 7 a good choice — which is the default
depth of every dyadic sketch in this library.

Our universe and stream are scaled down (u = 2^24, n per REPRO_SCALE),
and the budget is interpreted per the paper: total counters across all
sketched levels.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, write_exhibit
from repro.evaluation import matrix_table, measure_errors, scaled_n
from repro.streams import uniform_stream
from repro.turnstile import DyadicCountSketch

DEPTHS = [3, 5, 7, 9, 11]
SIZES_KB = [64, 128, 256, 512, 1024]
UNIVERSE_LOG2 = 24
EVAL_EPS = 0.01  # phi grid: 99 quantiles, as dense as the scaled n allows
REPEATS = 3


def _width_for_budget(size_kb: int, depth: int) -> int:
    """Counters per row so that all sketched levels together hit the
    budget (4-byte counters; exact levels excluded from the budget as
    they are fixed overhead shared by every configuration)."""
    total_words = size_kb * 1024 // 4
    # Levels with more cells than the sketch get a sketch; with width w,
    # roughly levels 0..UNIVERSE_LOG2 - log2(w * depth) are sketched.
    # Solve iteratively (two rounds suffice).
    sketched = UNIVERSE_LOG2
    for _ in range(3):
        width = max(2, total_words // (depth * sketched))
        cutoff_cells = width * depth
        sketched = max(
            1, UNIVERSE_LOG2 - max(0, int(cutoff_cells).bit_length() - 1)
        )
    return max(2, total_words // (depth * sketched))


def test_tables_3_and_4(benchmark) -> None:
    n = scaled_n(100_000)
    data = uniform_stream(n, universe_log2=UNIVERSE_LOG2, seed=34)
    sorted_truth = np.sort(data)

    def compute():
        avg_cells = {}
        max_cells = {}
        for size_kb in SIZES_KB:
            for depth in DEPTHS:
                width = _width_for_budget(size_kb, depth)
                avgs, maxs = [], []
                for rep in range(REPEATS):
                    sk = DyadicCountSketch(
                        eps=0.01, universe_log2=UNIVERSE_LOG2,
                        seed=100 * rep + depth, width=width, depth=depth,
                    )
                    sk.update_batch(data)
                    report = measure_errors(sk, sorted_truth, EVAL_EPS, 99)
                    avgs.append(report.avg_error)
                    maxs.append(report.max_error)
                avg_cells[(depth, size_kb)] = float(np.mean(avgs))
                max_cells[(depth, size_kb)] = float(np.mean(maxs))
        return avg_cells, max_cells

    avg_cells, max_cells = run_once(benchmark, compute)
    write_exhibit(
        "table3_tuning_d_avg_error",
        matrix_table(
            "d", DEPTHS, "KB", SIZES_KB, avg_cells, scale=1e4,
            title=(
                f"Table 3: DCS avg error (x 1e-4) vs d and sketch size "
                f"(uniform, u=2^{UNIVERSE_LOG2}, n={n})"
            ),
        ),
    )
    write_exhibit(
        "table4_tuning_d_max_error",
        matrix_table(
            "d", DEPTHS, "KB", SIZES_KB, max_cells, scale=1e4,
            title=(
                f"Table 4: DCS max error (x 1e-4) vs d and sketch size "
                f"(uniform, u=2^{UNIVERSE_LOG2}, n={n})"
            ),
        ),
    )

    # Shapes: error shrinks with budget at the tuned depth, and the tuned
    # d = 7 is competitive (within 2x of the best depth) at every budget.
    for cells in (avg_cells, max_cells):
        tuned = [cells[(7, kb)] for kb in SIZES_KB]
        assert tuned[-1] < tuned[0]
        for kb in SIZES_KB[2:]:
            best = min(cells[(d, kb)] for d in DEPTHS)
            assert cells[(7, kb)] <= 2.5 * best + 1e-6
