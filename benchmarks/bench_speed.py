"""Batch vs scalar ingest/query speed — the performance baseline.

Measures, per algorithm, at ``scaled_n(1_000_000)`` elements:

* scalar ingest: the ``update()`` loop, ns per element;
* batch ingest: one chunked ``extend`` / ``update_batch`` pass, ns per
  element, and the resulting speedup;
* query: ``query_batch`` over a 99-point phi grid vs the scalar
  ``query`` loop, µs per quantile.

Results land in two places: the human-readable exhibit under
``benchmarks/results/`` and the machine-readable ``BENCH_speed.json``
at the repo root, which the README throughput table and the perf-smoke
gate (``tests/evaluation/test_perf_smoke.py``) read.  Regenerate with::

    PYTHONPATH=src python benchmarks/bench_speed.py

(or ``pytest benchmarks/bench_speed.py -s``).  ``REPRO_SCALE`` scales
the stream length; the committed artifact is a full-scale run.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.evaluation import machine_context, scaled_n
from repro.evaluation.harness import build_sketch

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_speed.json"

#: (registry name, constructor kwargs, equivalence class of extend,
#: scalar measurement cap).  The acceptance algorithms (gk_array,
#: qdigest, random) time the scalar loop over the full stream; the
#: expensive scalar loops (GKAdaptive's per-element node upkeep, DCS's
#: per-element level fan-out) are timed on a prefix and reported per
#: item — their per-element cost is amortized-constant, and the cap is
#: recorded in the artifact as ``scalar_measured_n``.
SPECS = [
    ("gk_array", dict(eps=0.001), "bit-identical", None),
    ("gk_adaptive", dict(eps=0.001), "error-equivalent", 200_000),
    ("qdigest", dict(eps=0.01, universe_log2=16), "error-equivalent", None),
    ("random", dict(eps=0.01), "same-seed-identical", None),
    ("mrl99", dict(eps=0.01), "same-seed-identical", None),
    ("kll", dict(eps=0.01), "same-seed-identical", 200_000),
    ("dcs", dict(eps=0.01, universe_log2=16), "exact (update_batch)", 5_000),
    ("dcm", dict(eps=0.01, universe_log2=16), "exact (update_batch)", 5_000),
]

PHI_COUNT = 99
CHUNK = 1 << 16


def _build(name: str, params: dict):
    kwargs = dict(params)
    eps = kwargs.pop("eps")
    universe_log2 = kwargs.pop("universe_log2", None)
    return build_sketch(name, eps, universe_log2, seed=1, **kwargs)


def _ingest_batch(sketch, data: np.ndarray) -> float:
    """Chunked batch feed (extend or update_batch); returns seconds."""
    feed = getattr(sketch, "update_batch", None)
    if feed is None or not hasattr(sketch, "delete"):
        feed = sketch.extend
    start = time.perf_counter()
    for lo in range(0, len(data), CHUNK):
        feed(data[lo : lo + CHUNK])
    return time.perf_counter() - start


def _ingest_scalar(sketch, data: np.ndarray) -> float:
    values = data.tolist()
    update = sketch.update
    start = time.perf_counter()
    for v in values:
        update(v)
    return time.perf_counter() - start


def measure_algorithm(
    name: str,
    params: dict,
    data: np.ndarray,
    scalar_cap: int | None = None,
) -> dict:
    """One algorithm's scalar/batch ingest and query timings."""
    n = len(data)
    batch_sketch = _build(name, params)
    batch_s = _ingest_batch(batch_sketch, data)
    scalar_n = n if scalar_cap is None else min(n, scalar_cap)
    scalar_sketch = _build(name, params)
    scalar_s = _ingest_scalar(scalar_sketch, data[:scalar_n])

    phis = [(i + 1) / (PHI_COUNT + 1) for i in range(PHI_COUNT)]
    start = time.perf_counter()
    batch_answers = batch_sketch.query_batch(phis)
    query_batch_s = time.perf_counter() - start
    start = time.perf_counter()
    scalar_answers = [batch_sketch.query(phi) for phi in phis]
    query_scalar_s = time.perf_counter() - start
    assert batch_answers == scalar_answers, (
        f"{name}: query_batch disagrees with the query loop"
    )

    scalar_ns = 1e9 * scalar_s / scalar_n
    batch_ns = 1e9 * batch_s / n
    return {
        "eps": params["eps"],
        "n": n,
        "scalar_measured_n": scalar_n,
        "scalar_update_ns_per_item": scalar_ns,
        "batch_ns_per_item": batch_ns,
        "batch_speedup": scalar_ns / batch_ns,
        "query_batch_us_per_quantile": 1e6 * query_batch_s / PHI_COUNT,
        "query_scalar_us_per_quantile": 1e6 * query_scalar_s / PHI_COUNT,
        "query_speedup": query_scalar_s / max(query_batch_s, 1e-12),
    }


def run_bench(n: int | None = None, seed: int = 42) -> dict:
    """Run the full sweep and return the BENCH_speed.json payload."""
    if n is None:
        n = scaled_n(1_000_000)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1 << 16, size=n, dtype=np.int64)
    algorithms = {}
    for name, params, equivalence, scalar_cap in SPECS:
        row = measure_algorithm(name, params, data, scalar_cap)
        row["equivalence"] = equivalence
        algorithms[name] = row
    return {
        "schema": 1,
        "n": n,
        "repro_scale": float(os.environ.get("REPRO_SCALE", "1")),
        "generated_by": "benchmarks/bench_speed.py",
        "phi_count": PHI_COUNT,
        "machine": machine_context(timestamp=time.time()),
        "algorithms": algorithms,
    }


def format_table(payload: dict) -> str:
    lines = [
        f"Batch vs scalar speed (n={payload['n']}, "
        f"{payload['phi_count']}-point phi grid)",
        f"{'algorithm':12s} {'scalar ns':>10s} {'batch ns':>9s} "
        f"{'speedup':>8s} {'qbatch us':>10s} {'qloop us':>9s} "
        f"equivalence",
    ]
    for name, row in payload["algorithms"].items():
        lines.append(
            f"{name:12s} {row['scalar_update_ns_per_item']:10.0f} "
            f"{row['batch_ns_per_item']:9.0f} "
            f"{row['batch_speedup']:7.1f}x "
            f"{row['query_batch_us_per_quantile']:10.2f} "
            f"{row['query_scalar_us_per_quantile']:9.2f} "
            f"{row['equivalence']}"
        )
    return "\n".join(lines)


def write_artifact(payload: dict) -> None:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def test_bench_speed(benchmark) -> None:
    from conftest import run_once, write_exhibit

    payload = run_once(benchmark, run_bench)
    write_artifact(payload)
    write_exhibit("BENCH_speed", format_table(payload))
    for name in ("gk_array", "qdigest", "random"):
        assert payload["algorithms"][name]["batch_speedup"] >= 2.0, (
            f"{name}: batch ingest regressed below the 2x baseline"
        )


if __name__ == "__main__":
    result = run_bench()
    write_artifact(result)
    table = format_table(result)
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_speed.txt").write_text(table + "\n")
    print(table)
    print(f"\nwrote {ARTIFACT}")
