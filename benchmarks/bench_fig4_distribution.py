"""Figure 4 — the MPCAT-OBS value distribution.

The paper's Fig. 4 is a histogram of the right ascensions, showing a
non-uniform (bimodal) shape.  This bench renders the same histogram for
our synthetic stand-in as an ASCII bar chart and asserts the bimodal
shape that motivates using this data set (sketch error depends on the
distribution; see Fig. 12's discussion of F2).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, write_exhibit
from repro.streams import MPCAT_UNIVERSE

BINS = 40


def test_fig4_distribution(benchmark, mpcat_small) -> None:
    def compute():
        hist, edges = np.histogram(
            mpcat_small, bins=BINS, range=(0, MPCAT_UNIVERSE)
        )
        return hist, edges

    hist, edges = run_once(benchmark, compute)
    peak = hist.max()
    lines = [
        f"Figure 4: synthetic MPCAT-OBS distribution "
        f"(n={len(mpcat_small)}, universe={MPCAT_UNIVERSE})",
        "",
    ]
    for count, lo in zip(hist.tolist(), edges[:-1].tolist()):
        bar = "#" * max(1, int(50 * count / peak)) if count else ""
        lines.append(f"{int(lo):>9} | {bar} {count}")
    write_exhibit("fig4_distribution", "\n".join(lines))

    # Shape: bimodal — two separated local maxima both well above the
    # inter-hump trough.
    third = BINS // 3
    hump1 = hist[:third].max()
    hump2 = hist[2 * third :].max()
    trough = hist[third : 2 * third].min()
    assert hump1 > 2 * trough and hump2 > 1.5 * trough
