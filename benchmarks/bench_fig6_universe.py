"""Figure 6 — q-digest vs universe size (normal data, random order).

The q-digest bound is ``O((1/eps) log u)``, so the paper varies
``log u`` in {16, 24, 32} with everything else fixed and compares against
the best deterministic (GK) and randomized (Random) comparison-based
algorithms, which are unaffected by the universe size.

Expected shapes: q-digest's space/time improve as ``log u`` shrinks, yet
it "is only competitive when log u = 16 and eps < 1e-5" — i.e. never at
practical settings; GK and Random curves barely move across universes.
"""

from __future__ import annotations

from conftest import run_once, write_exhibit
from repro.evaluation import results_table, scaled_n, sweep, tradeoff_series
from repro.streams import normal_stream

UNIVERSES = [16, 24, 32]
EPS_VALUES = [0.01, 0.002, 0.0005]


def test_fig6_universe(benchmark) -> None:
    n = scaled_n(100_000)

    def compute():
        results = []
        for log_u in UNIVERSES:
            data = normal_stream(n, universe_log2=log_u, sigma=0.15, seed=6)
            runs = sweep(
                ["qdigest"], data, EPS_VALUES,
                universe_log2=log_u, repeats=1, seed=0,
            )
            for r in runs:
                results.append((log_u, r))
            # Comparison-based references, once per universe for the table
            # (their behavior should be flat across universes).
            for name in ("gk_array", "random"):
                for r in sweep([name], data, EPS_VALUES, repeats=3, seed=0):
                    results.append((log_u, r))
        return results

    tagged = run_once(benchmark, compute)
    rows = [
        [f"{r.algorithm}@u=2^{log_u}", r.eps, r.n, r.max_error,
         r.avg_error, r.peak_kb, r.update_time_us]
        for log_u, r in tagged
    ]
    from repro.evaluation import format_table

    write_exhibit(
        "fig6_universe",
        format_table(
            ["algorithm@universe", "eps", "n", "max_err", "avg_err",
             "space_KB", "us/update"],
            rows,
            title=(
                f"Figure 6: varying universe size, normal sigma=0.15 "
                f"(n={n})"
            ),
        ),
    )

    # Shapes: q-digest space grows with log u at fixed eps ...
    def qd(log_u, eps):
        return next(
            r for lu, r in tagged
            if lu == log_u and r.algorithm == "qdigest" and r.eps == eps
        )

    for eps in EPS_VALUES:
        assert qd(16, eps).peak_words <= qd(32, eps).peak_words
    # ... and q-digest never beats GKArray's space at these settings.
    for log_u in UNIVERSES:
        for eps in EPS_VALUES:
            gk = next(
                r for lu, r in tagged
                if lu == log_u and r.algorithm == "gk_array"
                and r.eps == eps
            )
            assert qd(log_u, eps).peak_words > gk.peak_words
    # Comparison-based algorithms are insensitive to the universe.
    for name in ("gk_array", "random"):
        spaces = [
            r.peak_words for lu, r in tagged
            if r.algorithm == name and r.eps == EPS_VALUES[0]
        ]
        assert max(spaces) < 1.6 * min(spaces)
