"""Query-tier benchmark: sustained throughput, cache behavior, and the
daemon's own latency telemetry checked against ground truth.

Boots the serving daemon in-process (persistence on), loads one
deterministic ``gk_array`` sketch, then drives the deterministic load
generator (:mod:`repro.serve.loadgen`) over real HTTP connections.
Four things are measured and (at full scale) gated:

* **throughput** — >= 100k quantile queries/sec sustained on one box
  (batched ``/v1/query`` requests; the answer cache does the heavy
  lifting, which is the design being demonstrated);
* **correctness** — the served quantile vector is identical to an
  offline sketch fed the same stream through the same batch kernels;
* **dogfooded latency** — the daemon's KLL request-latency summary
  (``latency.serve.request_ns``) must put its reported p99 within
  ``SUMMARY_EPS`` rank error of the exact p99 computed from a log of
  every request — the serving tier measuring itself with the sketch it
  serves, and being checkably right;
* **warm restart** — kill the daemon, recover a fresh one from the
  persist directory, and get bit-identical sealed-epoch answers.

Results land in ``BENCH_serve.json`` at the repo root.  Regenerate::

    PYTHONPATH=src python benchmarks/bench_serve.py

``--smoke`` runs a small subset for CI (gates disarmed; an existing
full artifact is not overwritten).  ``REPRO_SCALE`` scales the load.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import tempfile
import time

import numpy as np

from repro.evaluation import machine_context, scaled_n
from repro.evaluation.harness import build_sketch, feed_stream
from repro.obs import metrics as obs_metrics
from repro.obs.latency import SUMMARY_EPS, rank_of
from repro.serve.client import ServeClient
from repro.serve.daemon import serve_in_thread
from repro.serve.loadgen import run_load_sync
from repro.serve.service import QuantileService

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_serve.json"

ALGORITHM = "gk_array"  # deterministic: served == offline, exactly
EPS = 1e-3
SKETCH = "bench"
QPS_TARGET = 100_000.0
CHECK_PHIS = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999]


def run_bench(smoke: bool) -> dict:
    n = scaled_n(50_000 if smoke else 200_000)
    total_requests = scaled_n(200 if smoke else 4_000)
    connections = 2 if smoke else 4
    rng = np.random.default_rng(11)
    data = rng.uniform(0.0, 1e6, size=n)

    registry = obs_metrics.enable(obs_metrics.MetricsRegistry())
    latency_log: list = []
    payload: dict = {
        "smoke": smoke,
        "algorithm": ALGORITHM,
        "eps": EPS,
        "n": n,
        "qps_target": QPS_TARGET,
    }
    try:
        with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
            handle = serve_in_thread(
                service=QuantileService(persist_dir=tmp),
                latency_log=latency_log,
            )
            try:
                with ServeClient(handle.url()) as client:
                    client.create(
                        SKETCH, algorithm=ALGORITHM, eps=EPS, seed=0
                    )
                    # Chunked ingest like a real feed; one sealed epoch.
                    ingest_start = time.perf_counter()
                    for lo in range(0, n, 50_000):
                        client.ingest(
                            SKETCH, data[lo:lo + 50_000].tolist()
                        )
                    client.flush(SKETCH)
                    payload["ingest_seconds"] = (
                        time.perf_counter() - ingest_start
                    )

                    # Correctness: served == offline, same kernels.
                    offline = build_sketch(ALGORITHM, EPS, seed=0)
                    feed_stream(offline, data)
                    served = client.quantile(SKETCH, CHECK_PHIS)
                    expected = offline.query_batch(CHECK_PHIS)
                    got = [q["value"] for q in served["quantiles"]]
                    payload["correctness"] = {
                        "phis": CHECK_PHIS,
                        "identical_to_offline": got == expected,
                        "epoch": served["epoch"],
                    }

                    before = client.stats()
                    load = run_load_sync(
                        handle.daemon.host,
                        handle.port,
                        [SKETCH],
                        total_requests=total_requests,
                        connections=connections,
                        seed=3,
                    )
                    after = client.stats()
                    sealed = client.quantile(SKETCH, CHECK_PHIS)
            finally:
                handle.stop()

            # Warm restart: a fresh daemon recovers the sealed epoch
            # from disk and must serve identical quantile vectors.
            restart_start = time.perf_counter()
            handle2 = serve_in_thread(
                service=QuantileService(persist_dir=tmp)
            )
            try:
                with ServeClient(handle2.url()) as client:
                    recovered = client.quantile(SKETCH, CHECK_PHIS)
            finally:
                handle2.stop()
            payload["warm_restart"] = {
                "seconds": time.perf_counter() - restart_start,
                "identical_vectors": (
                    recovered["quantiles"] == sealed["quantiles"]
                ),
                "epoch": recovered["epoch"],
            }
    finally:
        obs_metrics.disable()

    payload["load"] = load
    hits = after["cache"]["hits"] - before["cache"]["hits"]
    misses = after["cache"]["misses"] - before["cache"]["misses"]
    coalesced = (
        after["cache"]["coalesced"] - before["cache"]["coalesced"]
    )
    lookups = hits + misses + coalesced
    payload["cache"] = {
        "hits": hits,
        "misses": misses,
        "coalesced": coalesced,
        "hit_ratio": hits / lookups if lookups else 0.0,
        "entries": after["cache"]["entries"],
    }

    # Dogfooded latency: the daemon's own KLL summary vs the exact log.
    summary = registry.get("latency.serve.request_ns")
    exact = sorted(latency_log)
    dogfood_p99 = summary.quantile(0.99)
    true_rank = rank_of(exact, dogfood_p99)
    exact_p99 = exact[min(len(exact) - 1, int(0.99 * len(exact)))]
    payload["request_latency_ns"] = {
        "requests": len(exact),
        "summary_count": summary.count,
        "summary_eps": SUMMARY_EPS,
        "dogfood_p50": summary.quantile(0.5),
        "dogfood_p99": dogfood_p99,
        "exact_p99": exact_p99,
        "dogfood_p99_true_rank": true_rank,
        "rank_error": abs(true_rank - 0.99),
    }
    payload["machine"] = machine_context(timestamp=time.time())
    return payload


def check_payload(payload: dict) -> list:
    """Acceptance gates; armed only at full scale."""
    problems = []
    if not payload["correctness"]["identical_to_offline"]:
        problems.append("served quantile vector diverged from offline")
    if not payload["warm_restart"]["identical_vectors"]:
        problems.append("warm restart changed sealed-epoch answers")
    if payload["load"]["error_count"]:
        problems.append(
            f"load generator saw {payload['load']['error_count']} errors"
        )
    lat = payload["request_latency_ns"]
    # One log entry of slack: rank_of is a step function on a finite
    # sample, so ties at the boundary cost up to 1/requests of rank.
    slack = SUMMARY_EPS + 1.0 / max(1, lat["requests"])
    if lat["rank_error"] > slack:
        problems.append(
            f"dogfooded p99 rank error {lat['rank_error']:.4f} "
            f"exceeds eps {slack:.4f}"
        )
    if payload["smoke"]:
        return problems  # throughput gate arms only at full scale
    if payload["load"]["qps"] < QPS_TARGET:
        problems.append(
            f"sustained {payload['load']['qps']:,.0f} qps "
            f"< target {QPS_TARGET:,.0f}"
        )
    return problems


def format_table(payload: dict) -> str:
    load, cache = payload["load"], payload["cache"]
    lat = payload["request_latency_ns"]
    lines = [
        "BENCH_serve -- always-on query tier "
        f"({payload['algorithm']}, eps={payload['eps']}, "
        f"n={payload['n']:,}{', smoke' if payload['smoke'] else ''})",
        f"throughput   {load['qps']:>12,.0f} queries/s "
        f"({load['rps']:,.0f} req/s, {load['connections']} conns, "
        f"{load['queries_per_request']} queries/req)",
        f"cache        {100 * cache['hit_ratio']:.1f}% hit "
        f"({cache['hits']:,} hits / {cache['misses']:,} misses / "
        f"{cache['coalesced']:,} coalesced)",
        f"latency p99  dogfood {lat['dogfood_p99'] / 1e6:.3f} ms vs "
        f"exact {lat['exact_p99'] / 1e6:.3f} ms "
        f"(rank error {lat['rank_error']:.4f}, eps "
        f"{lat['summary_eps']:.4f})",
        f"warm restart {payload['warm_restart']['seconds']:.3f} s, "
        "identical vectors: "
        f"{payload['warm_restart']['identical_vectors']}",
        f"correctness  identical to offline: "
        f"{payload['correctness']['identical_to_offline']}",
    ]
    return "\n".join(lines)


def test_bench_serve(benchmark) -> None:
    from conftest import run_once, write_exhibit

    payload = run_once(benchmark, lambda: run_bench(smoke=True))
    write_exhibit("BENCH_serve_smoke", format_table(payload))
    failures = check_payload(payload)
    assert not failures, "\n".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small subset (CI smoke; does not overwrite a full "
             "artifact with a smoke one unless none exists)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="artifact path (default: repo-root BENCH_serve.json)",
    )
    args = parser.parse_args()
    result = run_bench(smoke=args.smoke)
    out = args.out
    table_name = "BENCH_serve.txt"
    if out is None:
        out = ARTIFACT
        if args.smoke and ARTIFACT.exists():
            existing = json.loads(ARTIFACT.read_text())
            if not existing.get("smoke", False):
                out = REPO_ROOT / "BENCH_serve.smoke.json"
                table_name = "BENCH_serve.smoke.txt"
    out.write_text(json.dumps(result, indent=2) + "\n")
    table = format_table(result)
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / table_name).write_text(table + "\n")
    print(table)
    print(f"\nwrote {out}")
    problems = check_payload(result)
    if problems:
        raise SystemExit("FAIL:\n" + "\n".join(problems))
    print("all acceptance checks passed")
