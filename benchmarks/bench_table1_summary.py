"""Table 1 — the algorithm inventory, with measured spot checks.

The paper's Table 1 lists each algorithm's asymptotic space/update bounds
and its model.  Asymptotics cannot be "measured", but this bench verifies
the table's structure empirically: every listed algorithm runs, and the
measured update time and space are reported side by side with the claimed
bounds.  RSS's quadratic blow-up (the reason it is excluded elsewhere) is
visible directly in its row.
"""

from __future__ import annotations

import pytest

from conftest import run_once, write_exhibit
from repro.evaluation import build_sketch, feed_stream, format_table, scaled_n
from repro.streams import uniform_stream

ROWS = [
    # name, kwargs, claimed space, claimed update, model
    ("gk_adaptive", {}, "— (heuristic)", "O(log s)", "comparison/det"),
    ("gk_array", {}, "— (heuristic)", "O(log s) amortized", "comparison/det"),
    ("gk_theory", {}, "O(1/e log(en))", "O(log 1/e + loglog en)",
     "comparison/det"),
    ("qdigest", {"universe_log2": 20}, "O(1/e log u)",
     "O(log 1/e + loglog u)", "fixed-universe/det"),
    ("mrl99", {}, "O(1/e log^2 1/e)", "O(log 1/e)", "comparison/rand"),
    ("random", {}, "O(1/e log^1.5 1/e)", "O(log 1/e)", "comparison/rand"),
    ("rss", {"universe_log2": 20, "reps": 64},
     "O(1/e^2 log^2 u ...)", "O(1/e^2 log^2 u ...)", "fixed-universe/rand"),
    ("dcm", {"universe_log2": 20}, "O(1/e log^2 u ...)",
     "O(log u ...)", "fixed-universe/rand"),
    ("dcs", {"universe_log2": 20}, "O(1/e log^1.5 u ...)",
     "O(log u ...)", "fixed-universe/rand"),
]


@pytest.mark.parametrize("row", ROWS, ids=[r[0] for r in ROWS])
def test_update_throughput(benchmark, row) -> None:
    """Per-algorithm update throughput (the pytest-benchmark table is the
    measured 'update time' column of Table 1)."""
    name, kwargs, *_ = row
    n = scaled_n(20_000 if name == "rss" else 50_000)
    data = uniform_stream(n, universe_log2=20, seed=1)

    def build_and_feed():
        sketch = build_sketch(name, eps=0.01, seed=0, **kwargs)
        feed_stream(sketch, data)
        return sketch

    sketch = benchmark.pedantic(build_and_feed, rounds=1, iterations=1)
    benchmark.extra_info["peak_kb"] = sketch.size_words() * 4 / 1024
    benchmark.extra_info["n"] = n


def test_table1_report(benchmark) -> None:
    """Emit the measured Table 1."""
    n = scaled_n(50_000)
    data = uniform_stream(n, universe_log2=20, seed=1)

    def compute():
        out = []
        for name, kwargs, space_bound, update_bound, model in ROWS:
            stream = data[: scaled_n(10_000)] if name == "rss" else data
            sketch = build_sketch(name, eps=0.01, seed=0, **kwargs)
            seconds, peak = feed_stream(sketch, stream)
            out.append([
                name,
                space_bound,
                update_bound,
                model,
                f"{peak * 4 / 1024:.1f}",
                f"{1e6 * seconds / len(stream):.2f}",
            ])
        return out

    rows = run_once(benchmark, compute)
    write_exhibit(
        "table1_summary",
        format_table(
            ["algorithm", "space bound", "update bound", "model",
             "meas. KB (eps=0.01)", "meas. us/update"],
            rows,
            title=f"Table 1: algorithms evaluated (n={n}, uniform u=2^20)",
        ),
    )
