"""Durable-ingest cost model: WAL overhead per fsync policy, recovery
time per checkpoint interval.

Two sweeps, both against the same synthetic stream:

* **fsync overhead** — a plain in-memory feed versus
  :class:`~repro.durability.ingest.DurableIngest` under each fsync
  policy (``never`` / ``rotate`` / ``always``).  The durable summary
  must stay bit-identical to the plain one (same batches, same order,
  same kernel dispatch), so the only thing the policy buys or costs is
  wall clock and write amplification.
* **recovery** — ingest, crash at ~80% of the batches (no seal, no
  final fsync — exactly what a SIGKILL leaves behind), reopen, and time
  the recovery.  Swept over checkpoint intervals: a tighter interval
  bounds the WAL tail and hence replay work, at the price of more
  checkpoint writes during ingest.  The resumed run must finish
  bit-identical to an uninterrupted one.

Results land in ``BENCH_durability.json`` at the repo root with the
machine context.  There is deliberately no wall-clock acceptance gate —
fsync latency is hardware truth, not a regression — but every
bit-identical flag must hold and replay must stay bounded by the
checkpoint interval.  Regenerate with::

    PYTHONPATH=src python benchmarks/bench_durability.py

``--smoke`` runs a small-n subset for CI; ``REPRO_SCALE`` scales the
stream length as usual.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import tempfile
import time

import numpy as np

from repro.core.snapshot import snapshot
from repro.durability import DurabilityConfig, DurableIngest
from repro.durability.ingest import _apply_batch
from repro.durability.wal import FSYNC_POLICIES
from repro.evaluation import machine_context, scaled_n
from repro.evaluation.harness import build_sketch

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_durability.json"

#: (registry name, constructor kwargs).  gk_array is the deterministic
#: reference; kll exercises the seeded-randomized path; qdigest the
#: fixed-universe path.
SPECS = [
    ("gk_array", dict(eps=0.001)),
    ("kll", dict(eps=0.01)),
    ("qdigest", dict(eps=0.01, universe_log2=16)),
]

SMOKE_SPECS = [
    ("gk_array", dict(eps=0.001)),
]

BATCH = 4096
SEED = 42
INTERVALS = (16, 64, 256)
SMOKE_INTERVALS = (8, 32)
CRASH_FRACTION = 0.8


def _build(name: str, params: dict):
    kwargs = dict(params)
    eps = kwargs.pop("eps")
    universe_log2 = kwargs.pop("universe_log2", None)
    return build_sketch(name, eps, universe_log2, seed=SEED, **kwargs)


def _plain_snapshot(name: str, params: dict, data: np.ndarray) -> tuple:
    """Feed a plain sketch batch-for-batch; return (snapshot, seconds)."""
    sketch = _build(name, params)
    start = time.perf_counter()
    for lo in range(0, len(data), BATCH):
        _apply_batch(sketch, data[lo : lo + BATCH])
    seconds = time.perf_counter() - start
    return snapshot(sketch), seconds


def _dir_bytes(path: pathlib.Path) -> int:
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


def _durable_kwargs(params: dict) -> tuple:
    kwargs = dict(params)
    eps = kwargs.pop("eps")
    universe_log2 = kwargs.pop("universe_log2", None)
    return eps, universe_log2, kwargs


def measure_fsync(
    name: str, params: dict, data: np.ndarray, workdir: pathlib.Path
) -> dict:
    """Plain baseline vs DurableIngest per fsync policy."""
    baseline, plain_s = _plain_snapshot(name, params, data)
    eps, universe_log2, kwargs = _durable_kwargs(params)
    policies = {}
    for policy in FSYNC_POLICIES:
        directory = workdir / f"{name}-fsync-{policy}"
        config = DurabilityConfig(
            directory=directory, fsync=policy, checkpoint_interval=64
        )
        store = DurableIngest(
            config, name, eps,
            universe_log2=universe_log2, seed=SEED, dtype=data.dtype,
            **kwargs,
        )
        start = time.perf_counter()
        for lo in range(0, len(data), BATCH):
            store.ingest(data[lo : lo + BATCH])
        durable_bytes = _dir_bytes(directory)
        summary = store.finish()
        seconds = time.perf_counter() - start
        policies[policy] = {
            "seconds": seconds,
            "overhead_x": seconds / max(plain_s, 1e-12),
            "store_bytes": durable_bytes,
            "bit_identical": snapshot(summary) == baseline,
        }
        shutil.rmtree(directory)
    return {
        "eps": eps,
        "plain_seconds": plain_s,
        "stream_bytes": int(data.nbytes),
        "policies": policies,
    }


def measure_recovery(
    name: str,
    params: dict,
    data: np.ndarray,
    intervals: tuple,
    workdir: pathlib.Path,
) -> dict:
    """Crash at ~80% of batches; time recovery per checkpoint interval."""
    baseline, _ = _plain_snapshot(name, params, data)
    eps, universe_log2, kwargs = _durable_kwargs(params)
    batches = [data[lo : lo + BATCH] for lo in range(0, len(data), BATCH)]
    crash_at = max(1, int(len(batches) * CRASH_FRACTION))
    rows = {}
    for interval in intervals:
        directory = workdir / f"{name}-ckpt-{interval}"
        config = DurabilityConfig(
            directory=directory, checkpoint_interval=interval, fsync="rotate"
        )
        store = DurableIngest(
            config, name, eps,
            universe_log2=universe_log2, seed=SEED, dtype=data.dtype,
            **kwargs,
        )
        ingest_start = time.perf_counter()
        for batch in batches[:crash_at]:
            store.ingest(batch)
        ingest_s = time.perf_counter() - ingest_start
        store.crash()
        recover_start = time.perf_counter()
        store = DurableIngest(
            config, name, eps,
            universe_log2=universe_log2, seed=SEED, dtype=data.dtype,
            **kwargs,
        )
        recovery_s = time.perf_counter() - recover_start
        report = store.recovery
        for ordinal in range(store.wal.next_seq, len(batches)):
            store.ingest(batches[ordinal])
        summary = store.finish()
        rows[str(interval)] = {
            "ingest_seconds_to_crash": ingest_s,
            "recovery_seconds": recovery_s,
            "replayed_batches": report.replayed_batches,
            "checkpoint_seq": report.checkpoint_seq,
            "replay_bounded": report.replayed_batches <= interval,
            "bit_identical": snapshot(summary) == baseline,
        }
        shutil.rmtree(directory)
    return {
        "eps": eps,
        "batches": len(batches),
        "crash_at_batch": crash_at,
        "intervals": rows,
    }


def run_bench(n: int | None = None, smoke: bool = False) -> dict:
    """Run both sweeps and return the BENCH_durability.json payload."""
    specs = SMOKE_SPECS if smoke else SPECS
    intervals = SMOKE_INTERVALS if smoke else INTERVALS
    if n is None:
        n = scaled_n(30_000 if smoke else 400_000)
    rng = np.random.default_rng(SEED)
    data = rng.integers(0, 1 << 16, size=n, dtype=np.int64)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-durability-"))
    try:
        fsync = {}
        recovery = {}
        for name, params in specs:
            fsync[name] = measure_fsync(name, params, data, workdir)
            recovery[name] = measure_recovery(
                name, params, data, intervals, workdir
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "schema": 1,
        "n": n,
        "smoke": smoke,
        "repro_scale": float(os.environ.get("REPRO_SCALE", "1")),
        "generated_by": "benchmarks/bench_durability.py",
        "batch": BATCH,
        "fsync_policies": list(FSYNC_POLICIES),
        "checkpoint_intervals": list(intervals),
        "machine": machine_context(timestamp=time.time()),
        "fsync_overhead": fsync,
        "recovery": recovery,
    }


def check_payload(payload: dict) -> list[str]:
    """Acceptance checks; returns a list of failure strings.

    Correctness only — every durable and recovered run must be
    bit-identical to its in-memory twin, and replay work must stay
    bounded by the checkpoint interval.  Wall clock is recorded, never
    gated.
    """
    failures = []
    for name, row in payload["fsync_overhead"].items():
        for policy, cell in row["policies"].items():
            if not cell["bit_identical"]:
                failures.append(f"{name}/fsync={policy}: summary diverged")
    for name, row in payload["recovery"].items():
        for interval, cell in row["intervals"].items():
            if not cell["bit_identical"]:
                failures.append(
                    f"{name}/ckpt={interval}: recovered run diverged"
                )
            if not cell["replay_bounded"]:
                failures.append(
                    f"{name}/ckpt={interval}: replayed "
                    f"{cell['replayed_batches']} batches > interval"
                )
    return failures


def format_table(payload: dict) -> str:
    lines = [
        f"Durable ingest (n={payload['n']}, batch={payload['batch']}, "
        f"{payload['machine']['cpu_count']} cores)",
        "",
        f"{'fsync overhead':14s} {'plain s':>8s} "
        + " ".join(f"{policy:>9s}" for policy in payload["fsync_policies"]),
    ]
    for name, row in payload["fsync_overhead"].items():
        cells = " ".join(
            f"{row['policies'][policy]['overhead_x']:8.2f}x"
            for policy in payload["fsync_policies"]
        )
        lines.append(f"{name:14s} {row['plain_seconds']:8.3f} {cells}")
    lines.append("")
    header = " ".join(
        f"{f'ckpt={i}':>10s}" for i in payload["checkpoint_intervals"]
    )
    lines.append(f"{'recovery ms':14s} {header}  (replayed batches)")
    for name, row in payload["recovery"].items():
        cells = " ".join(
            f"{1e3 * row['intervals'][str(i)]['recovery_seconds']:9.1f} "
            for i in payload["checkpoint_intervals"]
        )
        replayed = "/".join(
            str(row["intervals"][str(i)]["replayed_batches"])
            for i in payload["checkpoint_intervals"]
        )
        lines.append(f"{name:14s} {cells}  ({replayed})")
    return "\n".join(lines)


def write_artifact(payload: dict) -> None:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")


def test_bench_durability(benchmark) -> None:
    from conftest import run_once, write_exhibit

    payload = run_once(benchmark, lambda: run_bench(smoke=True))
    write_exhibit("BENCH_durability_smoke", format_table(payload))
    failures = check_payload(payload)
    assert not failures, "\n".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small-n subset (CI smoke; does not overwrite a full "
             "artifact with a smoke one unless none exists)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="artifact path (default: repo-root BENCH_durability.json)",
    )
    args = parser.parse_args()
    result = run_bench(smoke=args.smoke)
    out = args.out
    table_name = "BENCH_durability.txt"
    if out is None:
        out = ARTIFACT
        if args.smoke and ARTIFACT.exists():
            existing = json.loads(ARTIFACT.read_text())
            if not existing.get("smoke", False):
                out = REPO_ROOT / "BENCH_durability.smoke.json"
                table_name = "BENCH_durability.smoke.txt"
    out.write_text(json.dumps(result, indent=2) + "\n")
    table = format_table(result)
    results_dir = pathlib.Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / table_name).write_text(table + "\n")
    print(table)
    print(f"\nwrote {out}")
    problems = check_payload(result)
    if problems:
        raise SystemExit("FAIL:\n" + "\n".join(problems))
    print("all acceptance checks passed")
