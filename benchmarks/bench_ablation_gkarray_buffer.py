"""Ablation — GKArray buffer sizing.

GKArray's buffer capacity tracks Theta(|L|) (DESIGN.md design choice).
This ablation sweeps the proportionality factor: a smaller buffer flushes
more often (more merge passes per element), a larger one holds more raw
elements (more transient space).  The default factor 1.0 should sit at a
sane point on that tradeoff.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, write_exhibit
from repro.cash_register import GKArray
from repro.evaluation import format_table, measure_errors, scaled_n
from repro.streams import uniform_stream

FACTORS = [0.25, 0.5, 1.0, 2.0, 4.0]
EPS = 0.001


def test_ablation_gkarray_buffer(benchmark) -> None:
    n = scaled_n(100_000)
    data = uniform_stream(n, universe_log2=24, seed=20)
    sorted_truth = np.sort(data)

    def compute():
        import time

        rows = []
        for factor in FACTORS:
            sk = GKArray(eps=EPS, buffer_factor=factor)
            start = time.perf_counter()
            sk.extend(data.tolist())
            seconds = time.perf_counter() - start
            report = measure_errors(sk, sorted_truth, EPS, 499)
            sk._prepare_query()
            rows.append([
                factor, report.max_error, sk.tuple_count(),
                sk.size_words() * 4 / 1024, 1e6 * seconds / n,
            ])
        return rows

    rows = run_once(benchmark, compute)
    write_exhibit(
        "ablation_gkarray_buffer",
        format_table(
            ["buffer factor", "max_err", "|L|", "space KB", "us/update"],
            rows,
            title=(
                f"Ablation: GKArray buffer capacity factor "
                f"(uniform, n={n}, eps={EPS})"
            ),
        ),
    )
    # The guarantee must hold at every factor.
    assert all(row[1] <= EPS for row in rows)
    # A bigger buffer never makes updates slower by much (amortization).
    assert rows[-1][4] < 3 * rows[2][4]
