"""Extension — sliding-window quantiles (the paper's reference [3]).

Compares the windowed summary against (a) an exact deque of the window —
accuracy and space — and (b) a whole-stream GKArray, to show *why*
windows matter: after a distribution shift, the whole-stream summary
answers from stale history while the window tracks the shift.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, write_exhibit
from repro.cash_register import GKArray
from repro.cash_register.sliding_window import SlidingWindowQuantiles
from repro.evaluation import format_table, scaled_n
from repro.sketches.hashing import make_rng

EPS = 0.02
WINDOW = 50_000


def test_extension_sliding_window(benchmark) -> None:
    n = scaled_n(100_000)
    rng = make_rng(24)
    # First half uniform over [0, 2^20); second half shifted up.
    first = rng.integers(0, 1 << 20, size=n // 2)
    second = rng.integers(1 << 21, (1 << 21) + (1 << 20), size=n - n // 2)
    data = np.concatenate([first, second]).astype(np.int64)

    def compute():
        window_sk = SlidingWindowQuantiles(eps=EPS, window=WINDOW)
        stream_sk = GKArray(eps=EPS)
        for x in data.tolist():
            window_sk.update(x)
            stream_sk.update(x)
        window_truth = np.sort(data[-WINDOW:])
        rows = []
        for phi in (0.1, 0.5, 0.9):
            target = phi * WINDOW
            w_q = window_sk.query(phi)
            s_q = stream_sk.query(phi)
            w_err = abs(
                float(np.searchsorted(window_truth, w_q)) - target
            ) / WINDOW
            s_err = abs(
                float(np.searchsorted(window_truth, s_q)) - target
            ) / WINDOW
            rows.append([phi, int(w_q), f"{w_err:.4f}", int(s_q),
                         f"{s_err:.4f}"])
        sizes = (window_sk.size_words(), WINDOW)
        return rows, sizes

    rows, (words, raw_words) = run_once(benchmark, compute)
    write_exhibit(
        "extension_sliding_window",
        format_table(
            ["phi", "window answer", "window err",
             "whole-stream answer", "err vs window truth"],
            rows,
            title=(
                f"Extension: sliding window W={WINDOW} after a "
                f"distribution shift (n={n}, eps={EPS}; summary "
                f"{words} words vs {raw_words} raw)"
            ),
        ),
    )
    # The window answers about the NEW distribution within eps...
    assert all(float(r[2]) <= EPS for r in rows), rows
    # ...while the whole-stream summary is far off the window's truth.
    assert any(float(r[4]) > 10 * EPS for r in rows), rows
    # And the structure is far smaller than the raw window.
    assert words < raw_words / 3
