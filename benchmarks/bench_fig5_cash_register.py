"""Figure 5 — the headline cash-register comparison on MPCAT-OBS.

Six panels from one sweep over the synthetic MPCAT stream:

* 5a/5b: eps vs actual max/avg error — deterministic algorithms must stay
  under eps (typically landing at eps/4..2eps/3); the randomized ones land
  far below their guarantee.
* 5c/5d: error-space tradeoff (max and avg error) — Random/MRL99 win,
  GK variants close, FastQDigest largest.
* 5e: error-time tradeoff — GKAdaptive and FastQDigest degrade at small
  eps (pointer-chasing per element), the sort/merge algorithms do not.
* 5f: space-time tradeoff.
"""

from __future__ import annotations

from conftest import run_once, write_exhibit
from repro.evaluation import plot_results, results_table, sweep, tradeoff_series

ALGORITHMS = [
    "gk_adaptive", "gk_array", "gk_theory", "mrl99", "random", "qdigest",
]
EPS_VALUES = [0.02, 0.005, 0.002, 0.0005]
UNIVERSE_LOG2 = 24  # MPCAT values fit in 24 bits (log u = 24, as in §4.2.2)


def test_fig5_cash_register(benchmark, mpcat_small) -> None:
    def compute():
        return sweep(
            ALGORITHMS,
            mpcat_small,
            EPS_VALUES,
            universe_log2=UNIVERSE_LOG2,
            repeats=3,
            seed=0,
        )

    results = run_once(benchmark, compute)
    n = len(mpcat_small)
    parts = [
        results_table(
            results,
            title=(
                f"Figure 5: cash-register algorithms on synthetic "
                f"MPCAT-OBS (n={n}, log u={UNIVERSE_LOG2})"
            ),
        ),
        tradeoff_series(results, "eps", "max_error",
                        title="Fig 5a: eps vs actual max error"),
        tradeoff_series(results, "eps", "avg_error",
                        title="Fig 5b: eps vs actual avg error"),
        tradeoff_series(results, "max_error", "peak_kb",
                        title="Fig 5c: max error vs space (KB)"),
        tradeoff_series(results, "avg_error", "peak_kb",
                        title="Fig 5d: avg error vs space (KB)"),
        tradeoff_series(results, "avg_error", "update_time_us",
                        title="Fig 5e: avg error vs update time (us)"),
        tradeoff_series(results, "peak_kb", "update_time_us",
                        title="Fig 5f: space (KB) vs update time (us)"),
        plot_results(results, "avg_error", "peak_kb",
                     title="Fig 5d (chart): avg error vs space KB"),
        plot_results(results, "avg_error", "update_time_us",
                     title="Fig 5e (chart): avg error vs update us"),
    ]
    write_exhibit("fig5_cash_register", "\n\n".join(parts))

    # Shape assertions (the paper's findings):
    from repro.evaluation import by_algorithm

    curves = by_algorithm(results)
    # Deterministic algorithms never exceed their eps guarantee.
    for name in ("gk_adaptive", "gk_array", "gk_theory", "qdigest"):
        for r in curves[name]:
            assert r.max_error <= r.eps, (name, r.eps, r.max_error)
    # Randomized algorithms' observed error is well under eps.
    for name in ("random", "mrl99"):
        for r in curves[name]:
            assert r.max_error < r.eps
    # FastQDigest is the space loser at matched guarantees: it dwarfs the
    # GK variants at every eps...
    for qd, gk in zip(curves["qdigest"], curves["gk_array"]):
        assert qd.peak_words > 5 * gk.peak_words
    # ...and Random dominates it somewhere on the error-space plane
    # (smaller observed error with less space), as in Fig 5c/5d.
    assert any(
        rnd.avg_error <= qd.avg_error and rnd.peak_words < qd.peak_words
        for rnd in curves["random"]
        for qd in curves["qdigest"]
        if qd.avg_error > 0
    )
