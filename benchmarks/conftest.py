"""Shared fixtures for the benchmark suite.

Every paper exhibit (table or figure) has one benchmark module.  Each
module times its computation under pytest-benchmark and *also* emits the
exhibit itself — the same rows/series the paper reports — via
:func:`write_exhibit`, which prints it (visible with ``-s``) and saves it
under ``benchmarks/results/``.  EXPERIMENTS.md records paper-vs-measured
from those files.

Stream sizes honor ``REPRO_SCALE`` (see repro.evaluation.runner): the
defaults keep the full suite in minutes on a laptop; scale up for
closer-to-paper runs.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro import obs
from repro.evaluation import scaled_n
from repro.streams import synthetic_mpcat_obs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _observability_artifacts():
    """When ``REPRO_OBS_DIR`` is set, collect metrics + traces across the
    whole benchmark session and write them there as artifacts (the CI
    smoke job uploads the directory)."""
    obs_dir = os.environ.get("REPRO_OBS_DIR")
    if not obs_dir:
        yield
        return
    out = pathlib.Path(obs_dir)
    out.mkdir(parents=True, exist_ok=True)
    registry = obs.enable()
    tracer = obs.enable_tracing()
    try:
        yield
    finally:
        obs.disable()
        obs.disable_tracing()
        (out / "metrics.json").write_text(
            json.dumps(obs.to_json(registry), indent=2) + "\n"
        )
        (out / "metrics.prom").write_text(obs.to_prometheus(registry))
        (out / "report.txt").write_text(obs.report(registry) + "\n")
        tracer.write(out / "trace.jsonl")


def write_exhibit(name: str, text: str) -> None:
    """Print an exhibit and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def mpcat_small():
    """MPCAT-like stream for error/space exhibits (moderate n)."""
    return synthetic_mpcat_obs(scaled_n(100_000), seed=42)


@pytest.fixture(scope="session")
def mpcat_tiny():
    """Smaller MPCAT-like stream for the slowest sweeps."""
    return synthetic_mpcat_obs(scaled_n(40_000), seed=42)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
