"""Extension — biased (relative-error) quantiles vs uniform GK.

The paper points to biased quantiles [10] as the natural extension of the
uniform guarantee.  This exhibit compares the accuracy *profile* across
phi of BiasedGK against GKArray at matched eps: the biased summary should
be orders of magnitude sharper at the head (small phi) for a modest
space premium.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, write_exhibit
from repro.cash_register import BiasedQuantiles, GKArray
from repro.core import ExactQuantiles
from repro.evaluation import format_table, scaled_n
from repro.streams import uniform_stream

EPS = 0.01
PHIS = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 0.9, 0.99]


def test_extension_biased(benchmark) -> None:
    n = scaled_n(100_000)
    data = uniform_stream(n, universe_log2=24, seed=23)
    exact = ExactQuantiles(data.tolist())

    def compute():
        biased = BiasedQuantiles(eps=EPS)
        uniform = GKArray(eps=EPS)
        biased.extend(data.tolist())
        uniform.extend(data.tolist())
        rows = []
        for phi in PHIS:
            row = [phi]
            for sk in (uniform, biased):
                q = sk.query(phi)
                lo, hi = exact.rank_interval(q)
                target = phi * n
                err = 0.0 if lo <= target <= hi else min(
                    abs(target - lo), abs(target - hi)
                )
                row.append(err / n)
            rows.append(row)
        sizes = (uniform.size_words(), biased.size_words())
        return rows, sizes

    rows, (uniform_words, biased_words) = run_once(benchmark, compute)
    write_exhibit(
        "extension_biased",
        format_table(
            ["phi", "GKArray abs err", "BiasedGK abs err"],
            rows,
            title=(
                f"Extension: biased vs uniform guarantee (uniform data, "
                f"n={n}, eps={EPS}; GKArray {uniform_words * 4}B, "
                f"BiasedGK {biased_words * 4}B)"
            ),
        ),
    )
    # Head quantiles: biased must beat the uniform budget by a wide margin.
    head = [r for r in rows if r[0] <= 0.005]
    assert all(r[2] <= EPS * r[0] + 2.0 / n for r in head), head
    # Space premium stays within an order of magnitude.
    assert biased_words < 10 * uniform_words
