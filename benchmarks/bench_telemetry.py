"""Telemetry-plane smoke and overhead benchmark: a supervised sharded
ingest with a chaos-scheduled worker kill, scraped *live* over HTTP
while it runs.

The point is end-to-end: the same process serves ``/metrics`` and
``/healthz`` from a background thread while the supervised engine
detects the kill, restarts the shard, and finishes bit-identically.
The benchmark records:

* **liveness** — every scrape during ingest must return a parseable
  Prometheus exposition and a healthz payload whose restart budgets
  move when the chaos kill lands;
* **degrade forensics** — the chaos kill must leave a flight-record
  JSONL (``supervisor.restart``) in the flight directory;
* **overhead** — wall clock for the same supervised run with and
  without the telemetry plane (server + flight recorder + tracing).

Results land in ``BENCH_telemetry.json`` at the repo root.  Regenerate
with::

    PYTHONPATH=src python benchmarks/bench_telemetry.py

``--smoke`` runs a small-n subset for CI; ``REPRO_SCALE`` scales the
stream length as usual.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import tempfile
import time
import urllib.request

import numpy as np

from repro.core.snapshot import snapshot
from repro.distributed.faults import FaultPlan
from repro.durability import SupervisorConfig
from repro.durability.supervisor import SupervisedIngestEngine
from repro.evaluation import machine_context, scaled_n
from repro.obs import (
    MetricsRegistry,
    TelemetryServer,
    Tracer,
    disable_flight,
    enable_flight,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.parallel.plan import ShardPlan

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_telemetry.json"

EPS = 0.01
SHARDS = 2


def _scrape(server: TelemetryServer, path: str) -> tuple:
    try:
        response = urllib.request.urlopen(server.url(path), timeout=10)
        return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:  # healthz 503 while degraded
        return exc.code, exc.read().decode("utf-8")


def _supervised_run(
    data: np.ndarray,
    plan: ShardPlan,
    faults: FaultPlan,
    workdir: pathlib.Path,
    telemetry: bool,
    scrape_every: int = 4,
) -> dict:
    """One supervised run; with ``telemetry`` the full plane is live and
    scraped between ingest chunks."""
    record: dict = {"telemetry": telemetry, "scrapes": 0}
    server = None
    flight_dir = workdir / "flight"
    if telemetry:
        obs_metrics.enable(MetricsRegistry())
        obs_trace.enable_tracing(Tracer())
        flight_dir.mkdir()
        enable_flight(flight_dir)
        server = TelemetryServer().start()
        record["url"] = server.url("")
    try:
        supervisor = SupervisorConfig(
            max_restarts=2,
            restart_backoff_s=0.05,
            hung_timeout_s=30.0,
            poll_interval_s=0.05,
        )
        start = time.perf_counter()
        with SupervisedIngestEngine(
            "gk_array",
            EPS,
            plan,
            workdir / "stores",
            faults=faults,
            supervisor=supervisor,
            collect_metrics=telemetry,
            dtype=data.dtype,
        ) as engine:
            step = plan.chunk_size * scrape_every
            for lo in range(0, len(data), step):
                engine.ingest(data[lo : lo + step])
                if server is not None:
                    status, text = _scrape(server, "/metrics")
                    assert status == 200 and "# TYPE" in text
                    h_status, h_text = _scrape(server, "/healthz")
                    assert h_status in (200, 503)
                    health = json.loads(h_text)
                    record["scrapes"] += 1
                    record["last_health"] = {
                        "status": health["status"],
                        "restarts_remaining": {
                            worker: shard.get("restarts_remaining")
                            for worker, shard in health["shards"].items()
                        },
                    }
            result = engine.finish()
        record["seconds"] = time.perf_counter() - start
        record["restarts"] = list(result.restarts)
        record["coverage"] = result.coverage
        record["snapshot_sha"] = hashlib.sha256(
            snapshot(result.summary)
        ).hexdigest()
        if telemetry:
            flight = [p.name for p in sorted(flight_dir.glob("*.jsonl"))]
            record["flight_dumps"] = flight
            assert any("supervisor-restart" in name for name in flight), (
                "chaos kill left no flight record"
            )
            tracer = obs_trace.tracer()
            worker_pids = {
                e.get("pid")
                for e in tracer.events
                if e.get("pid") is not None
            }
            record["worker_pids_in_trace"] = len(worker_pids)
        return record
    finally:
        if server is not None:
            server.stop()
        disable_flight()
        obs_trace.disable_tracing()
        obs_metrics.disable()


def run(smoke: bool) -> dict:
    n = scaled_n(16_384 if smoke else 262_144)
    chunk = 1024
    rng = np.random.default_rng(23)
    data = rng.integers(0, 1 << 20, size=n, dtype=np.int64)
    plan = ShardPlan(seed=0, shards=SHARDS, chunk_size=chunk)
    # Kill shard 1 on its second chunk — the supervisor must restart it
    # while the server keeps answering scrapes.
    faults = FaultPlan(seed=7, kill_worker_at={1: 1})

    runs = {}
    for telemetry in (False, True):
        with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as tmp:
            runs["with_telemetry" if telemetry else "plain"] = (
                _supervised_run(
                    data, plan, faults, pathlib.Path(tmp), telemetry
                )
            )

    plain, served = runs["plain"], runs["with_telemetry"]
    assert served["snapshot_sha"] == plain["snapshot_sha"], (
        "telemetry plane changed the merged summary"
    )
    assert sum(served["restarts"]) >= 1, "chaos kill did not land"
    overhead = served["seconds"] / plain["seconds"] - 1.0
    return {
        "n": n,
        "shards": SHARDS,
        "chunk_size": chunk,
        "runs": runs,
        "overhead_fraction": overhead,
        "machine": machine_context(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small-n subset for CI"
    )
    args = parser.parse_args()
    report = run(smoke=args.smoke)
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    served = report["runs"]["with_telemetry"]
    print(
        f"n={report['n']} scrapes={served['scrapes']} "
        f"restarts={served['restarts']} "
        f"flight={served['flight_dumps']} "
        f"overhead={100 * report['overhead_fraction']:+.1f}%"
    )
    print(f"wrote {ARTIFACT}")


if __name__ == "__main__":
    main()
