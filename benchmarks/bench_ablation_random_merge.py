"""Ablation — Random's design choices.

Two knobs of the Random sketch (DESIGN.md):

* the randomized odd/even coin in the merge step vs deterministically
  keeping odd positions.  The coin is what makes the merge estimator
  unbiased; derandomizing introduces a systematic drift that grows with
  the number of merge rounds.
* the buffer count ``b`` (default ``h + 1``): fewer buffers force merges
  to higher levels sooner (more error), more buffers spend space.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, write_exhibit
from repro.cash_register import RandomSketch
from repro.evaluation import format_table, measure_errors, scaled_n
from repro.streams import uniform_stream

EPS = 0.005
REPEATS = 5


def test_ablation_random_merge(benchmark) -> None:
    n = scaled_n(200_000)
    data = uniform_stream(n, universe_log2=24, seed=21)
    sorted_truth = np.sort(data)

    def run_variant(**kwargs):
        maxes, avgs = [], []
        for seed in range(REPEATS):
            sk = RandomSketch(eps=EPS, seed=seed, **kwargs)
            sk.extend(data.tolist())
            report = measure_errors(sk, sorted_truth, EPS, 199)
            maxes.append(report.max_error)
            avgs.append(report.avg_error)
        return float(np.mean(maxes)), float(np.mean(avgs)), sk.size_words()

    def compute():
        rows = []
        for label, kwargs in [
            ("randomized merge (paper)", {"randomized_merge": True}),
            ("always-odd merge", {"randomized_merge": False}),
            ("b = h-1 (fewer buffers)", {"b": max(2, RandomSketch(EPS).b - 2)}),
            ("b = h+3 (more buffers)", {"b": RandomSketch(EPS).b + 2}),
        ]:
            mx, avg, words = run_variant(**kwargs)
            rows.append([label, mx, avg, words * 4 / 1024])
        return rows

    rows = run_once(benchmark, compute)
    write_exhibit(
        "ablation_random_merge",
        format_table(
            ["variant", "max_err", "avg_err", "space KB"],
            rows,
            title=(
                f"Ablation: Random's merge coin and buffer count "
                f"(uniform, n={n}, eps={EPS}, {REPEATS} seeds)"
            ),
        ),
    )
    # All variants stay within the guarantee on this stream.
    assert all(row[1] <= EPS for row in rows), rows
    # More buffers cost more space.
    assert rows[3][3] > rows[2][3]
