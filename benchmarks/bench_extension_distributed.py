"""Extension — distributed aggregation: communication vs accuracy.

The sensor-network setting that motivated q-digest [26] and the sampling
protocols [17]: compare, at equal target accuracy, the words each
protocol moves across the network.  Expected shape: shipping raw data
costs ~n x depth; mergeable summaries cost ~sites x summary; sampling
costs ~1/eps^2 regardless of n — so the winner flips with n, eps, and
topology, which is exactly why all three exist.
"""

from __future__ import annotations

from conftest import run_once, write_exhibit
from repro.distributed import (
    make_network,
    merge_summaries,
    sample_and_send,
    ship_everything,
)
from repro.evaluation import format_table, scaled_n

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]
EPS = 0.02
SITES = 16


def test_extension_distributed(benchmark) -> None:
    n = scaled_n(100_000)

    def compute():
        rows = []
        for topology in ("star", "tree", "chain"):
            for runner, kwargs in [
                (ship_everything, {}),
                (merge_summaries, {"eps": EPS, "summary": "qdigest"}),
                (merge_summaries, {"eps": EPS, "summary": "random",
                                   "seed": 5}),
                (sample_and_send, {"eps": EPS, "seed": 5}),
            ]:
                net = make_network(
                    n, sites=SITES, topology=topology, seed=42, skew=0.6
                )
                truth = net.union_sorted()
                result = runner(net, **kwargs)
                rows.append([
                    result.name,
                    topology,
                    result.words_sent,
                    result.messages_sent,
                    result.max_rank_error(truth, PHIS),
                ])
        return rows

    rows = run_once(benchmark, compute)
    write_exhibit(
        "extension_distributed",
        format_table(
            ["protocol", "topology", "words sent", "messages", "max err"],
            rows,
            title=(
                f"Extension: distributed aggregation, n={n}, "
                f"{SITES} sites, eps={EPS}"
            ),
        ),
    )

    def words(name, topology):
        return next(
            r[2] for r in rows if r[0] == name and r[1] == topology
        )

    # Summaries beat raw shipping on every topology.
    for topology in ("star", "tree", "chain"):
        assert words("merge-qdigest", topology) < words(
            "ship-everything", topology
        )
        assert words("merge-random", topology) < words(
            "ship-everything", topology
        )
    # Chains hurt raw shipping far more than summary merging.
    ship_ratio = words("ship-everything", "chain") / words(
        "ship-everything", "star"
    )
    merge_ratio = words("merge-random", "chain") / words(
        "merge-random", "star"
    )
    assert ship_ratio > 2 * merge_ratio
    # Accuracy within budget for every protocol (merge may stack layers).
    assert all(r[4] <= 3 * EPS for r in rows), rows
