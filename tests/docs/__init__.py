"""Documentation quality gates."""
