"""Documentation gates: markdown links must resolve, examples must run.

Two cheap checks that keep the handbook honest:

* every relative markdown link in README.md and docs/*.md points at a
  file that exists (external http(s) links are not fetched);
* the fenced ``>>>`` examples in docs/performance.md and
  docs/serving.md actually execute and produce the documented output
  (doctest), so the handbooks' code can be pasted verbatim.
"""

from __future__ import annotations

import doctest
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

#: ``[text](target)`` — good enough for our hand-written markdown
#: (no nested brackets, no reference-style links in these files).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)


def _relative_links(path: pathlib.Path):
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("doc", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_relative_links_resolve(doc: pathlib.Path) -> None:
    missing = [
        target
        for target in _relative_links(doc)
        if target and not (doc.parent / target).exists()
    ]
    assert not missing, f"{doc.name}: broken relative links {missing}"


#: Handbooks whose ``>>>`` examples must execute verbatim.
DOCTESTED = ["performance.md", "serving.md"]


@pytest.mark.parametrize("name", DOCTESTED)
def test_handbook_examples_run(name: str) -> None:
    """The handbook's doctests pass (CI also runs
    ``python -m doctest docs/<name>`` from the repo root)."""
    import os

    cwd = os.getcwd()
    os.chdir(REPO_ROOT)  # the BENCH_speed.json example opens a relative path
    try:
        failures, tests = doctest.testfile(
            str(REPO_ROOT / "docs" / name),
            module_relative=False,
        )
    finally:
        os.chdir(cwd)
    assert tests > 0, f"{name} lost its doctests"
    assert failures == 0
