"""Tests for the sliding-window quantile extension."""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.cash_register.sliding_window import SlidingWindowQuantiles
from repro.core import EmptySummaryError, InvalidParameterError


def _window_error(sk, window_values, phis):
    """Max normalized rank error of sk's answers vs the exact window."""
    arr = np.sort(np.asarray(window_values))
    n = len(arr)
    worst = 0.0
    for phi in phis:
        q = sk.query(phi)
        lo = float(np.searchsorted(arr, q, "left"))
        hi = float(np.searchsorted(arr, q, "right"))
        target = phi * n
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        worst = max(worst, err / n)
    return worst


PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]


class TestWindowAccuracy:
    def test_tracks_shifting_distribution(self, rng) -> None:
        """The window must forget: after a distribution shift, answers
        reflect only recent data."""
        eps, window = 0.05, 4_000
        sk = SlidingWindowQuantiles(eps=eps, window=window)
        exact = deque(maxlen=window)
        old = rng.integers(0, 1_000, size=10_000, dtype=np.int64)
        new = rng.integers(100_000, 101_000, size=10_000, dtype=np.int64)
        for x in np.concatenate([old, new]).tolist():
            sk.update(x)
            exact.append(x)
        assert _window_error(sk, list(exact), PHIS) <= eps
        # The median must be in the NEW range.
        assert sk.query(0.5) >= 100_000

    @pytest.mark.parametrize("eps", [0.1, 0.05, 0.02])
    def test_error_bound_throughout(self, eps, rng) -> None:
        window = 5_000
        sk = SlidingWindowQuantiles(eps=eps, window=window)
        exact = deque(maxlen=window)
        data = rng.normal(0, 1, size=20_000)
        checkpoints = {500, 4_999, 7_777, 19_999}
        for i, x in enumerate(data.tolist()):
            sk.update(x)
            exact.append(x)
            if i in checkpoints:
                assert _window_error(sk, list(exact), PHIS) <= eps

    def test_before_window_fills(self, rng) -> None:
        sk = SlidingWindowQuantiles(eps=0.1, window=10_000)
        data = rng.integers(0, 100, size=500, dtype=np.int64)
        for x in data.tolist():
            sk.update(x)
        assert sk.n == 500
        assert _window_error(sk, data.tolist(), PHIS) <= 0.1 + 1 / 500

    def test_rank_monotone(self, rng) -> None:
        sk = SlidingWindowQuantiles(eps=0.05, window=2_000)
        for x in rng.normal(0, 1, size=6_000).tolist():
            sk.update(x)
        probes = np.linspace(-3, 3, 15)
        ranks = [sk.rank(p) for p in probes]
        assert all(a <= b for a, b in zip(ranks, ranks[1:]))


class TestWindowBehavior:
    def test_space_sublinear_in_window(self, rng) -> None:
        eps, window = 0.02, 50_000
        sk = SlidingWindowQuantiles(eps=eps, window=window)
        for x in rng.integers(0, 1 << 20, size=150_000).tolist():
            sk.update(int(x))
        # Raw window would be `window` words.
        assert sk.size_words() < window / 3

    def test_chunks_expire(self, rng) -> None:
        sk = SlidingWindowQuantiles(eps=0.1, window=1_000)
        for x in rng.integers(0, 100, size=50_000).tolist():
            sk.update(int(x))
        horizon = sk.stream_length - sk.window
        assert all(c.end > horizon for c in sk._chunks)
        assert len(sk._chunks) <= 2 / 0.1 + 2

    def test_n_caps_at_window(self) -> None:
        sk = SlidingWindowQuantiles(eps=0.1, window=100)
        for x in range(500):
            sk.update(x)
        assert sk.n == 100
        assert sk.stream_length == 500

    def test_empty_query_raises(self) -> None:
        with pytest.raises(EmptySummaryError):
            SlidingWindowQuantiles(eps=0.1, window=100).query(0.5)

    def test_invalid_window(self) -> None:
        with pytest.raises(InvalidParameterError):
            SlidingWindowQuantiles(eps=0.1, window=2)

    def test_quantiles_batch_matches_single(self, rng) -> None:
        sk = SlidingWindowQuantiles(eps=0.05, window=3_000)
        for x in rng.integers(0, 1 << 16, size=9_000).tolist():
            sk.update(int(x))
        assert sk.quantiles(PHIS) == [sk.query(p) for p in PHIS]
