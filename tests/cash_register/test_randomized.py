"""Tests for the randomized cash-register algorithms: Random and MRL99.

Randomized guarantees are probabilistic, so error assertions use fixed
seeds with generous envelopes; structural invariants (buffer accounting,
weight conservation) are exact and checked tightly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cash_register import MRL99, RandomSketch, weighted_collapse
from repro.cash_register.mrl99 import _WeightedBuffer
from repro.core import EmptySummaryError, ExactQuantiles, InvalidParameterError, MergeError

PHIS = [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95]


def _max_rank_error(sketch, exact: ExactQuantiles, phis=PHIS) -> float:
    n = exact.n
    worst = 0.0
    for phi in phis:
        q = sketch.query(phi)
        lo, hi = exact.rank_interval(q)
        target = phi * n
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        worst = max(worst, err / n)
    return worst


RANDOMIZED = [
    lambda eps, seed: RandomSketch(eps=eps, seed=seed),
    lambda eps, seed: MRL99(eps=eps, seed=seed),
]
RAND_IDS = ["random", "mrl99"]


@pytest.fixture(params=list(zip(RANDOMIZED, RAND_IDS)), ids=RAND_IDS)
def factory(request):
    return request.param[0]


class TestAccuracy:
    @pytest.mark.parametrize("order", ["random", "sorted"])
    def test_error_within_eps(self, factory, order, rng) -> None:
        eps = 0.02
        data = rng.integers(0, 1 << 24, size=30_000, dtype=np.int64)
        if order == "sorted":
            data = np.sort(data)
        sk = factory(eps, 7)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        # Observed error on real streams is well below eps (Fig 5a/5b);
        # we allow up to eps since the guarantee is probabilistic.
        assert _max_rank_error(sk, exact) <= eps

    def test_error_mid_stream(self, factory, rng) -> None:
        """Correct answers must be available at any prefix (sampling and
        level bookkeeping cannot assume a known n)."""
        eps = 0.05
        data = rng.normal(0, 1, size=20_000)
        sk = factory(eps, 3)
        exact = ExactQuantiles()
        checkpoints = {500, 5_000, 12_345, 19_999}
        for i, x in enumerate(data.tolist()):
            sk.update(x)
            exact.update(x)
            if i in checkpoints:
                assert _max_rank_error(sk, exact) <= 2 * eps

    def test_average_error_over_seeds(self, factory, rng) -> None:
        """Across seeds, the median-rank estimate should be unbiased-ish."""
        data = rng.integers(0, 10_000, size=8_000, dtype=np.int64)
        exact = ExactQuantiles(data.tolist())
        true_median = exact.query(0.5)
        meds = []
        for seed in range(15):
            sk = factory(0.05, seed)
            sk.extend(data.tolist())
            meds.append(float(sk.query(0.5)))
        assert abs(np.median(meds) - true_median) <= 0.05 * 10_000

    def test_duplicates_heavy(self, factory, rng) -> None:
        data = rng.integers(0, 4, size=20_000, dtype=np.int64)
        sk = factory(0.05, 11)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        assert _max_rank_error(sk, exact) <= 0.05


class TestBehavior:
    def test_empty_query_raises(self, factory) -> None:
        with pytest.raises(EmptySummaryError):
            factory(0.05, 0).query(0.5)

    def test_invalid_phi_rejected(self, factory) -> None:
        sk = factory(0.05, 0)
        sk.update(1)
        with pytest.raises(InvalidParameterError):
            sk.query(2.0)

    def test_deterministic_given_seed(self, factory, rng) -> None:
        data = rng.integers(0, 1 << 20, size=10_000, dtype=np.int64).tolist()
        a = factory(0.02, 99)
        b = factory(0.02, 99)
        a.extend(data)
        b.extend(data)
        assert a.quantiles(PHIS) == b.quantiles(PHIS)

    def test_space_constant_in_n(self, factory, rng) -> None:
        sk = factory(0.02, 1)
        sk.extend(rng.integers(0, 100, size=1_000).tolist())
        w1 = sk.size_words()
        sk.extend(rng.integers(0, 100, size=50_000).tolist())
        assert sk.size_words() == w1

    def test_rank_monotone(self, factory, rng) -> None:
        sk = factory(0.05, 5)
        sk.extend(rng.normal(0, 1, size=10_000).tolist())
        probes = np.linspace(-3, 3, 15)
        ranks = [sk.rank(float(p)) for p in probes]
        assert all(a <= b for a, b in zip(ranks, ranks[1:]))

    def test_total_weight_tracks_n(self, factory, rng) -> None:
        """Sum over buffers of weight * size must stay close to n."""
        sk = factory(0.05, 13)
        sk.extend(rng.integers(0, 1 << 16, size=25_000).tolist())
        total = sum(w * len(items) for items, w in sk._snapshot())
        # Partial blocks/collapse rounding cost at most one buffer's worth.
        slack = getattr(sk, "s", 0) or getattr(sk, "k", 0)
        max_level_weight = max(w for _items, w in sk._snapshot())
        assert abs(total - sk.n) <= slack * max_level_weight


class TestRandomSpecific:
    def test_buffer_count_bounded(self, rng) -> None:
        sk = RandomSketch(eps=0.02, seed=1)
        sk.extend(rng.integers(0, 1 << 20, size=60_000).tolist())
        assert len(sk._buffers) <= sk.b

    def test_merge_two_sketches(self, rng) -> None:
        data1 = rng.integers(0, 1 << 16, size=15_000, dtype=np.int64)
        data2 = rng.integers(1 << 15, 1 << 17, size=15_000, dtype=np.int64)
        a = RandomSketch(eps=0.02, seed=1)
        b = RandomSketch(eps=0.02, seed=2)
        a.extend(data1.tolist())
        b.extend(data2.tolist())
        a.merge(b)
        assert a.n == 30_000
        exact = ExactQuantiles(np.concatenate([data1, data2]).tolist())
        assert _max_rank_error(a, exact) <= 0.04

    def test_merge_rejects_mismatched(self) -> None:
        a = RandomSketch(eps=0.02, seed=1)
        b = RandomSketch(eps=0.1, seed=1)
        with pytest.raises(MergeError):
            a.merge(b)
        with pytest.raises(MergeError):
            a.merge(object())

    def test_derandomized_merge_still_accurate(self, rng) -> None:
        data = rng.integers(0, 1 << 20, size=30_000, dtype=np.int64)
        sk = RandomSketch(eps=0.02, seed=4, randomized_merge=False)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        assert _max_rank_error(sk, exact) <= 0.04

    def test_parameter_overrides(self) -> None:
        sk = RandomSketch(eps=0.1, s=100, b=4)
        assert sk.s == 100 and sk.b == 4


class TestMRL99Specific:
    def test_weighted_collapse_weight_conservation(self, rng) -> None:
        bufs = [
            _WeightedBuffer(1, np.sort(rng.integers(0, 100, size=20))),
            _WeightedBuffer(1, np.sort(rng.integers(0, 100, size=20))),
            _WeightedBuffer(2, np.sort(rng.integers(0, 100, size=20))),
        ]
        out = weighted_collapse(bufs, 20, rng)
        assert out.weight == 4
        assert len(out) <= 20
        assert np.all(np.diff(out.items) >= 0)

    def test_weighted_collapse_preserves_distribution(self, rng) -> None:
        """Collapsing buffers drawn from one distribution should keep the
        median in place."""
        bufs = [
            _WeightedBuffer(1, np.sort(rng.normal(0, 1, size=500)))
            for _ in range(4)
        ]
        out = weighted_collapse(bufs, 500, rng)
        assert abs(float(np.median(out.items))) < 0.2

    def test_buffer_count_bounded(self, rng) -> None:
        sk = MRL99(eps=0.02, seed=1)
        sk.extend(rng.integers(0, 1 << 20, size=60_000).tolist())
        assert len(sk._buffers) < sk.b

    def test_parameter_overrides(self) -> None:
        sk = MRL99(eps=0.1, b=5, k=64)
        assert sk.b == 5 and sk.k == 64
