"""NaN inputs must be rejected by every comparison-based summary.

NaN compares false with everything, so a NaN that slips into an ordered
structure silently destroys the rank invariants.  Rejection is the only
safe behavior; this file pins it for every order-based summary.
"""

from __future__ import annotations

import math

import pytest

from repro.cash_register import (
    BiasedQuantiles,
    GKAdaptive,
    GKArray,
    GKTheory,
    MRL99,
    RandomSketch,
    ReservoirSampling,
    SlidingWindowQuantiles,
)
from repro.core import InvalidParameterError

FACTORIES = [
    lambda: GKAdaptive(eps=0.1),
    lambda: GKArray(eps=0.1),
    lambda: GKTheory(eps=0.1),
    lambda: MRL99(eps=0.1, seed=0),
    lambda: RandomSketch(eps=0.1, seed=0),
    lambda: BiasedQuantiles(eps=0.1),
    lambda: SlidingWindowQuantiles(eps=0.1, window=100),
    lambda: ReservoirSampling(eps=0.1, capacity=10, seed=0),
]
IDS = [
    "gk_adaptive", "gk_array", "gk_theory", "mrl99", "random",
    "biased", "sliding_window", "reservoir",
]


@pytest.mark.parametrize("factory", FACTORIES, ids=IDS)
def test_nan_update_rejected(factory) -> None:
    sk = factory()
    with pytest.raises(InvalidParameterError):
        sk.update(float("nan"))
    with pytest.raises(InvalidParameterError):
        sk.update(math.nan)


@pytest.mark.parametrize("factory", FACTORIES, ids=IDS)
def test_nan_in_extend_rejected_and_state_usable(factory) -> None:
    sk = factory()
    sk.update(1.0)
    with pytest.raises(InvalidParameterError):
        sk.extend([2.0, float("nan"), 3.0])
    # The summary must remain queryable after the rejection.
    assert sk.query(0.5) in (1.0, 2.0)


@pytest.mark.parametrize("factory", FACTORIES, ids=IDS)
def test_normal_floats_unaffected(factory) -> None:
    sk = factory()
    sk.extend([0.5, -1.5, math.inf, -math.inf, 3.25])
    assert sk.n == 5
    assert sk.query(0.0) == -math.inf
    assert sk.query(1.0) == math.inf
