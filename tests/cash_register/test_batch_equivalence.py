"""Batch/scalar equivalence: ``extend`` vs the update loop, and
``query_batch`` vs the query loop.

The vectorized ingest paths promise one of three equivalence classes
(see ``docs/performance.md``):

* **bit-identical** — GKArray: ``extend`` produces the exact same tuple
  state as elementwise feeding;
* **same-seed-identical** — Random, MRL99: ``extend`` consumes the RNG
  in the same order as the update loop, so same-seed runs produce the
  same summary (asserted down to the generator state);
* **error-equivalent** — GKAdaptive, QDigest: ``extend`` builds a
  different (usually smaller) summary with the same ``eps`` guarantee.

``query_batch`` is exact everywhere: it must return precisely
``[query(phi) for phi in phis]``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cash_register import (
    GKAdaptive,
    GKArray,
    MRL99,
    QDigest,
    RandomSketch,
    SlidingWindowQuantiles,
)
from repro.cash_register.gk_batch import (
    merge_tuple_arrays,
    merge_tuple_arrays_scalar,
)
from repro.core.weighted import weighted_query_batch

PHI_GRID = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]

streams = st.lists(st.integers(0, (1 << 16) - 1), max_size=600)
seeds = st.integers(0, 2**16)


def exact_rank(data, value) -> tuple:
    arr = np.sort(np.asarray(data))
    lo = int(np.searchsorted(arr, value, "left"))
    hi = int(np.searchsorted(arr, value, "right"))
    return lo, hi


def assert_eps_guarantee(sketch, data, eps) -> None:
    n = len(data)
    for phi in PHI_GRID:
        answer = sketch.query(phi)
        lo, hi = exact_rank(data, answer)
        target = phi * n
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        assert err <= eps * n + 1


class TestGKArrayBitIdentical:
    @given(data=streams)
    def test_extend_matches_update_loop(self, data) -> None:
        batched = GKArray(eps=0.05)
        looped = GKArray(eps=0.05)
        batched.extend(np.asarray(data, dtype=np.int64))
        for v in data:
            looped.update(v)
        assert batched.tuples() == looped.tuples()
        assert batched.n == looped.n == len(data)
        if data:
            for phi in PHI_GRID:
                assert batched.query(phi) == looped.query(phi)

    @given(data=streams)
    def test_split_batches_match_one_batch(self, data) -> None:
        """Chunking must not change the result either."""
        one = GKArray(eps=0.05)
        many = GKArray(eps=0.05)
        arr = np.asarray(data, dtype=np.int64)
        one.extend(arr)
        for lo in range(0, len(arr), 37):
            many.extend(arr[lo : lo + 37])
        assert one.tuples() == many.tuples()


RANDOMIZED = [
    (
        "random",
        lambda seed: RandomSketch(eps=0.1, seed=seed),
        lambda sk: (
            sk._n,
            sk._fill_level,
            list(sk._fill_items),
            sk._block_seen,
            sk._block_pick,
            sk._block_candidate,
            [(b.level, b.items.tolist()) for b in sk._buffers],
        ),
    ),
    (
        "mrl99",
        lambda seed: MRL99(eps=0.1, seed=seed),
        lambda sk: (
            sk._n,
            sk._fill_rate,
            list(sk._fill_items),
            sk._block_seen,
            sk._block_pick,
            sk._block_candidate,
        ),
    ),
]


@pytest.fixture(params=RANDOMIZED, ids=[n for n, _, _ in RANDOMIZED])
def randomized(request):
    return request.param


class TestSameSeedIdentical:
    @given(data=streams, seed=seeds)
    def test_extend_matches_update_loop(
        self, randomized, data, seed
    ) -> None:
        _, factory, state_of = randomized
        batched = factory(seed)
        looped = factory(seed)
        batched.extend(np.asarray(data, dtype=np.int64))
        for v in data:
            looped.update(v)
        assert state_of(batched) == state_of(looped)
        # Same generator state: every RNG draw happened in the same
        # order, so the two summaries stay interchangeable forever.
        assert (
            batched._rng.bit_generator.state
            == looped._rng.bit_generator.state
        )
        if data:
            assert batched.query_batch(PHI_GRID) == looped.query_batch(
                PHI_GRID
            )


ERROR_EQUIVALENT = [
    ("gk_adaptive", lambda: GKAdaptive(eps=0.05)),
    ("qdigest", lambda: QDigest(eps=0.05, universe_log2=16)),
]


@pytest.fixture(
    params=ERROR_EQUIVALENT, ids=[n for n, _ in ERROR_EQUIVALENT]
)
def error_equivalent(request):
    return request.param[1]


class TestErrorEquivalent:
    @given(data=streams)
    def test_extend_keeps_the_guarantee(
        self, error_equivalent, data
    ) -> None:
        batched = error_equivalent()
        looped = error_equivalent()
        batched.extend(np.asarray(data, dtype=np.int64))
        for v in data:
            looped.update(v)
        assert batched.n == looped.n == len(data)
        batched.validate()
        looped.validate()
        if data:
            assert_eps_guarantee(batched, data, batched.eps)
            assert_eps_guarantee(looped, data, looped.eps)


ALL_FACTORIES = [
    ("gk_array", lambda: GKArray(eps=0.05)),
    ("gk_adaptive", lambda: GKAdaptive(eps=0.05)),
    ("qdigest", lambda: QDigest(eps=0.05, universe_log2=16)),
    ("random", lambda: RandomSketch(eps=0.1, seed=11)),
    ("mrl99", lambda: MRL99(eps=0.1, seed=11)),
    ("window", lambda: SlidingWindowQuantiles(eps=0.1, window=1 << 12)),
]


@pytest.fixture(params=ALL_FACTORIES, ids=[n for n, _ in ALL_FACTORIES])
def any_sketch(request):
    return request.param[1]


class TestEdgeBatches:
    def test_empty_batch_is_a_noop(self, any_sketch) -> None:
        sk = any_sketch()
        sk.extend([])
        sk.extend(np.asarray([], dtype=np.int64))
        assert sk.n == 0
        sk.extend(np.asarray([7, 3, 5], dtype=np.int64))
        sk.extend([])
        assert sk.n == 3
        assert sk.query(0.5) in (3, 5, 7)

    def test_single_element_batches(self, any_sketch) -> None:
        batched = any_sketch()
        looped = any_sketch()
        data = [9, 1, 4, 4, 8, 0, 2]
        for v in data:
            batched.extend(np.asarray([v], dtype=np.int64))
            looped.update(v)
        assert batched.n == looped.n
        for phi in PHI_GRID:
            assert batched.query(phi) == looped.query(phi)


class TestQueryBatchMatchesQueryLoop:
    def test_agreement_on_a_grid(self, any_sketch, rng) -> None:
        sk = any_sketch()
        data = rng.integers(0, 1 << 16, size=4_000, dtype=np.int64)
        sk.extend(data)
        assert sk.query_batch(PHI_GRID) == [
            sk.query(phi) for phi in PHI_GRID
        ]

    def test_empty_phi_list(self, any_sketch) -> None:
        sk = any_sketch()
        sk.extend(np.asarray([1, 2, 3], dtype=np.int64))
        assert sk.query_batch([]) == []


class TestWeightedQueryBatchHelper:
    """The shared searchsorted helper must match the argmin reference."""

    @staticmethod
    def _argmin_reference(parts, n, phis):
        values = np.concatenate([items for items, _ in parts])
        weights = np.concatenate(
            [np.full(len(items), w, dtype=np.float64) for items, w in parts]
        )
        order = np.argsort(values, kind="mergesort")
        values = values[order]
        weights = weights[order]
        cum = np.concatenate([[0.0], np.cumsum(weights)[:-1]])
        return [
            values[int(np.argmin(np.abs(cum - phi * n)))] for phi in phis
        ]

    @given(
        part_specs=st.lists(
            st.tuples(
                st.lists(
                    st.integers(0, 1 << 12), min_size=1, max_size=40
                ),
                st.integers(1, 16),  # integer weights >= 1
            ),
            min_size=1,
            max_size=5,
        ),
        phis=st.lists(
            st.floats(0.0, 1.0, allow_nan=False), max_size=12
        ),
    )
    def test_matches_argmin(self, part_specs, phis) -> None:
        parts = [
            (np.sort(np.asarray(items, dtype=np.int64)), weight)
            for items, weight in part_specs
        ]
        n = sum(len(items) * w for items, w in parts)
        assert weighted_query_batch(parts, n, phis) == \
            self._argmin_reference(parts, n, phis)


class TestMergeKernelEquivalence:
    """The vectorized summary-merge kernel must reproduce the scalar
    reference tuple-for-tuple (the parallel engine's merge tree runs on
    it; see ``repro.cash_register.gk_batch.merge_tuple_arrays``)."""

    @given(a=streams, b=streams)
    def test_vector_merge_matches_scalar_reference(self, a, b) -> None:
        eps = 0.02
        sa, sb = GKArray(eps=eps), GKArray(eps=eps)
        sa.extend(a)
        sb.extend(b)
        sa._prepare_query()
        sb._prepare_query()
        budget = int(2 * eps * (len(a) + len(b)))
        args = (
            sa._values, sa._gs, sa._deltas,
            sb._values, sb._gs, sb._deltas,
            budget,
        )
        ref = merge_tuple_arrays_scalar(*args)
        vec = merge_tuple_arrays(*args)
        assert [np.asarray(col).tolist() for col in vec] == \
            [list(col) for col in ref]
