"""Tests for FastQDigest and the reservoir-sampling baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cash_register import QDigest, ReservoirSampling
from repro.core import (
    EmptySummaryError,
    ExactQuantiles,
    InvalidParameterError,
    MergeError,
    UniverseOverflowError,
)

PHIS = [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95]


def _max_rank_error(sketch, exact: ExactQuantiles, phis=PHIS) -> float:
    n = exact.n
    worst = 0.0
    for phi in phis:
        q = sketch.query(phi)
        lo, hi = exact.rank_interval(q)
        target = phi * n
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        worst = max(worst, err / n)
    return worst


class TestQDigestAccuracy:
    @pytest.mark.parametrize("universe_log2", [8, 12, 16])
    def test_error_within_eps(self, universe_log2, rng) -> None:
        eps = 0.02
        data = rng.integers(0, 1 << universe_log2, size=20_000, dtype=np.int64)
        sk = QDigest(eps=eps, universe_log2=universe_log2)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        assert _max_rank_error(sk, exact) <= eps

    def test_skewed_data(self, rng) -> None:
        eps = 0.05
        data = np.minimum(
            rng.geometric(0.01, size=20_000) - 1, (1 << 12) - 1
        ).astype(np.int64)
        sk = QDigest(eps=eps, universe_log2=12)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        assert _max_rank_error(sk, exact) <= eps

    def test_error_mid_stream(self, rng) -> None:
        eps = 0.05
        data = rng.integers(0, 1 << 10, size=10_000, dtype=np.int64)
        sk = QDigest(eps=eps, universe_log2=10)
        exact = ExactQuantiles()
        for i, x in enumerate(data.tolist()):
            sk.update(x)
            exact.update(x)
            if i in (99, 2_000, 9_999):
                assert _max_rank_error(sk, exact) <= eps

    @given(
        data=st.lists(
            st.integers(min_value=0, max_value=255), min_size=1, max_size=400
        )
    )
    def test_weight_conservation_property(self, data) -> None:
        """Compression moves counts around but never loses or invents."""
        sk = QDigest(eps=0.1, universe_log2=8)
        for x in data:
            sk.update(x)
        sk.compress()
        assert sum(sk._counts.values()) == len(data)
        assert sk.n == len(data)

    def test_compress_shrinks(self, rng) -> None:
        sk = QDigest(eps=0.05, universe_log2=16, compress_factor=1e9)
        sk.extend(rng.integers(0, 1 << 16, size=30_000).tolist())
        before = sk.node_count()
        sk.compress()
        assert sk.node_count() < before
        assert sk.node_count() <= 3 * sk.k  # O(k) size after compression


class TestQDigestBehavior:
    def test_rejects_out_of_universe(self) -> None:
        sk = QDigest(eps=0.1, universe_log2=8)
        with pytest.raises(UniverseOverflowError):
            sk.update(256)
        with pytest.raises(UniverseOverflowError):
            sk.update(-1)
        with pytest.raises(UniverseOverflowError):
            sk.extend([0, 300])

    def test_empty_query_raises(self) -> None:
        with pytest.raises(EmptySummaryError):
            QDigest(eps=0.1, universe_log2=8).query(0.5)

    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            QDigest(eps=0.0, universe_log2=8)
        with pytest.raises(InvalidParameterError):
            QDigest(eps=0.1, universe_log2=0)
        with pytest.raises(ValueError):
            QDigest(eps=0.1, universe_log2=8, compress_factor=0.5)

    def test_merge(self, rng) -> None:
        data1 = rng.integers(0, 1 << 10, size=8_000, dtype=np.int64)
        data2 = rng.integers(0, 1 << 10, size=8_000, dtype=np.int64)
        a = QDigest(eps=0.02, universe_log2=10)
        b = QDigest(eps=0.02, universe_log2=10)
        a.extend(data1.tolist())
        b.extend(data2.tolist())
        a.merge(b)
        assert a.n == 16_000
        exact = ExactQuantiles(np.concatenate([data1, data2]).tolist())
        assert _max_rank_error(a, exact) <= 0.04  # merge may double error

    def test_merge_rejects_mismatched(self) -> None:
        a = QDigest(eps=0.1, universe_log2=8)
        b = QDigest(eps=0.1, universe_log2=10)
        with pytest.raises(MergeError):
            a.merge(b)
        with pytest.raises(MergeError):
            a.merge(42)

    def test_rank_estimates(self, rng) -> None:
        data = rng.integers(0, 1 << 10, size=10_000, dtype=np.int64)
        sk = QDigest(eps=0.02, universe_log2=10)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        for probe in (10, 256, 512, 1000):
            lo, hi = exact.rank_interval(probe)
            est = sk.rank(probe)
            assert lo - 0.02 * 10_000 <= est <= hi + 0.02 * 10_000

    def test_deterministic(self, rng) -> None:
        data = rng.integers(0, 1 << 12, size=10_000).tolist()
        a = QDigest(eps=0.02, universe_log2=12)
        b = QDigest(eps=0.02, universe_log2=12)
        a.extend(data)
        b.extend(data)
        assert a.quantiles(PHIS) == b.quantiles(PHIS)


class TestReservoir:
    def test_error_reasonable(self, rng) -> None:
        data = rng.integers(0, 1 << 20, size=30_000, dtype=np.int64)
        sk = ReservoirSampling(eps=0.05, seed=1)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        assert _max_rank_error(sk, exact) <= 0.05

    def test_capacity_override(self, rng) -> None:
        sk = ReservoirSampling(eps=0.001, capacity=500, seed=2)
        assert sk.size_words() == 500
        sk.extend(rng.integers(0, 100, size=5_000).tolist())
        assert len(sk._sample) == 500

    def test_sample_is_unbiased_size(self, rng) -> None:
        """Every element should end up in the reservoir with probability
        capacity / n (checked via a marked element over repeats)."""
        hits = 0
        repeats = 200
        for seed in range(repeats):
            sk = ReservoirSampling(eps=0.5, capacity=10, seed=seed)
            for x in range(100):
                sk.update(x)
            hits += 42 in sk._sample
        # Expected 20 hits; allow a generous binomial envelope.
        assert 8 <= hits <= 36

    def test_invalid_capacity(self) -> None:
        with pytest.raises(ValueError):
            ReservoirSampling(eps=0.1, capacity=0)

    def test_empty_query_raises(self) -> None:
        with pytest.raises(EmptySummaryError):
            ReservoirSampling(eps=0.1).query(0.5)
