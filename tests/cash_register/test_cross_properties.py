"""Cross-algorithm property tests for the cash-register summaries.

Properties from the paper's model definitions (Section 1.1):

* comparison-based summaries only return elements they have *seen*
  ("the algorithm cannot create or compute elements to return");
* comparison-based summaries work on any totally ordered type — the
  paper explicitly calls out variable-length strings;
* answers are consistent: the rank of a returned phi-quantile, as
  estimated by the summary itself, is near phi * n.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cash_register import (
    BiasedQuantiles,
    GKAdaptive,
    GKArray,
    GKTheory,
    MRL99,
    RandomSketch,
    SlidingWindowQuantiles,
)
from repro.core import ExactQuantiles

COMPARISON_FACTORIES = [
    ("gk_adaptive", lambda: GKAdaptive(eps=0.1)),
    ("gk_array", lambda: GKArray(eps=0.1)),
    ("gk_theory", lambda: GKTheory(eps=0.1)),
    ("mrl99", lambda: MRL99(eps=0.1, seed=5)),
    ("random", lambda: RandomSketch(eps=0.1, seed=5)),
    ("biased", lambda: BiasedQuantiles(eps=0.1)),
    ("window", lambda: SlidingWindowQuantiles(eps=0.1, window=1 << 16)),
]


@pytest.fixture(
    params=COMPARISON_FACTORIES, ids=[n for n, _ in COMPARISON_FACTORIES]
)
def factory(request):
    return request.param[1]


class TestReturnsSeenElements:
    @given(
        data=st.lists(
            st.integers(-10**6, 10**6), min_size=1, max_size=400
        )
    )
    def test_answers_are_stream_elements(self, factory, data) -> None:
        sk = factory()
        sk.extend(data)
        universe = set(data)
        for phi in (0.0, 0.1, 0.5, 0.9, 1.0):
            assert sk.query(phi) in universe


class TestArbitraryOrderedTypes:
    def test_strings(self, factory, rng) -> None:
        """The paper: comparison-based algorithms 'can handle elements
        that cannot be easily mapped to a fixed universe, such as
        variable-length strings'."""
        words = [
            "".join(rng.choice(list("abcdefg"), size=rng.integers(1, 12)))
            for _ in range(3_000)
        ]
        sk = factory()
        sk.extend(words)
        exact = ExactQuantiles(words)
        for phi in (0.1, 0.5, 0.9):
            answer = sk.query(phi)
            lo, hi = exact.rank_interval(answer)
            target = phi * len(words)
            err = 0.0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            assert err <= 2 * 0.1 * len(words)

    def test_tuples(self, factory, rng) -> None:
        """Composite keys (tuples compare lexicographically)."""
        pairs = [
            (int(a), int(b))
            for a, b in rng.integers(0, 50, size=(2_000, 2))
        ]
        sk = factory()
        sk.extend(pairs)
        assert isinstance(sk.query(0.5), tuple)


class TestSelfConsistency:
    def test_rank_of_quantile_near_target(self, factory, rng) -> None:
        sk = factory()
        n = 20_000
        sk.extend(rng.integers(0, 1 << 20, size=n).tolist())
        for phi in (0.2, 0.5, 0.8):
            answer = sk.query(phi)
            est = sk.rank(answer)
            assert abs(est - phi * sk.n) <= 3 * 0.1 * sk.n

    @given(st.data())
    def test_incremental_matches_rebuild(self, data) -> None:
        """Deterministic summaries are online: feeding a stream in two
        halves equals feeding it at once."""
        stream = data.draw(
            st.lists(st.integers(0, 1000), min_size=2, max_size=300)
        )
        half = len(stream) // 2
        a = GKArray(eps=0.1)
        a.extend(stream)
        b = GKArray(eps=0.1)
        b.extend(stream[:half])
        b.extend(stream[half:])
        # Same elements, same order => identical summaries.
        assert a.tuples() == b.tuples()


class TestGKRankProperties:
    @given(
        data=st.lists(st.integers(0, 100), min_size=5, max_size=300),
        probe=st.integers(-10, 110),
    )
    def test_rank_brackets_truth(self, data, probe) -> None:
        eps = 0.1
        sk = GKArray(eps=eps)
        sk.extend(data)
        exact = ExactQuantiles(data)
        lo, hi = exact.rank_interval(probe)
        est = sk.rank(probe)
        slack = 2 * eps * len(data) + 2
        assert lo - slack <= est <= hi + slack

    def test_rank_extremes(self, rng) -> None:
        data = rng.integers(10, 90, size=1_000).tolist()
        sk = GKArray(eps=0.05)
        sk.extend(data)
        assert sk.rank(0) == 0.0
        assert sk.rank(100) >= 0.9 * len(data)
