"""Tests for the biased (relative-error) quantile extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cash_register import BiasedQuantiles, GKArray
from repro.core import EmptySummaryError, ExactQuantiles


def _relative_errors(sketch, exact: ExactQuantiles, phis):
    n = exact.n
    out = []
    for phi in phis:
        q = sketch.query(phi)
        lo, hi = exact.rank_interval(q)
        target = phi * n
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        out.append(err / max(1.0, phi * n))
    return out


class TestRelativeGuarantee:
    @pytest.mark.parametrize("order", ["random", "sorted"])
    def test_relative_error_within_eps(self, order, rng) -> None:
        eps = 0.05
        data = rng.integers(0, 1 << 20, size=20_000, dtype=np.int64)
        if order == "sorted":
            data = np.sort(data)
        sk = BiasedQuantiles(eps=eps)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        phis = [0.0005, 0.001, 0.01, 0.05, 0.1, 0.5, 0.9]
        rel = _relative_errors(sk, exact, phis)
        assert max(rel) <= eps, dict(zip(phis, rel))

    def test_head_sharper_than_uniform_gk(self, rng) -> None:
        """At matched eps, the head quantiles (small phi) must be far more
        accurate than uniform GK's absolute budget allows."""
        eps = 0.02
        n = 40_000
        data = rng.integers(0, 1 << 24, size=n, dtype=np.int64)
        biased = BiasedQuantiles(eps=eps)
        biased.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        phi = 0.002  # uniform GK could legally be off by eps*n = 800 ranks
        q = biased.query(phi)
        lo, hi = exact.rank_interval(q)
        target = phi * n  # = 80; biased budget is eps*phi*n = 1.6 ranks
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        assert err <= max(1.0, eps * phi * n) + 1

    def test_mid_stream_queries(self, rng) -> None:
        eps = 0.1
        sk = BiasedQuantiles(eps=eps)
        exact = ExactQuantiles()
        for i, x in enumerate(rng.normal(0, 1, size=5_000).tolist()):
            sk.update(x)
            exact.update(x)
            if i in (100, 2_000, 4_999):
                rel = _relative_errors(sk, exact, [0.01, 0.1, 0.5])
                assert max(rel) <= eps


class TestBehavior:
    def test_space_larger_than_uniform_but_bounded(self, rng) -> None:
        data = rng.integers(0, 1 << 24, size=30_000, dtype=np.int64)
        eps = 0.01
        biased = BiasedQuantiles(eps=eps)
        uniform = GKArray(eps=eps)
        biased.extend(data.tolist())
        uniform.extend(data.tolist())
        assert biased.tuple_count() > uniform.tuple_count()
        # ... but still a summary, not the stream.
        assert biased.tuple_count() < len(data) / 5

    def test_empty_query_raises(self) -> None:
        with pytest.raises(EmptySummaryError):
            BiasedQuantiles(eps=0.1).query(0.5)

    def test_invalid_buffer_factor(self) -> None:
        with pytest.raises(ValueError):
            BiasedQuantiles(eps=0.1, buffer_factor=0)

    def test_rank_monotone(self, rng) -> None:
        sk = BiasedQuantiles(eps=0.05)
        sk.extend(rng.normal(0, 1, size=5_000).tolist())
        probes = np.linspace(-3, 3, 15)
        ranks = [sk.rank(p) for p in probes]
        assert all(a <= b for a, b in zip(ranks, ranks[1:]))

    def test_single_element(self) -> None:
        sk = BiasedQuantiles(eps=0.1)
        sk.update(7)
        assert sk.query(0.5) == 7
