"""Direct unit tests for the shared GK machinery (gk_base)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cash_register import check_gk_invariants, gk_query, gk_rank
from repro.core import EmptySummaryError, ExactQuantiles


def exact_tuples(sorted_values):
    """The trivially exact GK representation of a sorted multiset."""
    return (
        list(sorted_values),
        [1] * len(sorted_values),
        [0] * len(sorted_values),
    )


class TestGKQuery:
    def test_exact_representation_answers_exactly(self) -> None:
        values, gs, deltas = exact_tuples([10, 20, 30, 40, 50])
        assert gk_query(values, gs, deltas, 5, 0.5) == 30
        assert gk_query(values, gs, deltas, 5, 0.0) == 10
        assert gk_query(values, gs, deltas, 5, 1.0) == 50

    def test_uncertain_middle_tuple(self) -> None:
        # Tuple (20, g=3, delta=1): its 1-based rank is in [4, 5].
        values = [10, 20, 50]
        gs = [1, 3, 1]
        deltas = [0, 1, 0]
        n = 5
        # Target rank 4 (phi=0.8): tolerance (3+1)/2 = 2 accepts tuple 2.
        assert gk_query(values, gs, deltas, n, 0.8) in (20, 50)

    def test_empty_raises(self) -> None:
        with pytest.raises(EmptySummaryError):
            gk_query([], [], [], 0, 0.5)

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=60),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_exact_tuples_property(self, data, phi) -> None:
        data.sort()
        values, gs, deltas = exact_tuples(data)
        answer = gk_query(values, gs, deltas, len(data), phi)
        import math

        target = max(1, math.ceil(phi * len(data)))
        # With all-exact tuples tolerance is 0.5: the answer's 1-based
        # rank must equal the target (for distinct positions).
        assert answer == data[target - 1]


class TestGKRank:
    def test_midpoint_semantics(self) -> None:
        values, gs, deltas = exact_tuples([10, 20, 30])
        assert gk_rank(values, gs, deltas, 5) == 0.0
        assert gk_rank(values, gs, deltas, 10) == 0.0
        assert gk_rank(values, gs, deltas, 15) == 0.0
        assert gk_rank(values, gs, deltas, 25) == 1.0
        assert gk_rank(values, gs, deltas, 99) == 2.0


class TestInvariantChecker:
    def test_accepts_valid_summary(self) -> None:
        exact = ExactQuantiles([1, 2, 3, 4])
        values, gs, deltas = exact_tuples([1, 2, 3, 4])
        check_gk_invariants(values, gs, deltas, 4, 0.25, exact.rank_interval)

    def test_rejects_wrong_total_weight(self) -> None:
        exact = ExactQuantiles([1, 2, 3, 4])
        values, gs, deltas = exact_tuples([1, 2, 3])
        with pytest.raises(AssertionError):
            check_gk_invariants(
                values, gs, deltas, 4, 0.25, exact.rank_interval
            )

    def test_rejects_rank_violation(self) -> None:
        exact = ExactQuantiles([1, 2, 3, 4])
        # A single tuple claiming value 3 has rank floor 4 — but only
        # three elements are <= 3, so invariant (1) is violated.
        with pytest.raises(AssertionError):
            check_gk_invariants([3], [4], [0], 4, 0.25, exact.rank_interval)

    def test_rejects_unordered_values(self) -> None:
        exact = ExactQuantiles([1, 2, 3])
        values = [2, 1, 3]
        gs = [1, 1, 1]
        deltas = [0, 0, 0]
        with pytest.raises(AssertionError):
            check_gk_invariants(
                values, gs, deltas, 3, 0.5, exact.rank_interval
            )

    def test_rejects_budget_violation(self) -> None:
        exact = ExactQuantiles(list(range(100)))
        values = [0, 50, 99]
        gs = [1, 50, 49]
        deltas = [0, 48, 0]  # g+delta = 98 >> 2*eps*n = 20
        with pytest.raises(AssertionError):
            check_gk_invariants(
                values, gs, deltas, 100, 0.1, exact.rank_interval
            )
