"""Tests for the GK family: GKAdaptive, GKArray, GKTheory.

The deterministic guarantee is absolute: after *any* prefix of *any*
stream, every extracted quantile must be within ``eps * n`` of its target
rank, and the internal tuple invariants (1) and (2) must hold.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cash_register import (
    GKAdaptive,
    GKArray,
    GKTheory,
    band,
    check_gk_invariants,
)
from repro.core import EmptySummaryError, ExactQuantiles, InvalidParameterError

GK_CLASSES = [GKAdaptive, GKArray, GKTheory]
GK_IDS = ["adaptive", "array", "theory"]

PHIS = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]


def _max_rank_error(sketch, exact: ExactQuantiles, phis=PHIS) -> float:
    n = exact.n
    worst = 0.0
    for phi in phis:
        q = sketch.query(phi)
        lo, hi = exact.rank_interval(q)
        target = phi * n
        if lo <= target <= hi:
            err = 0.0
        else:
            err = min(abs(target - lo), abs(target - hi))
        worst = max(worst, err / n)
    return worst


@pytest.fixture(params=list(zip(GK_CLASSES, GK_IDS)), ids=GK_IDS)
def gk_class(request):
    return request.param[0]


class TestGuarantee:
    @pytest.mark.parametrize("order", ["random", "sorted", "reversed"])
    def test_error_within_eps(self, gk_class, order, rng) -> None:
        eps = 0.02
        data = rng.integers(0, 1 << 20, size=8_000, dtype=np.int64)
        if order == "sorted":
            data = np.sort(data)
        elif order == "reversed":
            data = np.sort(data)[::-1]
        sk = gk_class(eps=eps)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        assert _max_rank_error(sk, exact) <= eps

    def test_error_mid_stream(self, gk_class, rng) -> None:
        """Queries must be valid at any prefix, not just at the end."""
        eps = 0.05
        data = rng.normal(0, 1, size=3_000)
        sk = gk_class(eps=eps)
        exact = ExactQuantiles()
        for i, x in enumerate(data.tolist()):
            sk.update(x)
            exact.update(x)
            if i in (10, 100, 999, 2500):
                assert _max_rank_error(sk, exact) <= eps

    def test_duplicates_heavy(self, gk_class, rng) -> None:
        eps = 0.02
        data = rng.integers(0, 8, size=6_000, dtype=np.int64)
        sk = gk_class(eps=eps)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        assert _max_rank_error(sk, exact) <= eps

    def test_invariants_hold(self, gk_class, rng) -> None:
        eps = 0.05
        data = rng.integers(0, 1000, size=2_000, dtype=np.int64).tolist()
        sk = gk_class(eps=eps)
        exact = ExactQuantiles()
        for i, x in enumerate(data):
            sk.update(x)
            exact.update(x)
            if i % 401 == 400:
                vs, gs, ds = zip(*sk.tuples())
                check_gk_invariants(
                    vs, gs, ds, sk.n, eps, exact.rank_interval
                )
        vs, gs, ds = zip(*sk.tuples())
        check_gk_invariants(vs, gs, ds, sk.n, eps, exact.rank_interval)

    @given(
        data=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=300,
        )
    )
    def test_invariants_property(self, gk_class, data) -> None:
        eps = 0.1
        sk = gk_class(eps=eps)
        exact = ExactQuantiles()
        for x in data:
            sk.update(x)
            exact.update(x)
        vs, gs, ds = zip(*sk.tuples())
        check_gk_invariants(vs, gs, ds, sk.n, eps, exact.rank_interval)
        assert _max_rank_error(sk, exact) <= eps + 1.0 / len(data)


class TestBehavior:
    def test_empty_query_raises(self, gk_class) -> None:
        with pytest.raises(EmptySummaryError):
            gk_class(eps=0.01).query(0.5)

    def test_invalid_phi_rejected(self, gk_class) -> None:
        sk = gk_class(eps=0.01)
        sk.update(1.0)
        with pytest.raises(InvalidParameterError):
            sk.query(1.5)
        with pytest.raises(InvalidParameterError):
            sk.query(-0.1)

    def test_invalid_eps_rejected(self, gk_class) -> None:
        with pytest.raises(InvalidParameterError):
            gk_class(eps=0.0)
        with pytest.raises(InvalidParameterError):
            gk_class(eps=1.0)

    def test_single_element(self, gk_class) -> None:
        sk = gk_class(eps=0.1)
        sk.update(42)
        for phi in (0.0, 0.5, 1.0):
            assert sk.query(phi) == 42

    def test_extremes_preserved(self, gk_class, rng) -> None:
        """Min and max must always be answerable exactly (delta = 0)."""
        data = rng.integers(0, 10**6, size=4_000, dtype=np.int64)
        sk = gk_class(eps=0.05)
        sk.extend(data.tolist())
        vs, _gs, _ds = zip(*sk.tuples())
        assert vs[0] == data.min()
        assert vs[-1] == data.max()

    @pytest.mark.parametrize("order", ["sorted", "reversed"])
    def test_space_sublinear_on_monotone_input(self, gk_class, order) -> None:
        """Regression: reverse-sorted input once disabled GKAdaptive's
        heap entirely (no key was pushed when the old minimum gained a
        predecessor), so |L| grew linearly."""
        data = np.arange(20_000, dtype=np.int64)
        if order == "reversed":
            data = data[::-1]
        sk = gk_class(eps=0.01)
        sk.extend(data.tolist())
        assert sk.tuple_count() < len(data) / 10

    def test_space_sublinear(self, gk_class, rng) -> None:
        eps = 0.01
        data = rng.integers(0, 1 << 30, size=20_000, dtype=np.int64)
        sk = gk_class(eps=eps)
        sk.extend(data.tolist())
        # A summary must be far smaller than the input.
        assert sk.tuple_count() < len(data) / 8

    def test_rank_monotone(self, gk_class, rng) -> None:
        data = rng.normal(0, 1, size=2_000)
        sk = gk_class(eps=0.05)
        sk.extend(data.tolist())
        probes = np.linspace(-3, 3, 20)
        ranks = [sk.rank(p) for p in probes]
        assert all(a <= b for a, b in zip(ranks, ranks[1:]))

    def test_quantiles_batch_matches_single(self, gk_class, rng) -> None:
        data = rng.integers(0, 1 << 16, size=3_000, dtype=np.int64)
        sk = gk_class(eps=0.02)
        sk.extend(data.tolist())
        assert sk.quantiles(PHIS) == [sk.query(p) for p in PHIS]

    def test_works_on_floats_and_negative(self, gk_class, rng) -> None:
        data = rng.normal(-5.0, 2.0, size=2_000)
        sk = gk_class(eps=0.05)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        assert _max_rank_error(sk, exact) <= 0.05


class TestGKArraySpecific:
    def test_query_flushes_buffer(self, rng) -> None:
        sk = GKArray(eps=0.01)
        data = rng.integers(0, 100, size=50, dtype=np.int64).tolist()
        sk.extend(data)
        # Fewer than capacity elements: everything still buffered, but a
        # query must see them.
        exact = ExactQuantiles(data)
        assert _max_rank_error(sk, exact) <= 0.01 + 1.0 / len(data)

    def test_buffer_factor_validated(self) -> None:
        with pytest.raises(ValueError):
            GKArray(eps=0.01, buffer_factor=0.0)

    def test_smaller_than_adaptive_or_close(self, rng) -> None:
        """GKArray's batch pruning should be in the same size ballpark as
        GKAdaptive (the paper finds them close; allow slack)."""
        data = rng.integers(0, 1 << 24, size=20_000, dtype=np.int64).tolist()
        arr = GKArray(eps=0.01)
        ada = GKAdaptive(eps=0.01)
        arr.extend(data)
        ada.extend(data)
        arr._prepare_query()
        assert arr.tuple_count() < 4 * ada.tuple_count()


class TestGKTheorySpecific:
    def test_band_edges(self) -> None:
        p = 100
        assert band(p, p) == 0
        assert band(0, p) == p.bit_length() + 1
        # bands weakly decrease as delta increases
        bands = [band(d, p) for d in range(1, p + 1)]
        assert all(a >= b for a, b in zip(bands, bands[1:]))

    def test_logarithmic_growth(self, rng) -> None:
        """|L| should grow roughly like log(eps * n), not linearly."""
        eps = 0.02
        sk = GKTheory(eps=eps)
        sizes = []
        for chunk in range(8):
            sk.extend(
                rng.integers(0, 1 << 30, size=4_000, dtype=np.int64).tolist()
            )
            sizes.append(sk.tuple_count())
        # Doubling n from 16k to 32k should grow |L| by far less than 2x.
        assert sizes[-1] < 1.5 * sizes[3]
