"""Tests for the OLS/BLUE post-processing (Section 3.2).

The anchor is the paper's own worked example (Fig. 3 / Table 2): a 9-node
tree with known weights, auxiliary values, and corrected estimates.  Our
solver must reproduce every number in Table 2.  Beyond that, the linear-
time solver is validated against a brute-force constrained weighted
least-squares solve on random trees, and the end-to-end snapshot is
checked to actually reduce DCS error.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import InvalidParameterError
from repro.streams import synthetic_mpcat_obs, uniform_stream
from repro.turnstile import (
    DCSWithPostProcessing,
    DyadicCountSketch,
    TreeNode,
    blue_correct,
    blue_correct_forest,
    brute_force_blue,
)


def paper_tree() -> TreeNode:
    """The tree of Fig. 3 with observations consistent with Table 2.

    Table 2 determines the path sums y2+y4=12, y2+y5+y8=23, y2+y5+y9=22,
    y3+y6=12, y3+y7=10 (and y1=15); any assignment matching them yields
    exactly the table's lambda, pi, Z, Delta, F and x*.
    """
    n4 = TreeNode(3, 2)
    n8 = TreeNode(5, 2)
    n9 = TreeNode(4, 2)
    n5 = TreeNode(9, 2, [n8, n9])
    n2 = TreeNode(9, 2, [n4, n5])
    n6 = TreeNode(5, 2)
    n7 = TreeNode(3, 2)
    n3 = TreeNode(7, 2, [n6, n7])
    return TreeNode(15, 0, [n2, n3])


class TestPaperTable2:
    def test_lambdas(self) -> None:
        root = paper_tree()
        blue_correct(root)
        n2, n3 = root.children
        n4, n5 = n2.children
        n8, n9 = n5.children
        n6, n7 = n3.children
        expected = {
            id(root): 1.0,
            id(n2): 15 / 31,
            id(n3): 16 / 31,
            id(n4): 9 / 31,
            id(n5): 6 / 31,
            id(n6): 8 / 31,
            id(n7): 8 / 31,
            id(n8): 3 / 31,
            id(n9): 3 / 31,
        }
        for node in root.walk():
            assert node.lam == pytest.approx(expected[id(node)], abs=1e-12)

    def test_pis(self) -> None:
        root = paper_tree()
        blue_correct(root)
        n2, n3 = root.children
        n4, n5 = n2.children
        n8, n9 = n5.children
        n6, n7 = n3.children
        expected = {
            id(n2): 12 / 31,
            id(n3): 12 / 31,
            id(n4): 9 / 62,
            id(n5): 9 / 62,
            id(n6): 4 / 31,
            id(n7): 4 / 31,
            id(n8): 3 / 62,
            id(n9): 3 / 62,
        }
        for node in root.walk():
            if node is root:
                continue
            assert node.pi == pytest.approx(expected[id(node)], abs=1e-12)

    def test_zs_and_delta(self) -> None:
        root = paper_tree()
        blue_correct(root)
        n2, n3 = root.children
        n4, n5 = n2.children
        n8, n9 = n5.children
        n6, n7 = n3.children
        expected_z = {
            id(root): 419 / 62,
            id(n2): 243 / 62,
            id(n3): 88 / 31,
            id(n4): 54 / 31,
            id(n5): 135 / 62,
            id(n6): 48 / 31,
            id(n7): 40 / 31,
            id(n8): 69 / 62,
            id(n9): 33 / 31,
        }
        for node in root.walk():
            assert node.z == pytest.approx(expected_z[id(node)], abs=1e-12)
        delta = (root.z - root.y * root.children[0].pi) / root.lam
        assert delta == pytest.approx(59 / 62, abs=1e-12)

    def test_xstars(self) -> None:
        root = paper_tree()
        blue_correct(root)
        n2, n3 = root.children
        n4, n5 = n2.children
        n8, n9 = n5.children
        n6, n7 = n3.children
        expected = {  # Table 2, column x* (2 decimals in the paper)
            id(root): 15.0,
            id(n2): 8.94,
            id(n3): 6.06,
            id(n4): 1.16,
            id(n5): 7.77,
            # The paper prints 4.04 for node 6, but that contradicts the
            # table's own consistency (4.04 + 2.03 != 6.06 = x*_3, which
            # BLUE guarantees); the exact value is 125/31 = 4.0323, which
            # the brute-force solver confirms below.
            id(n6): 4.0323,
            id(n7): 2.03,
            id(n8): 4.38,
            id(n9): 3.38,
        }
        # abs=0.011: the paper truncates rather than rounds some entries
        # (e.g. node 9 is 105/31 = 3.3871, printed as 3.38).
        for node in root.walk():
            assert node.xstar == pytest.approx(expected[id(node)], abs=0.011)

    def test_consistency(self) -> None:
        """BLUE output is tree-consistent: parent = sum of children."""
        root = paper_tree()
        blue_correct(root)
        for node in root.walk():
            if node.children:
                assert node.xstar == pytest.approx(
                    sum(child.xstar for child in node.children), abs=1e-9
                )

    def test_matches_brute_force(self) -> None:
        a = paper_tree()
        b = paper_tree()
        blue_correct(a)
        brute_force_blue(b)
        for fast, ref in zip(a.walk(), b.walk()):
            assert fast.xstar == pytest.approx(ref.xstar, abs=1e-8)


def _random_tree(rng: np.random.Generator, depth: int) -> TreeNode:
    """A random full binary tree with noisy consistent observations."""

    def build(level: int) -> TreeNode:
        if level == 0 or rng.random() < 0.25:
            truth = float(rng.integers(0, 50))
            return TreeNode(truth, 1.0)  # y filled below
        left = build(level - 1)
        right = build(level - 1)
        return TreeNode(0.0, 1.0, [left, right])

    root = build(depth)

    # Fill internal truths bottom-up, then noise every observation.
    def fill(node: TreeNode) -> float:
        if node.is_leaf():
            truth = node.y
        else:
            truth = sum(fill(child) for child in node.children)
        node.sigma2 = float(rng.uniform(0.5, 4.0))
        node.y = truth + rng.normal(0, math.sqrt(node.sigma2))
        return truth

    total = fill(root)
    root.y = total  # exact root
    root.sigma2 = 0.0
    return root


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("depth", [1, 2, 3, 5])
    def test_random_trees(self, seed: int, depth: int) -> None:
        rng = np.random.default_rng(seed)
        fast = _random_tree(rng, depth)
        ref = _random_tree(np.random.default_rng(seed), depth)
        blue_correct(fast)
        brute_force_blue(ref)
        for a, b in zip(fast.walk(), ref.walk()):
            assert a.xstar == pytest.approx(b.xstar, rel=1e-6, abs=1e-6)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_unbalanced_chain(self, seed: int) -> None:
        """Degenerate left-spine trees (the case Hay et al. cannot do)."""
        rng = np.random.default_rng(seed)
        leaf = TreeNode(float(rng.integers(0, 20)), 1.0)
        node = leaf
        for _ in range(6):
            sibling = TreeNode(float(rng.integers(0, 20)), 1.0)
            node = TreeNode(0.0, 1.0, [node, sibling])

        def fill(v: TreeNode) -> float:
            if v.is_leaf():
                truth = v.y
            else:
                truth = sum(fill(c) for c in v.children)
            v.sigma2 = float(rng.uniform(0.5, 2.0))
            v.y = truth + rng.normal(0, 1)
            return truth

        total = fill(node)
        node.y, node.sigma2 = total, 0.0
        ref = brute = None
        fast = node
        import copy

        brute = copy.deepcopy(node)
        blue_correct(fast)
        brute_force_blue(brute)
        for a, b in zip(fast.walk(), brute.walk()):
            assert a.xstar == pytest.approx(b.xstar, rel=1e-6, abs=1e-6)


class TestValidation:
    def test_rejects_inexact_root(self) -> None:
        with pytest.raises(InvalidParameterError):
            blue_correct(TreeNode(5, 1.0))
        with pytest.raises(InvalidParameterError):
            blue_correct_forest(TreeNode(5, 1.0))

    def test_rejects_exact_internal(self) -> None:
        bad = TreeNode(5, 0.0, [TreeNode(2, 0.0), TreeNode(3, 1.0)])
        with pytest.raises(InvalidParameterError):
            blue_correct(bad)

    def test_rejects_single_child(self) -> None:
        with pytest.raises(InvalidParameterError):
            TreeNode(5, 0.0, [TreeNode(2, 1.0)])

    def test_exact_leaf_root_is_identity(self) -> None:
        node = TreeNode(7, 0.0)
        blue_correct(node)
        assert node.xstar == 7.0


class TestExactBandForest:
    def test_two_level_exact_band(self) -> None:
        """Exact nodes pass through; estimated subtrees get corrected."""
        est1 = TreeNode(4.7, 1.0, [TreeNode(2.2, 1.0), TreeNode(2.4, 1.0)])
        est2 = TreeNode(5.5, 1.0, [TreeNode(3.1, 1.0), TreeNode(2.6, 1.0)])
        exact_left = TreeNode(5.0, 0.0, [est1.children[0], est1.children[1]])
        # Rebuild cleanly: exact parent with two estimated children.
        left = TreeNode(
            5.0, 0.0,
            [TreeNode(2.2, 1.0), TreeNode(2.4, 1.0)],
        )
        right = TreeNode(
            6.0, 0.0,
            [TreeNode(3.1, 1.0), TreeNode(2.6, 1.0)],
        )
        root = TreeNode(11.0, 0.0, [left, right])
        blue_correct_forest(root)
        assert root.xstar == 11.0
        assert left.xstar == 5.0 and right.xstar == 6.0
        assert sum(c.xstar for c in left.children) == pytest.approx(5.0)
        assert sum(c.xstar for c in right.children) == pytest.approx(6.0)
        del est1, est2, exact_left  # clarity only

    def test_variance_reduction_on_fixture(self) -> None:
        """On random consistent trees, BLUE should (on average) move the
        estimates toward the truth."""
        raw_err = 0.0
        blue_err = 0.0
        for seed in range(30):
            rng = np.random.default_rng(seed)
            root = _random_tree(rng, 4)
            truths = {}

            def record(node: TreeNode) -> float:
                if node.is_leaf():
                    truth = node.y - 0.0  # y is noisy; recompute from build
                    # Leaves' truth is unrecoverable post-noise; instead
                    # measure consistency gain via the exact root.
                return 0.0

            blue_correct(root)
            # With an exact root, the sum of corrected leaves is exact,
            # while the sum of raw leaf observations is noisy.
            leaves = [n for n in root.walk() if n.is_leaf()]
            raw_err += abs(sum(n.y for n in leaves) - root.y)
            blue_err += abs(sum(n.xstar for n in leaves) - root.y)
        assert blue_err < raw_err / 10


class TestEndToEnd:
    def test_post_reduces_dcs_error(self) -> None:
        """The headline claim (Fig. 9/10): Post cuts DCS rank error by a
        large factor at equal state."""
        data = synthetic_mpcat_obs(40_000, seed=42)
        log_u = 24
        dcs = DyadicCountSketch(
            eps=0.01, universe_log2=log_u, seed=7, width=64, depth=5
        )
        dcs.update_batch(data)
        snap = dcs.post_processed(eta=0.1)
        sorted_data = np.sort(data)
        phis = np.linspace(0.05, 0.95, 19)
        raw_err = post_err = 0.0
        for phi in phis:
            target = phi * len(data)
            q_raw = dcs.query(phi)
            q_post = snap.query(phi)
            raw_err += abs(
                float(np.searchsorted(sorted_data, q_raw)) - target
            )
            post_err += abs(
                float(np.searchsorted(sorted_data, q_post)) - target
            )
        assert post_err < raw_err

    def test_snapshot_rank_monotone(self) -> None:
        data = uniform_stream(20_000, universe_log2=16, seed=3)
        sk = DCSWithPostProcessing(
            eps=0.01, universe_log2=16, seed=5, width=128
        )
        sk.update_batch(data)
        snap = sk.snapshot()
        probes = np.linspace(0, 1 << 16, 40).astype(int)
        ranks = [snap.rank(int(p)) for p in probes]
        assert all(a <= b + 1e-9 for a, b in zip(ranks, ranks[1:]))
        assert ranks[0] == 0.0
        assert ranks[-1] == pytest.approx(snap._leaf_cum[-1])

    def test_snapshot_cache_invalidation(self) -> None:
        sk = DCSWithPostProcessing(eps=0.05, universe_log2=10, seed=1)
        sk.update_batch(uniform_stream(1_000, universe_log2=10, seed=2))
        s1 = sk.snapshot()
        assert sk.snapshot() is s1
        sk.update(5)
        assert sk.snapshot() is not s1

    def test_eta_tradeoff(self) -> None:
        """Smaller eta => bigger truncated tree (Fig. 9 mechanics)."""
        data = uniform_stream(30_000, universe_log2=20, seed=9)
        dcs = DyadicCountSketch(
            eps=0.01, universe_log2=20, seed=11, width=128
        )
        dcs.update_batch(data)
        sizes = [
            dcs.post_processed(eta=eta).node_count()
            for eta in (1.0, 0.3, 0.1, 0.03)
        ]
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))

    def test_invalid_eta(self) -> None:
        dcs = DyadicCountSketch(eps=0.05, universe_log2=8, seed=0)
        dcs.update(3)
        with pytest.raises(InvalidParameterError):
            dcs.post_processed(eta=-0.5)
