"""Batched queries on the dyadic structures must match the scalar path.

``rank_batch``/``query_batch`` share one estimator call per level across
all probes; the estimates are deterministic functions of the sketch
state, so the answers must be *exactly* those of looping ``rank`` /
``query`` — including for Post, whose batched path must route through
the OLS-corrected snapshot rather than the inherited dyadic walk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.turnstile.dcm import DyadicCountMin
from repro.turnstile.dcs import DyadicCountSketch
from repro.turnstile.postprocess import DCSWithPostProcessing
from repro.turnstile.rss import RandomSubsetSums

PHI_GRID = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]

FACTORIES = [
    ("dcm", lambda: DyadicCountMin(eps=0.05, universe_log2=12, seed=3)),
    ("dcs", lambda: DyadicCountSketch(eps=0.05, universe_log2=12, seed=3)),
    ("rss", lambda: RandomSubsetSums(eps=0.1, universe_log2=10, seed=3)),
]


@pytest.fixture(params=FACTORIES, ids=[n for n, _ in FACTORIES])
def sketch(request, rng):
    sk = request.param[1]()
    data = rng.integers(0, sk.universe, size=5_000, dtype=np.int64)
    sk.update_batch(data)
    deletions = data[:500]
    sk.update_batch(deletions, -1)
    return sk


class TestRankBatch:
    def test_matches_scalar_rank(self, sketch, rng) -> None:
        probes = np.concatenate([
            rng.integers(0, sketch.universe, size=64, dtype=np.int64),
            np.asarray([0, 1, sketch.universe - 1, sketch.universe]),
        ])
        batched = sketch.rank_batch(probes)
        scalar = [sketch.rank(int(v)) for v in probes]
        assert batched.tolist() == scalar

    def test_empty_probe_list(self, sketch) -> None:
        assert sketch.rank_batch([]).tolist() == []


class TestQueryBatch:
    def test_matches_scalar_query(self, sketch) -> None:
        assert sketch.query_batch(PHI_GRID) == [
            sketch.query(phi) for phi in PHI_GRID
        ]

    def test_empty_phi_list(self, sketch) -> None:
        assert sketch.query_batch([]) == []


class TestPostRoutesThroughSnapshot:
    def test_query_batch_uses_corrected_counts(self, rng) -> None:
        sk = DCSWithPostProcessing(eps=0.05, universe_log2=12, seed=9)
        data = rng.integers(0, sk.universe, size=5_000, dtype=np.int64)
        sk.update_batch(data)
        snap = sk.snapshot()
        assert sk.query_batch(PHI_GRID) == [
            snap.query(phi) for phi in PHI_GRID
        ]
        # ...and NOT the raw dyadic walk, which skips the OLS step.
        raw = DyadicCountSketch.query_batch(sk, PHI_GRID)
        corrected = sk.query_batch(PHI_GRID)
        assert len(raw) == len(corrected)
