"""Model-based stateful testing: a turnstile sketch against an exact
oracle under hypothesis-generated interleavings of inserts, deletes,
batch updates, and queries.

This is the strongest correctness net for the dyadic sketches: hypothesis
explores operation orders (including delete-heavy phases and query-right-
after-delete) that fixed scenarios miss.  The sketch under test uses all
exact levels so answers must match the oracle *exactly* — any divergence
is a bookkeeping bug, not noise.  A second machine runs DCS with real
sketched levels and checks the probabilistic envelope instead.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.turnstile import DyadicCountSketch

UNIVERSE_LOG2 = 8
UNIVERSE = 1 << UNIVERSE_LOG2

values = st.integers(min_value=0, max_value=UNIVERSE - 1)


class ExactDyadicMachine(RuleBasedStateMachine):
    """All-exact-levels DCS must agree with a Counter oracle exactly."""

    def __init__(self) -> None:
        super().__init__()
        self.sketch = DyadicCountSketch(
            eps=0.1, universe_log2=UNIVERSE_LOG2, seed=7,
            exact_cutoff=UNIVERSE,
        )
        self.model: Counter = Counter()

    @rule(value=values)
    def insert(self, value: int) -> None:
        self.sketch.update(value)
        self.model[value] += 1

    @precondition(lambda self: sum(self.model.values()) > 0)
    @rule(data=st.data())
    def delete_existing(self, data) -> None:
        live = sorted(v for v, c in self.model.items() if c > 0)
        value = data.draw(st.sampled_from(live))
        self.sketch.delete(value)
        self.model[value] -= 1

    @rule(batch=st.lists(values, min_size=1, max_size=30))
    def insert_batch(self, batch) -> None:
        self.sketch.update_batch(np.asarray(batch, dtype=np.int64))
        self.model.update(batch)

    @rule(probe=st.integers(min_value=0, max_value=UNIVERSE))
    def check_rank(self, probe: int) -> None:
        truth = sum(c for v, c in self.model.items() if v < probe)
        assert self.sketch.rank(probe) == float(truth)

    @precondition(lambda self: sum(self.model.values()) > 0)
    @rule(phi=st.floats(min_value=0.0, max_value=1.0))
    def check_quantile_valid(self, phi: float) -> None:
        answer = self.sketch.query(phi)
        n = sum(self.model.values())
        lo = sum(c for v, c in self.model.items() if v < answer)
        hi = lo + self.model[answer]
        target = max(1, int(np.ceil(phi * n)))
        # With exact levels, the binary search lands on an element whose
        # inclusive rank range covers the target.
        assert lo < target <= hi or (target <= 1 and lo == 0)

    @invariant()
    def n_matches(self) -> None:
        assert self.sketch.n == sum(self.model.values())


TestExactDyadic = ExactDyadicMachine.TestCase
TestExactDyadic.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)


class SketchedDyadicMachine(RuleBasedStateMachine):
    """DCS with real sketched levels: answers within the error envelope."""

    EPS = 0.05

    def __init__(self) -> None:
        super().__init__()
        self.sketch = DyadicCountSketch(
            eps=self.EPS, universe_log2=UNIVERSE_LOG2, seed=11,
            exact_cutoff=0,
        )
        self.model: Counter = Counter()

    @rule(batch=st.lists(values, min_size=1, max_size=50))
    def insert_batch(self, batch) -> None:
        self.sketch.update_batch(np.asarray(batch, dtype=np.int64))
        self.model.update(batch)

    @precondition(lambda self: sum(self.model.values()) > 2)
    @rule(data=st.data())
    def delete_some(self, data) -> None:
        live = sorted(v for v, c in self.model.items() if c > 0)
        value = data.draw(st.sampled_from(live))
        self.sketch.delete(value)
        self.model[value] -= 1

    @precondition(lambda self: sum(self.model.values()) > 0)
    @rule(probe=st.integers(min_value=0, max_value=UNIVERSE))
    def check_rank_envelope(self, probe: int) -> None:
        truth = sum(c for v, c in self.model.items() if v < probe)
        n = sum(self.model.values())
        # Generous: small-n sketch noise is additive, so allow a floor.
        assert abs(self.sketch.rank(probe) - truth) <= max(
            10.0, 5 * self.EPS * n
        )

    @invariant()
    def n_matches(self) -> None:
        assert self.sketch.n == sum(self.model.values())


TestSketchedDyadic = SketchedDyadicMachine.TestCase
TestSketchedDyadic.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
