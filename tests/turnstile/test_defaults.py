"""The paper's tuned default parameters must be encoded correctly.

Section 4.3.1 fixes d = 7 and the widths ``w = (1/eps) log2 u`` for DCM
vs ``w = sqrt(log2 u) / eps`` for DCS — the formulas that realize the
two analyses.  These tests pin them so a refactor cannot silently change
the reproduced configuration.
"""

from __future__ import annotations

import math

import pytest

from repro.turnstile import (
    DCSWithPostProcessing,
    DyadicCountMin,
    DyadicCountSketch,
)


class TestPaperDefaults:
    @pytest.mark.parametrize("log_u", [16, 24, 32])
    @pytest.mark.parametrize("eps", [0.05, 0.01])
    def test_dcm_width_formula(self, log_u, eps) -> None:
        sk = DyadicCountMin(eps=eps, universe_log2=log_u, seed=0)
        assert sk.width == max(2, math.ceil(log_u / eps))
        assert sk.depth == 7

    @pytest.mark.parametrize("log_u", [16, 24, 32])
    @pytest.mark.parametrize("eps", [0.05, 0.01])
    def test_dcs_width_formula(self, log_u, eps) -> None:
        sk = DyadicCountSketch(eps=eps, universe_log2=log_u, seed=0)
        assert sk.width == max(2, math.ceil(math.sqrt(log_u) / eps))
        assert sk.depth == 7

    def test_post_inherits_dcs_defaults(self) -> None:
        post = DCSWithPostProcessing(eps=0.01, universe_log2=24, seed=0)
        dcs = DyadicCountSketch(eps=0.01, universe_log2=24, seed=0)
        assert post.width == dcs.width
        assert post.depth == dcs.depth
        assert post.eta == 0.1  # Fig. 9's sweet spot

    def test_exact_cutoff_defaults_to_sketch_size(self) -> None:
        sk = DyadicCountSketch(eps=0.01, universe_log2=20, seed=0)
        assert sk.exact_cutoff == sk.width * sk.depth
        # Exact levels are exactly those with <= cutoff cells.
        for level in sk.exact_levels():
            assert (1 << (20 - level)) <= sk.exact_cutoff

    def test_widths_imply_dcs_space_advantage(self) -> None:
        """The ratio of the default widths is log u / sqrt(log u) =
        sqrt(log u) — the asymptotic gap Table 1 claims."""
        for log_u in (16, 24, 32):
            dcm = DyadicCountMin(eps=0.01, universe_log2=log_u, seed=0)
            dcs = DyadicCountSketch(eps=0.01, universe_log2=log_u, seed=0)
            ratio = dcm.width / dcs.width
            assert ratio == pytest.approx(math.sqrt(log_u), rel=0.02)
