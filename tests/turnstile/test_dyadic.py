"""Tests for the dyadic structure and the DCM/DCS/RSS turnstile sketches.

Core invariants:
* the dyadic decomposition of ``[0, x)`` is exact (checked against exact
  counters, where the whole pipeline must be error-free);
* insert-then-delete leaves the sketch state identical;
* rank/quantile errors stay within the expected envelope;
* the comparison-model impossibility argument (Section 1.2.2): turnstile
  sketches survive the insert-everything-delete-almost-everything stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmptySummaryError,
    InvalidParameterError,
    UniverseOverflowError,
)
from repro.streams import (
    adversarial_teardown,
    churn_stream,
    remaining_values,
    uniform_stream,
)
from repro.turnstile import (
    DyadicCountMin,
    DyadicCountSketch,
    DyadicQuantiles,
    RandomSubsetSums,
)

TURNSTILE = [
    lambda **kw: DyadicCountMin(**kw),
    lambda **kw: DyadicCountSketch(**kw),
]
T_IDS = ["dcm", "dcs"]


@pytest.fixture(params=list(zip(TURNSTILE, T_IDS)), ids=T_IDS)
def factory(request):
    return request.param[0]


class TestDecompositionExactness:
    def test_rank_exact_when_all_levels_exact(self, rng) -> None:
        """With exact counters everywhere, dyadic rank must be exact."""
        sk = DyadicCountSketch(
            eps=0.1, universe_log2=10, seed=0, exact_cutoff=1 << 10
        )
        data = rng.integers(0, 1 << 10, size=5_000, dtype=np.int64)
        sk.update_batch(data)
        assert sk.exact_levels() == list(range(10))
        sorted_data = np.sort(data)
        for probe in [0, 1, 17, 512, 1000, 1023, 1024]:
            assert sk.rank(probe) == float(
                np.searchsorted(sorted_data, probe)
            )

    def test_quantiles_exact_when_all_levels_exact(self, rng) -> None:
        sk = DyadicCountMin(
            eps=0.1, universe_log2=8, seed=0, exact_cutoff=1 << 8
        )
        data = rng.integers(0, 256, size=2_000, dtype=np.int64)
        sk.update_batch(data)
        sorted_data = np.sort(data)
        for phi in (0.1, 0.5, 0.9):
            q = sk.query(phi)
            target = max(1, int(np.ceil(phi * 2_000)))
            lo = int(np.searchsorted(sorted_data, q, "left"))
            hi = int(np.searchsorted(sorted_data, q, "right"))
            assert lo < target <= hi


class TestAccuracy:
    def test_rank_error_bounded(self, factory, rng) -> None:
        eps = 0.01
        data = rng.integers(0, 1 << 20, size=30_000, dtype=np.int64)
        sk = factory(eps=eps, universe_log2=20, seed=5)
        sk.update_batch(data)
        sorted_data = np.sort(data)
        probes = rng.integers(0, 1 << 20, size=50, dtype=np.int64)
        worst = 0.0
        for probe in probes.tolist():
            true = float(np.searchsorted(sorted_data, probe))
            worst = max(worst, abs(sk.rank(probe) - true))
        assert worst <= eps * len(data) * 3  # probabilistic envelope

    def test_quantile_error_bounded(self, factory, rng) -> None:
        eps = 0.01
        n = 30_000
        data = rng.integers(0, 1 << 20, size=n, dtype=np.int64)
        sk = factory(eps=eps, universe_log2=20, seed=9)
        sk.update_batch(data)
        sorted_data = np.sort(data)
        for phi in np.linspace(0.05, 0.95, 10):
            q = sk.query(float(phi))
            lo = int(np.searchsorted(sorted_data, q, "left"))
            hi = int(np.searchsorted(sorted_data, q, "right"))
            target = phi * n
            err = 0.0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            assert err <= 3 * eps * n

    def test_accuracy_after_heavy_churn(self, factory) -> None:
        ops = churn_stream(40_000, universe_log2=16, delete_fraction=0.4,
                           seed=21)
        sk = factory(eps=0.02, universe_log2=16, seed=3)
        values = np.asarray([v for v, d in ops if d == 1], dtype=np.int64)
        dels = np.asarray([v for v, d in ops if d == -1], dtype=np.int64)
        sk.update_batch(values)
        sk.update_batch(dels, -1)
        remaining = remaining_values(ops)
        assert sk.n == len(remaining)
        for phi in (0.25, 0.5, 0.75):
            q = sk.query(phi)
            lo = int(np.searchsorted(remaining, q, "left"))
            hi = int(np.searchsorted(remaining, q, "right"))
            target = phi * len(remaining)
            err = 0.0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            assert err <= 3 * 0.02 * len(remaining)

    def test_adversarial_teardown(self, factory) -> None:
        """Insert n, delete all but a few — the comparison-model killer."""
        ops = adversarial_teardown(5_000, universe_log2=16, survivors=25,
                                   seed=8)
        sk = factory(eps=0.05, universe_log2=16, seed=2)
        for value, delta in ops:
            if delta == 1:
                sk.update(value)
            else:
                sk.delete(value)
        remaining = remaining_values(ops)
        assert sk.n == 25
        q = sk.query(0.5)
        # With 25 survivors an error of eps*n = 1.25 ranks means the
        # answer must be one of the survivors' neighborhood.
        lo = int(np.searchsorted(remaining, q, "left"))
        assert abs(lo - 12.5) <= 8


class TestTurnstileSemantics:
    def test_insert_delete_identity(self, factory, rng) -> None:
        sk1 = factory(eps=0.05, universe_log2=12, seed=77)
        sk2 = factory(eps=0.05, universe_log2=12, seed=77)
        base = rng.integers(0, 1 << 12, size=2_000, dtype=np.int64)
        extra = rng.integers(0, 1 << 12, size=1_000, dtype=np.int64)
        sk1.update_batch(base)
        sk2.update_batch(base)
        sk2.update_batch(extra)
        sk2.update_batch(extra, -1)
        assert sk1.n == sk2.n
        probes = rng.integers(0, 1 << 12, size=30, dtype=np.int64)
        for probe in probes.tolist():
            assert sk1.rank(probe) == sk2.rank(probe)

    def test_scalar_and_batch_agree(self, factory, rng) -> None:
        data = rng.integers(0, 1 << 12, size=500, dtype=np.int64)
        a = factory(eps=0.05, universe_log2=12, seed=13)
        b = factory(eps=0.05, universe_log2=12, seed=13)
        for x in data.tolist():
            a.update(x)
        b.update_batch(data)
        probes = rng.integers(0, 1 << 12, size=20, dtype=np.int64)
        for probe in probes.tolist():
            assert a.rank(probe) == b.rank(probe)

    def test_apply_update_pairs(self, factory) -> None:
        sk = factory(eps=0.05, universe_log2=8, seed=1)
        sk.apply([(3, 1), (5, 1), (3, -1)])
        assert sk.n == 1
        with pytest.raises(InvalidParameterError):
            sk.apply([(3, 2)])


class TestValidation:
    def test_rejects_out_of_universe(self, factory) -> None:
        sk = factory(eps=0.05, universe_log2=8, seed=0)
        with pytest.raises(UniverseOverflowError):
            sk.update(256)
        with pytest.raises(UniverseOverflowError):
            sk.update(-1)
        with pytest.raises(UniverseOverflowError):
            sk.update_batch(np.int64([0, 999]))

    def test_rejects_big_universe(self, factory) -> None:
        with pytest.raises((UniverseOverflowError, InvalidParameterError)):
            factory(eps=0.05, universe_log2=40, seed=0)

    def test_empty_query_raises(self, factory) -> None:
        with pytest.raises(EmptySummaryError):
            factory(eps=0.05, universe_log2=8, seed=0).query(0.5)

    def test_rank_edges(self, factory, rng) -> None:
        sk = factory(eps=0.05, universe_log2=8, seed=0)
        sk.update_batch(rng.integers(0, 256, size=100, dtype=np.int64))
        assert sk.rank(0) == 0.0
        assert sk.rank(-5) == 0.0
        assert sk.rank(256) == 100.0
        assert sk.rank(9999) == 100.0


class TestSpaceShape:
    def test_dcs_smaller_than_dcm(self) -> None:
        """DCS's default width is sqrt(log u)/eps vs DCM's log(u)/eps, so
        DCS must be substantially smaller at equal eps (Table 1)."""
        dcm = DyadicCountMin(eps=0.01, universe_log2=24, seed=0)
        dcs = DyadicCountSketch(eps=0.01, universe_log2=24, seed=0)
        assert dcs.size_words() < 0.5 * dcm.size_words()

    def test_smaller_universe_smaller_sketch(self, factory) -> None:
        small = factory(eps=0.01, universe_log2=16, seed=0)
        big = factory(eps=0.01, universe_log2=32, seed=0)
        assert small.size_words() < big.size_words()

    def test_exact_cutoff_zero_disables_exact_levels(self) -> None:
        sk = DyadicCountSketch(
            eps=0.05, universe_log2=10, seed=0, exact_cutoff=0
        )
        assert sk.exact_levels() == []


class TestRSS:
    def test_basic_accuracy(self, rng) -> None:
        """RSS works, just expensively (small universe keeps it fast)."""
        data = rng.integers(0, 1 << 8, size=4_000, dtype=np.int64)
        sk = RandomSubsetSums(
            eps=0.05, universe_log2=8, seed=4, groups=5, reps=64,
            exact_cutoff=16,
        )
        sk.update_batch(data)
        sorted_data = np.sort(data)
        q = sk.query(0.5)
        lo = int(np.searchsorted(sorted_data, q, "left"))
        hi = int(np.searchsorted(sorted_data, q, "right"))
        target = 0.5 * len(data)
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        assert err <= 0.25 * len(data)  # RSS is noisy; envelope is wide

    def test_much_larger_than_dcs_for_same_eps(self) -> None:
        rss = RandomSubsetSums(eps=0.01, universe_log2=16, seed=0)
        dcs = DyadicCountSketch(eps=0.01, universe_log2=16, seed=0)
        assert rss.size_words() > dcs.size_words()


def test_base_class_hooks_are_abstract() -> None:
    with pytest.raises(NotImplementedError):
        DyadicQuantiles(eps=0.1, universe_log2=4)
