"""Flight recorder: bounded event ring, dump-on-degrade, singleton."""

import json

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.events import (
    DEGRADE_KINDS,
    EventLog,
    FlightRecorder,
    enable_flight,
    disable_flight,
    record_event,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _isolated_singletons():
    previous_rec = obs_metrics._recorder
    previous_flight = obs_events._flight
    obs_metrics.disable()
    disable_flight()
    yield
    obs_metrics._recorder = previous_rec
    obs_events._flight = previous_flight


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestEventLog:
    def test_emit_and_order(self):
        log = EventLog(clock=FakeClock())
        log.emit("supervisor.restart", worker=3)
        log.emit("wal.torn_tail", segment="wal-000.seg")
        events = log.events()
        assert [e["kind"] for e in events] == [
            "supervisor.restart", "wal.torn_tail",
        ]
        assert events[0]["seq"] == 0 and events[1]["seq"] == 1
        assert events[0]["worker"] == 3
        assert events[0]["unix_s"] == pytest.approx(1001.0)

    def test_ring_evicts_oldest(self):
        log = EventLog(max_events=3, clock=FakeClock())
        for i in range(5):
            log.emit("k", i=i)
        assert len(log) == 3
        assert log.evicted == 2
        assert [e["i"] for e in log.events()] == [2, 3, 4]
        assert [e["i"] for e in log.events(tail=2)] == [3, 4]

    def test_jsonl_parses(self):
        log = EventLog(clock=FakeClock())
        log.emit("checkpoint.fallback", skipped="ckpt-7.ck")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "checkpoint.fallback"

    def test_validates_capacity(self):
        with pytest.raises(InvalidParameterError):
            EventLog(max_events=0)


class TestFlightRecorder:
    def test_degrade_kind_dumps(self, tmp_path):
        fr = FlightRecorder(directory=tmp_path, clock=FakeClock())
        fr.record("parallel.chunk", n=4096)
        assert fr.dumps == 0  # ordinary events never dump
        fr.record("supervisor.restart", worker=1, reason="died")
        assert fr.dumps == 1
        (path,) = fr.dump_paths
        assert path.name == "flight-000-supervisor-restart.jsonl"
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        # The whole ring is preserved: context before the degrade too.
        assert [r["kind"] for r in records] == [
            "parallel.chunk", "supervisor.restart",
        ]
        assert records[1]["worker"] == 1

    def test_every_degrade_kind_triggers(self, tmp_path):
        fr = FlightRecorder(directory=tmp_path, clock=FakeClock())
        for kind in sorted(DEGRADE_KINDS):
            fr.record(kind)
        assert fr.dumps == len(DEGRADE_KINDS)

    def test_no_directory_never_writes(self):
        fr = FlightRecorder(clock=FakeClock())
        fr.record("supervisor.abandon", worker=0)
        assert fr.dumps == 0 and fr.dump_paths == []
        assert len(fr.log) == 1

    def test_metrics_counters(self, tmp_path):
        reg = obs_metrics.enable(MetricsRegistry())
        fr = FlightRecorder(
            directory=tmp_path, max_events=2, clock=FakeClock()
        )
        for _ in range(3):
            fr.record("noise")
        fr.record("wal.torn_tail", segment="wal-001.seg")
        assert reg.get("flight.events").value == 4
        assert reg.get("flight.dropped").value == 2  # 4 events, ring of 2
        assert reg.get("flight.dumps").value == 1


class TestModuleSingleton:
    def test_record_event_noop_when_disabled(self):
        record_event("supervisor.restart", worker=0)  # must not raise
        assert obs_events.flight() is None

    def test_enable_record_disable(self, tmp_path):
        fr = enable_flight(tmp_path)
        assert obs_events.flight() is fr
        record_event("chaos.storage_fault", store_id=2)
        assert len(fr.log) == 1
        assert fr.dumps == 1
        disable_flight()
        assert obs_events.flight() is None

    def test_enable_rejects_non_recorder(self):
        with pytest.raises(InvalidParameterError):
            enable_flight(instance=object())
