"""Disabled-path overhead guard (ISSUE acceptance criterion).

The instrumented hot paths must cost within 5% of the pre-instrumentation
code when collection is disabled.  The baseline is captured *in this
test*: ``_BaselineGKArray`` overrides ``_flush`` with the exact pre-PR
body (no span wrapper, no recorder calls), so both variants run in the
same process, same interpreter state, same data — the only difference is
the instrumentation.  Best-of-N interleaved timing plus a small absolute
slack keeps the comparison robust to scheduler noise.
"""

import time
from typing import List

import numpy as np
import pytest

from repro.cash_register.gk_array import GKArray
from repro.obs import metrics as obs_metrics

N_ELEMENTS = 100_000
ROUNDS = 5
REL_TOLERANCE = 1.05
ABS_SLACK_S = 0.02


class _BaselineGKArray(GKArray):
    """GKArray with the pre-instrumentation flush body."""

    def _flush(self) -> None:
        budget = self._budget()
        self._buffer.sort()
        values, gs, deltas = self._values, self._gs, self._deltas
        new_values: List = []
        new_gs: List[int] = []
        new_deltas: List[int] = []

        def emit(value, g: int, delta: int) -> None:
            if len(new_values) >= 2 and new_gs[-1] + g + delta <= budget:
                g += new_gs.pop()
                new_values.pop()
                new_deltas.pop()
            new_values.append(value)
            new_gs.append(g)
            new_deltas.append(delta)

        i = 0
        buf = self._buffer
        m = len(buf)
        for j, v_l in enumerate(values):
            while i < m and buf[i] < v_l:
                delta = gs[j] + deltas[j] - 1
                if not new_values and i == 0:
                    delta = 0
                emit(buf[i], 1, delta)
                i += 1
            emit(v_l, gs[j], deltas[j])
        while i < m:
            emit(buf[i], 1, 0)
            i += 1

        self._values = new_values
        self._gs = new_gs
        self._deltas = new_deltas
        self._buffer = []


def _feed_seconds(cls, data) -> float:
    sketch = cls(eps=0.01)
    start = time.perf_counter()
    sketch.extend(data)
    return time.perf_counter() - start, sketch


def test_instrumented_matches_baseline_results():
    """Sanity first: instrumentation must not change the summary."""
    rng = np.random.default_rng(7)
    data = rng.integers(0, 1 << 20, size=20_000).tolist()
    _, inst = _feed_seconds(GKArray, data)
    _, base = _feed_seconds(_BaselineGKArray, data)
    phis = [0.01, 0.25, 0.5, 0.75, 0.99]
    assert inst.quantiles(phis) == base.quantiles(phis)
    assert inst._values == base._values
    assert inst._gs == base._gs
    assert inst._deltas == base._deltas


def test_disabled_overhead_within_five_percent():
    assert not obs_metrics.recorder().enabled, (
        "overhead guard must run with collection disabled"
    )
    rng = np.random.default_rng(11)
    data = rng.integers(0, 1 << 20, size=N_ELEMENTS).tolist()

    # Warm up both paths (JIT-free, but populates caches/allocator).
    _feed_seconds(GKArray, data[:5000])
    _feed_seconds(_BaselineGKArray, data[:5000])

    inst_times = []
    base_times = []
    for _ in range(ROUNDS):  # interleaved so drift hits both equally
        t, _sk = _feed_seconds(GKArray, data)
        inst_times.append(t)
        t, _sk = _feed_seconds(_BaselineGKArray, data)
        base_times.append(t)

    inst_best = min(inst_times)
    base_best = min(base_times)
    assert inst_best <= base_best * REL_TOLERANCE + ABS_SLACK_S, (
        f"disabled instrumentation overhead too high: "
        f"instrumented={inst_best:.4f}s baseline={base_best:.4f}s "
        f"(+{100 * (inst_best / base_best - 1):.1f}%)"
    )


def test_null_recorder_calls_are_cheap():
    """The guard on ``rec.enabled`` plus the null recorder itself must be
    sub-microsecond per call site."""
    rec = obs_metrics.recorder()
    loops = 100_000
    start = time.perf_counter()
    for _ in range(loops):
        if rec.enabled:
            rec.inc("never", 1)
    elapsed = time.perf_counter() - start
    assert elapsed / loops < 1e-6


def test_server_enabled_overhead_within_five_percent():
    """A running telemetry server (background thread, scraped mid-feed)
    must cost within 5% of plain collection on the ingest hot path."""
    import urllib.request

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.server import TelemetryServer

    rng = np.random.default_rng(19)
    data = rng.integers(0, 1 << 20, size=N_ELEMENTS).tolist()
    _feed_seconds(GKArray, data[:5000])  # warm-up

    plain_times = []
    served_times = []
    for _ in range(ROUNDS):
        with obs_metrics.collecting():
            t, _sk = _feed_seconds(GKArray, data)
        plain_times.append(t)
        obs_metrics.enable(MetricsRegistry())
        try:
            with TelemetryServer() as server:
                urllib.request.urlopen(server.url("/metrics"), timeout=5)
                t, _sk = _feed_seconds(GKArray, data)
            served_times.append(t)
        finally:
            obs_metrics.disable()

    plain_best = min(plain_times)
    served_best = min(served_times)
    assert served_best <= plain_best * REL_TOLERANCE + ABS_SLACK_S, (
        f"telemetry server overhead too high: "
        f"served={served_best:.4f}s plain={plain_best:.4f}s "
        f"(+{100 * (served_best / plain_best - 1):.1f}%)"
    )


def test_hashplan_lock_overhead_within_five_percent():
    """The plane cache's LRU mutex sits on the warm turnstile ingest
    path (two locked lookups per batch); it must stay within the same
    ≤5% gate the disabled-metrics path is held to.  Baseline: identical
    plane-gather kernel with the planes pinned on the instance, so the
    only difference is the locked OrderedDict lookup."""
    from repro.sketches import hashplan
    from repro.sketches.countsketch import CountSketch

    assert not obs_metrics.recorder().enabled, (
        "overhead guard must run with collection disabled"
    )

    class _PinnedPlaneCountSketch(CountSketch):
        """Planes held on the instance: no cache, no lock (test-only —
        the real sketches must stay plane-free for snapshot hygiene)."""

        def _planes(self):
            if not hasattr(self, "_pinned"):
                self._pinned = super()._planes()
            return self._pinned

    universe = 1 << 12
    rng = np.random.default_rng(23)
    batches = [
        rng.integers(0, universe, size=16_384) for _ in range(20)
    ]

    def feed_seconds(cls) -> float:
        sketch = cls(width=400, depth=7, seed=5, universe=universe)
        sketch.update_batch(batches[0])  # materialize the planes
        start = time.perf_counter()
        for batch in batches:
            sketch.update_batch(batch)
        return time.perf_counter() - start

    hashplan.configure(hashplan.DEFAULT_CACHE_BYTES)
    feed_seconds(CountSketch)  # warm-up
    feed_seconds(_PinnedPlaneCountSketch)
    locked_times = []
    pinned_times = []
    for _ in range(ROUNDS):  # interleaved so drift hits both equally
        locked_times.append(feed_seconds(CountSketch))
        pinned_times.append(feed_seconds(_PinnedPlaneCountSketch))

    locked_best = min(locked_times)
    pinned_best = min(pinned_times)
    assert locked_best <= pinned_best * REL_TOLERANCE + ABS_SLACK_S, (
        f"hashplan LRU lock overhead too high: "
        f"locked={locked_best:.4f}s pinned={pinned_best:.4f}s "
        f"(+{100 * (locked_best / pinned_best - 1):.1f}%)"
    )


@pytest.mark.parametrize("phi", [0.25, 0.5, 0.9])
def test_enabled_collection_does_not_change_answers(phi):
    rng = np.random.default_rng(3)
    data = rng.integers(0, 1 << 16, size=10_000).tolist()
    _, plain = _feed_seconds(GKArray, data)
    with obs_metrics.collecting():
        _, collected = _feed_seconds(GKArray, data)
    assert plain.query(phi) == collected.query(phi)
