"""Telemetry server endpoints, Prometheus text conformance, healthz."""

import json
import math
import re
import urllib.error
import urllib.request

import pytest

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import FlightRecorder
from repro.obs.export import _escape_label_value, to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import TelemetryServer
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _isolated_singletons():
    previous_rec = obs_metrics._recorder
    previous_tracer = obs_trace._tracer
    previous_flight = obs_events._flight
    obs_metrics.disable()
    obs_trace.disable_tracing()
    obs_events.disable_flight()
    yield
    obs_metrics._recorder = previous_rec
    obs_trace._tracer = previous_tracer
    obs_events._flight = previous_flight


def _get(server, path):
    try:
        response = urllib.request.urlopen(server.url(path), timeout=10)
        return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def _loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("parallel.chunks", 7, algo="kll")
    hist = reg.histogram("parallel.ingest_ns", algo="kll")
    for v in (1.0, 3.0, 1e6):
        hist.observe(v)
    summary = reg.summary("latency.chunk_update_ns")
    for v in range(100):
        summary.observe(float(v))
    return reg


#: One sample line: name{labels} value  (labels optional).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)


def _parse_prometheus(text):
    """Parse the exposition into {(name, labels-str): float}; raises on
    any malformed line — the conformance check."""
    samples = {}
    types = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"malformed sample line: {line!r}"
        value = match.group("value")
        parsed = (
            math.inf if value == "+Inf" else float(value)
        )
        samples[(match.group("name"), match.group("labels") or "")] = parsed
    return types, samples


class TestMetricsEndpoint:
    def test_prometheus_text_parses(self):
        with TelemetryServer(registry=_loaded_registry()) as server:
            status, body = _get(server, "/metrics")
        assert status == 200
        types, samples = _parse_prometheus(body)
        assert types["repro_parallel_chunks"] == "counter"
        assert types["repro_parallel_ingest_ns"] == "histogram"
        assert types["repro_latency_chunk_update_ns"] == "summary"
        assert samples[("repro_parallel_chunks", 'algo="kll"')] == 7.0

    def test_histogram_buckets_cumulative_with_inf(self):
        with TelemetryServer(registry=_loaded_registry()) as server:
            _, body = _get(server, "/metrics")
        _, samples = _parse_prometheus(body)
        buckets = [
            (labels, value)
            for (name, labels), value in samples.items()
            if name == "repro_parallel_ingest_ns_bucket"
        ]
        assert buckets, "expected _bucket series"
        counts = [value for _, value in buckets]
        assert counts == sorted(counts), "le buckets must be cumulative"
        inf_bucket = [v for lbl, v in buckets if 'le="+Inf"' in lbl]
        assert inf_bucket == [3.0]
        assert samples[
            ("repro_parallel_ingest_ns_count", 'algo="kll"')
        ] == 3.0
        assert samples[
            ("repro_parallel_ingest_ns_sum", 'algo="kll"')
        ] == pytest.approx(1000004.0)

    def test_summary_quantiles_and_count(self):
        with TelemetryServer(registry=_loaded_registry()) as server:
            _, body = _get(server, "/metrics")
        _, samples = _parse_prometheus(body)
        p50 = samples[
            ("repro_latency_chunk_update_ns", 'quantile="0.5"')
        ]
        assert 40.0 <= p50 <= 60.0
        assert samples[("repro_latency_chunk_update_ns_count", "")] == 100.0

    def test_serves_live_process_recorder(self):
        reg = obs_metrics.enable(MetricsRegistry())
        with TelemetryServer() as server:
            reg.inc("parallel.chunks", 5, algo="kll")
            _, body = _get(server, "/metrics")
        assert 'repro_parallel_chunks{algo="kll"} 5' in body

    def test_request_counter_and_latency_recorded(self):
        reg = obs_metrics.enable(MetricsRegistry())
        with TelemetryServer() as server:
            _get(server, "/metrics")
            _get(server, "/metrics")
        counter = reg.get(
            "telemetry.server.requests", endpoint="/metrics"
        )
        assert counter is not None and counter.value == 2
        summary = reg.get("latency.telemetry.request_ns")
        assert summary is not None and summary.count == 2


class TestLabelEscaping:
    def test_escape_rules(self):
        assert _escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert _escape_label_value("a\\b") == "a\\\\b"
        assert _escape_label_value("two\nlines") == "two\\nlines"

    def test_exposition_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("parallel.chunks", 1, algo='we"ird\\name\nx')
        text = to_prometheus(reg)
        (sample_line,) = [
            line for line in text.splitlines()
            if not line.startswith("#")
        ]
        # One physical line, quotes balanced, escapes in place.
        assert "\n" not in sample_line
        assert 'algo="we\\"ird\\\\name\\nx"' in sample_line


class TestHealthz:
    def test_healthy(self):
        reg = MetricsRegistry()
        reg.set("telemetry.engine.up", 1)
        reg.set("telemetry.shard.alive", 1, worker=0)
        reg.set("telemetry.shard.restarts_remaining", 2, worker=0)
        reg.set("telemetry.shard.high_water_seq", 41, worker=0)
        with TelemetryServer(registry=reg) as server:
            status, body = _get(server, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["engine"]["up"] == 1
        assert payload["shards"]["0"]["alive"] == 1
        assert payload["wal_high_water_seq"] == 41

    def test_abandoned_shard_degrades_to_503(self):
        reg = MetricsRegistry()
        reg.set("telemetry.shard.alive", 0, worker=1)
        reg.set("telemetry.shard.abandoned", 1, worker=1)
        reg.set("telemetry.shard.restarts_remaining", 0, worker=1)
        with TelemetryServer(registry=reg) as server:
            status, body = _get(server, "/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["abandoned"] == ["1"]


class TestOtherEndpoints:
    def test_snapshot_json(self):
        with TelemetryServer(registry=_loaded_registry()) as server:
            status, body = _get(server, "/snapshot")
        assert status == 200
        names = {m["name"] for m in json.loads(body)["metrics"]}
        assert "parallel.chunks" in names

    def test_tracez(self):
        tracer = Tracer()
        with tracer.span("evaluation.run", {"algo": "KLL"}):
            pass
        with TelemetryServer(tracer=tracer) as server:
            status, body = _get(server, "/tracez")
        assert status == 200
        payload = json.loads(body)
        assert payload["tracing"] is True
        assert payload["spans"][0]["name"] == "evaluation.run"

    def test_tracez_without_tracer(self):
        with TelemetryServer() as server:
            status, body = _get(server, "/tracez")
        assert status == 200
        assert json.loads(body)["tracing"] is False

    def test_flight_endpoint(self):
        flight = FlightRecorder()
        flight.record("supervisor.restart", worker=2)
        with TelemetryServer(flight=flight) as server:
            status, body = _get(server, "/flight")
        assert status == 200
        payload = json.loads(body)
        assert payload["recording"] is True
        assert payload["events"][0]["kind"] == "supervisor.restart"

    def test_timeline_endpoint(self):
        tracer = Tracer()
        with tracer.span("evaluation.run", {}):
            pass
        with TelemetryServer(tracer=tracer) as server:
            status, body = _get(server, "/timeline")
        assert status == 200
        doc = json.loads(body)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_unknown_path_404(self):
        with TelemetryServer() as server:
            status, body = _get(server, "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["endpoints"]


class TestLifecycle:
    def test_port_zero_binds_free_port(self):
        server = TelemetryServer(port=0)
        assert server.port == 0
        with server:
            assert server.port > 0
            first = server.port
            # idempotent start
            assert server.start().port == first

    def test_stop_releases(self):
        server = TelemetryServer().start()
        url = server.url("/metrics")
        server.stop()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url, timeout=2)

    def test_server_up_gauge(self):
        reg = obs_metrics.enable(MetricsRegistry())
        server = TelemetryServer().start()
        assert reg.get("telemetry.server.up").value == 1
        server.stop()
        assert reg.get("telemetry.server.up").value == 0

    def test_rejects_bad_port(self):
        from repro.core.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            TelemetryServer(port=70000)
