"""Tests for tracing spans: nesting, JSONL export, bounded buffers."""

import json

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer, _NULL_SPAN, span


class FakeClock:
    """Deterministic nanosecond clock advancing a fixed step per call."""

    def __init__(self, step: int = 10) -> None:
        self.now = 0
        self.step = step

    def __call__(self) -> int:
        self.now += self.step
        return self.now


@pytest.fixture(autouse=True)
def _no_global_tracer():
    previous = obs_trace._tracer
    obs_trace.disable_tracing()
    yield
    obs_trace._tracer = previous


def test_disabled_span_is_shared_noop():
    s = span("anything", algo="x")
    assert s is _NULL_SPAN
    with s:
        pass  # must not raise


def test_span_records_event():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("work", {"algo": "x"}):
        pass
    assert len(tracer.events) == 1
    event = tracer.events[0]
    assert event["name"] == "work"
    assert event["labels"] == {"algo": "x"}
    assert event["duration_ns"] == 10
    assert event["depth"] == 0
    assert event["start_ns"] >= 0


def test_nested_spans_track_depth():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer", {}):
        with tracer.span("inner", {}):
            pass
    # Inner completes (and records) first, at depth 1.
    names = [(e["name"], e["depth"]) for e in tracer.events]
    assert names == [("inner", 1), ("outer", 0)]


def test_module_level_span_uses_installed_tracer():
    tracer = obs_trace.enable_tracing(Tracer(clock=FakeClock()))
    with span("gk.compress", algo="gk_array"):
        pass
    assert tracer.events[0]["name"] == "gk.compress"
    obs_trace.disable_tracing()
    with span("after"):
        pass
    assert len(tracer.events) == 1


def test_bounded_buffer_counts_drops():
    tracer = Tracer(max_events=2, clock=FakeClock())
    for i in range(5):
        with tracer.span(f"s{i}", {}):
            pass
    assert len(tracer.events) == 2
    assert tracer.dropped == 3


def test_jsonl_roundtrip(tmp_path):
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a", {"k": 1}):
        pass
    with tracer.span("b", {}):
        pass
    lines = tracer.to_jsonl().splitlines()
    assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
    path = tmp_path / "trace.jsonl"
    assert tracer.write(path) == 2
    on_disk = path.read_text().splitlines()
    assert len(on_disk) == 2
    assert json.loads(on_disk[0])["labels"] == {"k": 1}


def test_write_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert Tracer().write(path) == 0
    assert path.read_text() == ""


def test_span_records_on_exception():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(ValueError):
        with tracer.span("boom", {}):
            raise ValueError("x")
    assert tracer.events[0]["name"] == "boom"
    assert tracer._depth == 0


def test_validation():
    with pytest.raises(InvalidParameterError):
        Tracer(max_events=0)
    with pytest.raises(InvalidParameterError):
        obs_trace.enable_tracing(object())
