"""Tests for tracing spans: nesting, JSONL export, bounded buffers."""

import json

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer, _NULL_SPAN, span


class FakeClock:
    """Deterministic nanosecond clock advancing a fixed step per call."""

    def __init__(self, step: int = 10) -> None:
        self.now = 0
        self.step = step

    def __call__(self) -> int:
        self.now += self.step
        return self.now


@pytest.fixture(autouse=True)
def _no_global_tracer():
    previous = obs_trace._tracer
    obs_trace.disable_tracing()
    yield
    obs_trace._tracer = previous


def test_disabled_span_is_shared_noop():
    s = span("anything", algo="x")
    assert s is _NULL_SPAN
    with s:
        pass  # must not raise


def test_span_records_event():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("work", {"algo": "x"}):
        pass
    assert len(tracer.events) == 1
    event = tracer.events[0]
    assert event["name"] == "work"
    assert event["labels"] == {"algo": "x"}
    assert event["duration_ns"] == 10
    assert event["depth"] == 0
    assert event["start_ns"] >= 0


def test_nested_spans_track_depth():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer", {}):
        with tracer.span("inner", {}):
            pass
    # Inner completes (and records) first, at depth 1.
    names = [(e["name"], e["depth"]) for e in tracer.events]
    assert names == [("inner", 1), ("outer", 0)]


def test_module_level_span_uses_installed_tracer():
    tracer = obs_trace.enable_tracing(Tracer(clock=FakeClock()))
    with span("gk.compress", algo="gk_array"):
        pass
    assert tracer.events[0]["name"] == "gk.compress"
    obs_trace.disable_tracing()
    with span("after"):
        pass
    assert len(tracer.events) == 1


def test_bounded_buffer_counts_drops():
    tracer = Tracer(max_events=2, clock=FakeClock())
    for i in range(5):
        with tracer.span(f"s{i}", {}):
            pass
    assert len(tracer.events) == 2
    assert tracer.dropped == 3


def test_jsonl_roundtrip(tmp_path):
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a", {"k": 1}):
        pass
    with tracer.span("b", {}):
        pass
    lines = tracer.to_jsonl().splitlines()
    assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
    path = tmp_path / "trace.jsonl"
    assert tracer.write(path) == 2
    on_disk = path.read_text().splitlines()
    assert len(on_disk) == 2
    assert json.loads(on_disk[0])["labels"] == {"k": 1}


def test_write_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert Tracer().write(path) == 0
    assert path.read_text() == ""


def test_span_records_on_exception():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(ValueError):
        with tracer.span("boom", {}):
            raise ValueError("x")
    assert tracer.events[0]["name"] == "boom"
    assert tracer._depth == 0


def test_validation():
    with pytest.raises(InvalidParameterError):
        Tracer(max_events=0)
    with pytest.raises(InvalidParameterError):
        obs_trace.enable_tracing(object())


def test_dropped_trailer_in_jsonl(tmp_path):
    tracer = Tracer(max_events=1, clock=FakeClock())
    for i in range(3):
        with tracer.span(f"s{i}", {}):
            pass
    lines = tracer.to_jsonl().splitlines()
    assert len(lines) == 2  # one event + the trailer
    trailer = json.loads(lines[-1])
    assert trailer == {"meta": "dropped_spans", "dropped": 2}
    path = tmp_path / "trace.jsonl"
    assert tracer.write(path) == 1  # trailer is not an event
    assert json.loads(path.read_text().splitlines()[-1])["dropped"] == 2


def test_complete_trace_has_no_trailer():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a", {}):
        pass
    lines = tracer.to_jsonl().splitlines()
    assert len(lines) == 1
    assert "meta" not in json.loads(lines[0])


def test_export_batch_carries_anchors():
    tracer = Tracer(max_events=1, clock=FakeClock())
    with tracer.span("a", {}):
        pass
    with tracer.span("b", {}):
        pass
    batch = tracer.export_batch()
    assert batch["origin_unix_ns"] == tracer.origin_unix_ns
    assert batch["pid"] == tracer.pid
    assert batch["dropped"] == 1
    assert batch["events"] is tracer.events


def test_ingest_batch_rebases_and_stamps_pid():
    parent = Tracer(clock=FakeClock())
    child = Tracer(clock=FakeClock())
    child.origin_unix_ns = parent.origin_unix_ns + 2_000
    child.pid = parent.pid + 1
    with child.span("chunk", {"n": 4}):
        pass
    offset = child.events[0]["start_ns"]
    parent.ingest(child.export_batch(), worker=3)
    (event,) = parent.events
    assert event["start_ns"] == offset + 2_000
    assert event["pid"] == child.pid
    assert event["labels"] == {"n": 4, "worker": 3}
    # Child events untouched: ingest copies, never mutates the source.
    assert child.events[0]["labels"] == {"n": 4}


def test_ingest_batch_propagates_worker_drops():
    parent = Tracer(clock=FakeClock())
    child = Tracer(max_events=1, clock=FakeClock())
    for i in range(4):
        with child.span(f"s{i}", {}):
            pass
    parent.ingest(child.export_batch(), worker=0)
    assert parent.dropped == 3
    assert "dropped" in json.loads(parent.to_jsonl().splitlines()[-1])


def test_ingest_legacy_bare_list_unshifted():
    parent = Tracer(clock=FakeClock())
    child = Tracer(clock=FakeClock())
    with child.span("old", {}):
        pass
    parent.ingest(child.events, worker=1)
    (event,) = parent.events
    assert event["start_ns"] == child.events[0]["start_ns"]
    assert "pid" not in event
    assert event["labels"]["worker"] == 1
