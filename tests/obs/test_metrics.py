"""Tests for the metrics registry, recorder switching, and exposition."""

import json

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs import metrics as obs_metrics
from repro.obs.export import report, to_json, to_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_RECORDER,
    collecting,
)


@pytest.fixture(autouse=True)
def _isolated_recorder():
    """Every test starts and ends with the null recorder installed."""
    previous = obs_metrics._recorder
    obs_metrics.disable()
    yield
    obs_metrics._recorder = previous


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            Counter("x").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("x")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_histogram_buckets_and_stats(self):
        h = Histogram("x")
        for v in (1, 2, 1000, 3.5):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(1006.5)
        assert h.min == 1
        assert h.max == 1000
        assert sum(h.buckets) == 4
        # 1 lands in the first (<= 2**0) bucket.
        assert h.buckets[0] == 1

    def test_histogram_overflow_bucket(self):
        h = Histogram("x")
        h.observe(float(1 << 50))
        assert h.buckets[-1] == 1

    def test_histogram_quantile_within_range(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(v)
        p50 = h.quantile(0.5)
        assert h.min <= p50 <= h.max
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) <= h.max

    def test_histogram_quantile_empty(self):
        assert Histogram("x").quantile(0.5) == 0.0

    def test_histogram_quantile_validates(self):
        with pytest.raises(InvalidParameterError):
            Histogram("x").quantile(1.5)


class TestRegistry:
    def test_same_name_labels_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("a.b", algo="x")
        b = reg.counter("a.b", algo="x")
        assert a is b

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 1, algo="x")
        reg.inc("a.b", 2, algo="y")
        assert reg.counter("a.b", algo="x").value == 1
        assert reg.counter("a.b", algo="y").value == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("a.b", p=1, q=2)
        b = reg.counter("a.b", q=2, p=1)
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(InvalidParameterError):
            reg.gauge("a.b")

    def test_get_returns_none_when_absent(self):
        assert MetricsRegistry().get("nope") is None

    def test_convenience_oneliners(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set("g", 7)
        reg.observe("h", 2.0)
        assert reg.counter("c").value == 3
        assert reg.gauge("g").value == 7
        assert reg.histogram("h").count == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("c", 2, algo="x")
        reg.observe("h", 4)
        snap = reg.snapshot()
        assert {e["name"] for e in snap} == {"c", "h"}
        by_name = {e["name"]: e for e in snap}
        assert by_name["c"]["value"] == 2
        assert by_name["c"]["labels"] == {"algo": "x"}
        assert by_name["h"]["count"] == 1
        assert by_name["h"]["mean"] == 4.0

    def test_clear_and_len(self):
        reg = MetricsRegistry()
        reg.inc("c")
        assert len(reg) == 1
        reg.clear()
        assert len(reg) == 0


class TestRecorderSwitching:
    def test_default_is_null(self):
        assert obs_metrics.recorder() is NULL_RECORDER
        assert not obs_metrics.recorder().enabled

    def test_null_recorder_is_inert(self):
        NULL_RECORDER.inc("a", 1)
        NULL_RECORDER.set("b", 2)
        NULL_RECORDER.observe("c", 3)
        assert NULL_RECORDER.get("a") is None
        assert NULL_RECORDER.snapshot() == []

    def test_enable_installs_registry(self):
        reg = obs_metrics.enable()
        assert obs_metrics.recorder() is reg
        assert reg.enabled
        obs_metrics.disable()
        assert obs_metrics.recorder() is NULL_RECORDER

    def test_enable_preregisters_defaults(self):
        reg = obs_metrics.enable()
        names = {inst.name for inst in reg.instruments()}
        for _, name in obs_metrics.DEFAULT_INSTRUMENTS:
            assert name in names

    def test_enable_without_preregistration(self):
        reg = obs_metrics.enable(MetricsRegistry(), preregister=False)
        assert len(reg) == 0

    def test_collecting_restores_previous(self):
        with collecting() as reg:
            assert obs_metrics.recorder() is reg
            reg.inc("inside", 1)
        assert obs_metrics.recorder() is NULL_RECORDER
        assert reg.counter("inside").value == 1

    def test_enable_rejects_non_registry(self):
        with pytest.raises(InvalidParameterError):
            obs_metrics.enable(registry=object())


class TestExports:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("cash_register.buffer_flush", 3, algo="GKArray")
        reg.set("distributed.net.sim_clock_s", 1.5)
        reg.observe("evaluation.phase_ns", 1000.0, phase="update")
        return reg

    def test_prometheus_format(self):
        text = to_prometheus(self._populated())
        assert "# TYPE repro_cash_register_buffer_flush counter" in text
        assert 'repro_cash_register_buffer_flush{algo="GKArray"} 3' in text
        assert "# TYPE repro_evaluation_phase_ns histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_evaluation_phase_ns_count" in text
        assert "repro_evaluation_phase_ns_sum" in text

    def test_prometheus_histogram_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("h", 1)
        reg.observe("h", 2)
        reg.observe("h", 4)
        text = to_prometheus(reg)
        # The final bucket line equals the total count.
        assert 'le="+Inf"} 3' in text

    def test_json_roundtrips(self):
        blob = json.dumps(to_json(self._populated()))
        parsed = json.loads(blob)
        assert len(parsed["metrics"]) == 3

    def test_report_groups_by_subsystem(self):
        text = report(self._populated())
        assert "[cash_register]" in text
        assert "[distributed]" in text
        assert "[evaluation]" in text
        assert "counter" in text
        assert "gauge" in text
        assert "histogram" in text
        assert "algo=GKArray" in text
