"""Dogfooded latency summaries: the repo's own KLL sketch measuring the
repo, with the sketch's eps guarantee checked against exact per-op
quantiles."""

import pickle

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.obs import metrics as obs_metrics
from repro.obs.export import to_prometheus
from repro.obs.latency import (
    EXPORT_QUANTILES,
    SUMMARY_EPS,
    Summary,
    rank_of,
    timed,
)
from repro.obs.metrics import MetricsRegistry, absorb_state, export_state


@pytest.fixture(autouse=True)
def _isolated_recorder():
    previous = obs_metrics._recorder
    obs_metrics.disable()
    yield
    obs_metrics._recorder = previous


class TestSummary:
    def test_empty_summary(self):
        s = Summary("latency.chunk_update_ns")
        assert s.count == 0
        assert s.mean == 0.0
        assert s.quantile(0.99) == 0.0

    def test_observe_accumulates(self):
        s = Summary("latency.chunk_update_ns")
        for v in (10.0, 20.0, 30.0):
            s.observe(v)
        assert s.count == 3
        assert s.total == 60.0
        assert s.mean == pytest.approx(20.0)

    def test_quantile_validates(self):
        s = Summary("latency.chunk_update_ns")
        with pytest.raises(InvalidParameterError):
            s.quantile(1.5)

    def test_registry_summary_kind(self):
        reg = MetricsRegistry()
        s = reg.summary("latency.chunk_update_ns", algo="KLL")
        assert s is reg.summary("latency.chunk_update_ns", algo="KLL")
        assert s.kind == "summary"
        with pytest.raises(InvalidParameterError):
            reg.counter("latency.chunk_update_ns", algo="KLL")

    def test_p99_within_sketch_eps_of_exact(self):
        """Acceptance: the dogfooded p99 agrees with the exact per-op
        p99 within the KLL rank-error guarantee."""
        rng = np.random.default_rng(42)
        # Heavy-tailed, like real op latencies.
        values = rng.lognormal(mean=10.0, sigma=2.0, size=20_000)
        s = Summary("latency.chunk_update_ns")
        for v in values:
            s.observe(float(v))
        sorted_values = np.sort(values)
        for q in (0.5, 0.9, 0.99, 0.999):
            estimate = s.quantile(q)
            # Rank-error bound: the estimate's exact rank must be
            # within eps (plus sampling slack) of the requested rank.
            observed_rank = rank_of(sorted_values, estimate)
            assert abs(observed_rank - q) <= 2 * SUMMARY_EPS, (
                f"q={q}: estimate rank {observed_rank} vs {q}"
            )

    def test_export_absorb_merges(self):
        a = Summary("latency.wal_append_ns")
        b = Summary("latency.wal_append_ns")
        for v in range(100):
            a.observe(float(v))
        for v in range(100, 200):
            b.observe(float(v))
        state = pickle.loads(pickle.dumps(b.export()))
        a.absorb(state)
        assert a.count == 200
        assert a.total == pytest.approx(sum(range(200)))
        # Median of the union, not of either half.
        assert 80 <= a.quantile(0.5) <= 120

    def test_registry_state_transfer(self):
        worker = MetricsRegistry()
        worker.summary("latency.ingest_chunk_ns", algo="KLL").observe(5.0)
        parent = MetricsRegistry()
        absorb_state(parent, export_state(worker), worker=1)
        merged = parent.get(
            "latency.ingest_chunk_ns", algo="KLL", worker=1
        )
        assert merged is not None
        assert merged.count == 1

    def test_export_state_skips_idle(self):
        reg = MetricsRegistry()
        reg.summary("latency.wal_append_ns")
        assert export_state(reg) == []


class TestTimed:
    def test_noop_when_disabled(self):
        with timed("latency.wal_append_ns"):
            pass
        assert obs_metrics.recorder() is obs_metrics.NULL_RECORDER

    def test_records_when_enabled(self):
        reg = obs_metrics.enable(MetricsRegistry())
        with timed("latency.wal_append_ns"):
            pass
        s = reg.get("latency.wal_append_ns")
        assert s is not None and s.count == 1
        assert s.quantile(0.5) > 0  # perf_counter_ns ticked


class TestPrometheusSummary:
    def test_summary_exposition(self):
        reg = MetricsRegistry()
        s = reg.summary("latency.chunk_update_ns")
        for v in range(1, 1001):
            s.observe(float(v))
        text = to_prometheus(reg)
        assert "# TYPE repro_latency_chunk_update_ns summary" in text
        for q in EXPORT_QUANTILES:
            assert f'repro_latency_chunk_update_ns{{quantile="{q}"}}' in text
        assert "repro_latency_chunk_update_ns_count 1000" in text
        assert "repro_latency_chunk_update_ns_sum 500500.0" in text

    def test_preregistered_latency_names(self):
        names = {name for _, name in obs_metrics.DEFAULT_INSTRUMENTS}
        for required in (
            "latency.chunk_update_ns",
            "latency.ingest_chunk_ns",
            "latency.wal_append_ns",
            "latency.telemetry.request_ns",
        ):
            assert required in names
        kinds = dict(
            (name, kind) for kind, name in obs_metrics.DEFAULT_INSTRUMENTS
        )
        assert kinds["latency.chunk_update_ns"] == "summary"
