"""Cross-process instrument shipping: export_state / absorb_state and
Tracer.ingest — the bridge the sharded ingest engine uses to carry each
worker's observability back to the parent."""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs.metrics import (
    MetricsRegistry,
    absorb_state,
    export_state,
)
from repro.obs.trace import Tracer


def loaded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("parallel.chunks", 3, algo="kll")
    registry.set("parallel.workers", 4)
    registry.observe("parallel.ingest_ns", 1500.0, algo="kll")
    registry.observe("parallel.ingest_ns", 2500.0, algo="kll")
    return registry


class TestExportState:
    def test_roundtrips_counters_gauges_histograms(self) -> None:
        state = export_state(loaded_registry())
        kinds = {(kind, name) for kind, name, _, _ in state}
        assert kinds == {
            ("counter", "parallel.chunks"),
            ("gauge", "parallel.workers"),
            ("histogram", "parallel.ingest_ns"),
        }

    def test_skips_idle_instruments(self) -> None:
        registry = MetricsRegistry()
        registry.counter("parallel.chunks", algo="kll")  # never inc'd
        registry.inc("parallel.elements", 1)
        names = [name for _, name, _, _ in export_state(registry)]
        assert names == ["parallel.elements"]

    def test_state_is_picklable(self) -> None:
        state = export_state(loaded_registry())
        assert pickle.loads(pickle.dumps(state)) == state


class TestAbsorbState:
    def test_extra_labels_tag_every_series(self) -> None:
        parent = MetricsRegistry()
        absorb_state(parent, export_state(loaded_registry()), worker=2)
        entry = parent.get("parallel.chunks", algo="kll", worker=2)
        assert entry is not None and entry.value == 3

    def test_counters_add_and_gauges_overwrite(self) -> None:
        parent = MetricsRegistry()
        for _ in range(2):
            absorb_state(parent, export_state(loaded_registry()), worker=0)
        assert parent.get(
            "parallel.chunks", algo="kll", worker=0
        ).value == 6
        assert parent.get("parallel.workers", worker=0).value == 4

    def test_histograms_merge_counts_totals_and_extremes(self) -> None:
        parent = MetricsRegistry()
        parent.observe("parallel.ingest_ns", 99.0, algo="kll", worker=1)
        absorb_state(parent, export_state(loaded_registry()), worker=1)
        hist = parent.get("parallel.ingest_ns", algo="kll", worker=1)
        assert hist.count == 3
        assert hist.total == pytest.approx(99.0 + 1500.0 + 2500.0)
        assert hist.min == pytest.approx(99.0)
        assert hist.max == pytest.approx(2500.0)

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            absorb_state(
                MetricsRegistry(), [("dial", "x", {}, (1,))]
            )


class TestTracerIngest:
    def worker_events(self) -> list:
        worker = Tracer()
        with worker.span("parallel.ingest_chunk", {"algo": "kll", "n": 10}):
            pass
        with worker.span("parallel.ingest_chunk", {"algo": "kll", "n": 7}):
            pass
        return worker.events

    def test_events_appended_with_extra_labels(self) -> None:
        parent = Tracer()
        with parent.span("parallel.merge_tree"):
            pass
        parent.ingest(self.worker_events(), worker=3)
        assert len(parent.events) == 3
        shipped = [
            e for e in parent.events if e["labels"].get("worker") == 3
        ]
        assert len(shipped) == 2
        assert all(e["name"] == "parallel.ingest_chunk" for e in shipped)
        assert all(e["duration_ns"] >= 0 for e in shipped)

    def test_source_events_not_mutated(self) -> None:
        events = self.worker_events()
        Tracer().ingest(events, worker=1)
        assert all("worker" not in e["labels"] for e in events)

    def test_max_events_bound_counts_dropped(self) -> None:
        parent = Tracer(max_events=1)
        parent.ingest(self.worker_events(), worker=0)
        assert len(parent.events) == 1
        assert parent.dropped == 1
