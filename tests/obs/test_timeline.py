"""Chrome-trace export: one timeline, distinct worker rows, anchored
cross-process alignment."""

import json

import pytest

from repro.obs.timeline import MAIN_TID, to_chrome_trace, write_chrome_trace
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self, step: int = 10) -> None:
        self.now = 0
        self.step = step

    def __call__(self) -> int:
        self.now += self.step
        return self.now


def _complete_events(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "X"]


def _metadata(doc, name):
    return [e for e in doc["traceEvents"] if e["ph"] == "M" and e["name"] == name]


class TestChromeTrace:
    def test_parent_spans_on_main_row(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("evaluation.run", {"algo": "KLL"}):
            pass
        doc = to_chrome_trace(tracer)
        (event,) = _complete_events(doc)
        assert event["tid"] == MAIN_TID
        assert event["pid"] == tracer.pid
        assert event["name"] == "evaluation.run"
        assert event["cat"] == "evaluation"
        assert event["args"]["algo"] == "KLL"
        assert event["dur"] > 0

    def test_workers_get_distinct_tids(self):
        parent = Tracer(clock=FakeClock())
        for worker_id in (0, 1):
            child = Tracer(clock=FakeClock())
            with child.span("parallel.ingest_chunk", {"n": 100}):
                pass
            parent.ingest(child.export_batch(), worker=worker_id)
        doc = to_chrome_trace(parent)
        tids = sorted(e["tid"] for e in _complete_events(doc))
        assert tids == [1, 2]  # worker 0 -> tid 1, worker 1 -> tid 2
        rows = {
            (m["tid"], m["args"]["name"])
            for m in _metadata(doc, "thread_name")
        }
        assert (1, "worker 0") in rows
        assert (2, "worker 1") in rows

    def test_anchor_alignment(self):
        """A worker batch's offsets are re-based onto the parent's
        wall-clock origin, so spans land at the right absolute spot."""
        parent = Tracer(clock=FakeClock())
        child = Tracer(clock=FakeClock())
        # Simulate the worker starting 5 ms after the parent.
        child.origin_unix_ns = parent.origin_unix_ns + 5_000_000
        with child.span("parallel.ingest_chunk", {}):
            pass
        child_offset_ns = child.events[0]["start_ns"]
        parent.ingest(child.export_batch(), worker=0)
        shifted = parent.events[0]["start_ns"]
        assert shifted == child_offset_ns + 5_000_000
        doc = to_chrome_trace(parent)
        (event,) = _complete_events(doc)
        assert event["ts"] == pytest.approx(shifted / 1000.0)

    def test_worker_pid_names_second_process(self):
        parent = Tracer(clock=FakeClock())
        child = Tracer(clock=FakeClock())
        child.pid = parent.pid + 17  # pretend it forked
        with child.span("parallel.ingest_chunk", {}):
            pass
        parent.ingest(child.export_batch(), worker=0)
        with parent.span("parallel.merge_tree", {}):
            pass
        doc = to_chrome_trace(parent)
        names = {
            m["pid"]: m["args"]["name"]
            for m in _metadata(doc, "process_name")
        }
        assert names[parent.pid] == "repro"
        assert names[child.pid] == "repro worker"

    def test_dropped_spans_recorded(self):
        tracer = Tracer(max_events=1, clock=FakeClock())
        with tracer.span("a", {}):
            pass
        with tracer.span("b", {}):
            pass
        doc = to_chrome_trace(tracer)
        assert doc["otherData"]["dropped_spans"] == 1

    def test_write_file_is_valid_json(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("evaluation.run", {}):
            pass
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, path)
        assert count == 1
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_non_integer_worker_label_is_stable(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x", {"worker": "site-a"}):
            pass
        with tracer.span("y", {"worker": "site-a"}):
            pass
        doc = to_chrome_trace(tracer)
        tids = {e["tid"] for e in _complete_events(doc)}
        assert len(tids) == 1  # same label, same row
        assert tids != {MAIN_TID}
