"""Tests for the exact baseline, the registry, and the base protocols."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import algorithms, get_algorithm, make_sketch
from repro.core import (
    EmptySummaryError,
    ExactQuantiles,
    InvalidParameterError,
    NegativeFrequencyError,
    QuantileSketch,
    WORD_BYTES,
    validate_eps,
    validate_phi,
    validate_universe_log2,
)
from repro.core.registry import register


class TestExactQuantiles:
    def test_median_of_known_data(self) -> None:
        exact = ExactQuantiles([5, 1, 3, 2, 4])
        assert exact.query(0.5) == 3
        assert exact.query(0.0) == 1
        assert exact.query(1.0) == 5

    def test_rank_and_interval(self) -> None:
        exact = ExactQuantiles([1, 2, 2, 2, 5])
        assert exact.rank(2) == 1
        assert exact.rank_interval(2) == (1, 4)
        assert exact.rank_interval(3) == (4, 4)
        assert exact.rank(0) == 0
        assert exact.rank(99) == 5

    def test_delete(self) -> None:
        exact = ExactQuantiles([1, 2, 3])
        exact.delete(2)
        assert exact.values() == [1, 3]
        assert exact.n == 2
        with pytest.raises(NegativeFrequencyError):
            exact.delete(2)

    def test_lazy_sort_interleaving(self, rng) -> None:
        exact = ExactQuantiles()
        data = rng.integers(0, 100, size=500).tolist()
        for i, x in enumerate(data):
            exact.update(x)
            if i % 37 == 0:
                exact.rank(50)  # forces a flush mid-stream
        assert exact.n == 500
        assert list(exact.values()) == sorted(data)

    def test_empty_query(self) -> None:
        with pytest.raises(EmptySummaryError):
            ExactQuantiles().query(0.5)

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=200))
    def test_matches_numpy_percentiles(self, data) -> None:
        exact = ExactQuantiles(data)
        arr = np.sort(np.asarray(data))
        for phi in (0.1, 0.5, 0.9):
            idx = min(len(arr) - 1, int(phi * len(arr)))
            assert exact.query(phi) == arr[idx]

    def test_len_and_size(self) -> None:
        exact = ExactQuantiles([1, 2, 3])
        assert len(exact) == 3
        assert exact.size_bytes() == 3 * WORD_BYTES

    def test_cdf_points(self) -> None:
        exact = ExactQuantiles(list(range(100)))
        points = exact.cdf_points(3)
        assert len(points) == 3
        assert points[0] < points[1] < points[2]
        with pytest.raises(InvalidParameterError):
            exact.cdf_points(0)


class TestRegistry:
    def test_all_expected_algorithms_registered(self) -> None:
        expected = {
            "dcm", "dcs", "gk_adaptive", "gk_array", "gk_theory",
            "mrl99", "post", "qdigest", "random", "reservoir", "rss",
        }
        assert expected <= set(algorithms())

    def test_make_sketch_case_insensitive(self) -> None:
        assert make_sketch("GK_ARRAY", eps=0.1).name == "GKArray"

    def test_unknown_name_lists_known(self) -> None:
        with pytest.raises(InvalidParameterError) as exc:
            get_algorithm("bogus")
        assert "gk_array" in str(exc.value)

    def test_double_registration_rejected(self) -> None:
        @register("test_dummy_algo")
        class Dummy:  # noqa: D401 - test fixture
            pass

        with pytest.raises(InvalidParameterError):
            @register("test_dummy_algo")
            class Dummy2:
                pass

    def test_every_registered_algorithm_roundtrips(self, rng) -> None:
        """Smoke: every algorithm can ingest a stream and answer."""
        data = rng.integers(0, 1 << 10, size=400, dtype=np.int64)
        for name in algorithms():
            if name == "test_dummy_algo":
                continue
            kwargs = {}
            cls = get_algorithm(name)
            import inspect

            sig = inspect.signature(cls.__init__).parameters
            if "universe_log2" in sig:
                kwargs["universe_log2"] = 10
            if "seed" in sig:
                kwargs["seed"] = 0
            if name == "rss":
                kwargs["reps"] = 16
            sk = cls(eps=0.1, **kwargs)
            sk.extend(data.tolist())
            answer = sk.query(0.5)
            assert 0 <= answer < (1 << 10)


class TestValidation:
    def test_validate_eps(self) -> None:
        assert validate_eps(0.5) == 0.5
        for bad in (0.0, 1.0, -1, 2):
            with pytest.raises(InvalidParameterError):
                validate_eps(bad)

    def test_validate_phi(self) -> None:
        assert validate_phi(0.0) == 0.0
        assert validate_phi(1.0) == 1.0
        for bad in (-0.01, 1.01):
            with pytest.raises(InvalidParameterError):
                validate_phi(bad)

    def test_validate_universe_log2(self) -> None:
        assert validate_universe_log2(32) == 32
        for bad in (0, 65, 2.5, True, "8"):
            with pytest.raises(InvalidParameterError):
                validate_universe_log2(bad)


class TestProtocolDefaults:
    def test_extend_default_loops(self) -> None:
        calls = []

        class Minimal(QuantileSketch):
            name = "Minimal"

            @property
            def n(self):
                return len(calls)

            def update(self, value):
                calls.append(value)

            def rank(self, value):
                return 0.0

            def query(self, phi):
                self._require_nonempty()
                return calls[0]

            def size_words(self):
                return len(calls)

        m = Minimal()
        m.extend([1, 2, 3])
        assert calls == [1, 2, 3]
        assert m.quantiles([0.5, 0.9]) == [1, 1]
        assert repr(m)
