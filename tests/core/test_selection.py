"""Tests for the classical selection substrate (BFPRT and Munro–Paterson)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import EmptySummaryError, InvalidParameterError
from repro.core.selection import (
    MunroPaterson,
    exact_median_passes,
    select,
)


class TestLinearSelect:
    @given(
        data=st.lists(st.integers(-100, 100), min_size=1, max_size=200),
        seed=st.integers(0, 10_000),
    )
    def test_matches_sorted(self, data, seed) -> None:
        k = seed % len(data)
        assert select(data, k) == sorted(data)[k]

    def test_all_duplicates(self) -> None:
        assert select([7] * 50, 25) == 7

    def test_bounds_checked(self) -> None:
        with pytest.raises(InvalidParameterError):
            select([1, 2, 3], 3)
        with pytest.raises(InvalidParameterError):
            select([1, 2, 3], -1)

    def test_median_of_large_array(self, rng) -> None:
        data = rng.integers(0, 1 << 30, size=50_001).tolist()
        assert select(data, 25_000) == sorted(data)[25_000]

    def test_floats_and_negatives(self, rng) -> None:
        data = rng.normal(0, 10, size=999).tolist()
        for k in (0, 499, 998):
            assert select(data, k) == sorted(data)[k]


class TestMunroPaterson:
    def _factory(self, data):
        return lambda: iter(data)

    @pytest.mark.parametrize("memory", [8, 32, 256])
    def test_exact_median(self, memory, rng) -> None:
        data = rng.integers(0, 1 << 20, size=20_001, dtype=np.int64).tolist()
        mp = MunroPaterson(self._factory(data), memory=memory)
        k = len(data) // 2
        assert mp.select(k) == sorted(data)[k]

    @pytest.mark.parametrize("k_frac", [0.0, 0.1, 0.5, 0.9, 0.999])
    def test_arbitrary_ranks(self, k_frac, rng) -> None:
        data = rng.integers(0, 1000, size=5_000, dtype=np.int64).tolist()
        mp = MunroPaterson(self._factory(data), memory=16)
        k = min(len(data) - 1, int(k_frac * len(data)))
        assert mp.select(k) == sorted(data)[k]

    def test_duplicate_heavy(self, rng) -> None:
        """Streams with huge duplicate runs exercise the candidate-hit
        path in the narrowing pass."""
        data = rng.integers(0, 4, size=10_000, dtype=np.int64).tolist()
        mp = MunroPaterson(self._factory(data), memory=8)
        for k in (0, 2_500, 5_000, 9_999):
            assert mp.select(k) == sorted(data)[k]

    def test_sorted_and_reversed_input(self) -> None:
        data = list(range(5_000))
        mp = MunroPaterson(self._factory(data), memory=16)
        assert mp.select(2_500) == 2_500
        mp = MunroPaterson(self._factory(data[::-1]), memory=16)
        assert mp.select(2_500) == 2_500

    def test_more_memory_fewer_passes(self, rng) -> None:
        data = rng.integers(0, 1 << 24, size=30_000, dtype=np.int64).tolist()
        small = MunroPaterson(self._factory(data), memory=8)
        big = MunroPaterson(self._factory(data), memory=1024)
        k = 15_000
        assert small.select(k) == big.select(k) == sorted(data)[k]
        assert big.passes_used <= small.passes_used

    def test_small_stream_two_passes(self) -> None:
        """A stream that fits in memory finishes in count + scan."""
        mp = MunroPaterson(self._factory([3, 1, 2]), memory=8)
        assert mp.select(1) == 2
        assert mp.passes_used == 2

    def test_empty_stream(self) -> None:
        mp = MunroPaterson(self._factory([]), memory=8)
        with pytest.raises(EmptySummaryError):
            mp.select(0)

    def test_bounds_checked(self) -> None:
        mp = MunroPaterson(self._factory([1, 2]), memory=8)
        with pytest.raises(InvalidParameterError):
            mp.select(2)
        with pytest.raises(InvalidParameterError):
            MunroPaterson(self._factory([1]), memory=3)

    @given(
        data=st.lists(st.integers(0, 50), min_size=1, max_size=300),
        k_seed=st.integers(0, 10_000),
    )
    def test_property_matches_sorted(self, data, k_seed) -> None:
        k = k_seed % len(data)
        mp = MunroPaterson(self._factory(data), memory=4)
        assert mp.select(k) == sorted(data)[k]


def test_pass_bound_helper() -> None:
    assert exact_median_passes(1, 10) == 1
    assert exact_median_passes(10**6, 10**3) == 2
    with pytest.raises(InvalidParameterError):
        exact_median_passes(100, 1)
