"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import make_parser, run


def _run(argv, stdin_text="") -> tuple:
    out = io.StringIO()
    code = run(argv, stdin=io.StringIO(stdin_text), stdout=out)
    return code, out.getvalue()


class TestCLI:
    def test_median_from_stdin(self) -> None:
        data = "\n".join(str(x) for x in range(1, 101))
        code, out = _run(["--eps", "0.01", "--phi", "0.5"], data)
        assert code == 0
        value = float(out.splitlines()[0].split("\t")[1])
        assert abs(value - 50) <= 2

    def test_multiple_phis(self) -> None:
        data = "\n".join(str(x) for x in range(1000))
        code, out = _run(["--phi", "0.1,0.9"], data)
        assert code == 0
        lines = [ln for ln in out.splitlines() if ln.startswith("phi=")]
        assert len(lines) == 2

    def test_file_input(self, tmp_path) -> None:
        path = tmp_path / "values.txt"
        path.write_text("\n".join(str(x) for x in range(500)))
        code, out = _run(["--phi", "0.5", str(path)])
        assert code == 0
        assert "n=500" in out

    def test_fixed_universe_algorithm(self) -> None:
        data = "\n".join(str(x) for x in range(1024))
        code, out = _run(
            ["-a", "dcs", "--universe-log2", "10", "--eps", "0.05",
             "--seed", "1", "--phi", "0.5"],
            data,
        )
        assert code == 0
        value = float(out.splitlines()[0].split("\t")[1])
        assert abs(value - 512) <= 0.05 * 1024 + 64

    def test_blank_lines_skipped(self) -> None:
        code, out = _run(["--phi", "0.5"], "1\n\n2\n\n3\n")
        assert code == 0
        assert "n=3" in out

    def test_empty_input(self) -> None:
        code, out = _run([], "")
        assert code == 1
        assert "no input" in out

    def test_bad_value_reports_line(self) -> None:
        code, out = _run([], "1\nbanana\n")
        assert code == 2
        assert "line 2" in out

    def test_randomized_algorithm_with_seed(self) -> None:
        data = "\n".join(str(x) for x in range(5000))
        code1, out1 = _run(["-a", "random", "--seed", "9"], data)
        code2, out2 = _run(["-a", "random", "--seed", "9"], data)
        assert code1 == code2 == 0
        phi_lines = lambda out: [  # noqa: E731 - local helper
            ln for ln in out.splitlines() if ln.startswith("phi=")
        ]
        assert phi_lines(out1) == phi_lines(out2)

    def test_json_output(self) -> None:
        import json

        data = "\n".join(str(x) for x in range(1, 101))
        code, out = _run(["--json", "--eps", "0.01", "--phi", "0.5"], data)
        assert code == 0
        payload = json.loads(out)
        assert payload["algorithm"] == "GKArray"
        assert payload["n"] == 100
        assert len(payload["quantiles"]) == 1
        assert abs(payload["quantiles"][0]["value"] - 50) <= 2
        assert payload["update_time_us"] > 0
        assert set(payload["phases"]) == {"build_s", "update_s", "query_s"}
        assert "metrics" not in payload

    def test_json_with_metrics(self) -> None:
        import json

        data = "\n".join(str(x) for x in range(1000))
        code, out = _run(["--json", "--metrics", "--phi", "0.5"], data)
        assert code == 0
        payload = json.loads(out)
        names = {m["name"] for m in payload["metrics"]}
        assert "cash_register.buffer_flush" in names
        assert "distributed.net.words_sent" in names
        assert "evaluation.updates" in names

    def test_json_error_object(self) -> None:
        import json

        code, out = _run(["--json"], "")
        assert code == 1
        assert json.loads(out) == {"error": "no input values"}
        code, out = _run(["--json"], "1\nbanana\n")
        assert code == 2
        assert "line 2" in json.loads(out)["error"]

    def test_metrics_report_spans_subsystems(self) -> None:
        data = "\n".join(str(x) for x in range(2000))
        code, out = _run(
            ["--metrics", "--eps", "0.01", "--phi", "0.5"], data
        )
        assert code == 0
        # The normal report is intact...
        assert out.splitlines()[0].startswith("phi=")
        assert "n=2000" in out
        # ...and the metrics report follows, covering at least a counter,
        # a gauge, and a histogram across three subsystems.
        assert "metrics report" in out
        for section in ("[cash_register]", "[distributed]", "[evaluation]"):
            assert section in out
        for kind in ("counter", "gauge", "histogram"):
            assert kind in out

    def test_metrics_does_not_leak_recorder(self) -> None:
        from repro.obs import metrics as obs_metrics

        assert not obs_metrics.recorder().enabled
        data = "\n".join(str(x) for x in range(100))
        code, _ = _run(["--metrics", "--phi", "0.5"], data)
        assert code == 0
        assert not obs_metrics.recorder().enabled

    def test_trace_written(self, tmp_path) -> None:
        import json

        path = tmp_path / "trace.jsonl"
        data = "\n".join(str(x) for x in range(5000))
        code, _ = _run(
            ["--trace", str(path), "--eps", "0.01", "--phi", "0.5"], data
        )
        assert code == 0
        events = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert events, "expected at least one flush span"
        assert all("duration_ns" in e for e in events)
        assert any(e["name"] == "cash_register.flush" for e in events)

    def test_parser_rejects_bad_phi(self) -> None:
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--phi", "1.5"])
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--phi", "abc"])

    def test_parser_rejects_unknown_algorithm(self) -> None:
        with pytest.raises(SystemExit):
            make_parser().parse_args(["-a", "nope"])
