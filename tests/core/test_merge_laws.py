"""Merge laws for every mergeable summary.

The sharded ingest engine (:mod:`repro.parallel`) and the distributed
``merge_summaries`` protocol both rely on the same contract, checked
here for every algorithm that advertises ``mergeable``:

* **error law** — splitting a stream into shards, summarizing each at
  ``eps``, and merging answers every quantile within ``eps`` of the full
  stream's truth.  Deterministic summaries must obey it on *every*
  stream hypothesis finds; randomized summaries promise it only with
  high probability, so they are checked on fixed-seed streams at a
  realistic ``n`` where the concentration bounds have kicked in;
* **count law** — ``merge`` adds the element counts exactly;
* **compatibility law** — eps mismatches, cross-type merges, and (for
  shared-seed linear sketches) seed mismatches raise
  :class:`~repro.core.errors.MergeError` instead of silently corrupting;
* **capability law** — every non-mergeable summary raises a typed
  :class:`~repro.core.errors.UnmergeableSketchError` from the base
  class, and the registry flags match the classes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import MergeError, UnmergeableSketchError
from repro.core.registry import (
    algorithms,
    get_algorithm,
    merge_shares_seed,
    mergeable_algorithms,
    supports_merge,
)
from repro.evaluation.harness import build_sketch
from repro.evaluation.metrics import measure_errors

EPS = 0.1
UNIVERSE_LOG2 = 10
UNIVERSE = 1 << UNIVERSE_LOG2

MERGEABLE = mergeable_algorithms()
DETERMINISTIC = [
    n for n in MERGEABLE if get_algorithm(n).deterministic
]
RANDOMIZED = [
    n for n in MERGEABLE if not get_algorithm(n).deterministic
]

values = st.integers(0, UNIVERSE - 1)
shard = st.lists(values, min_size=1, max_size=200)


def build(name: str, eps: float = EPS, seed: int = 7):
    return build_sketch(name, eps, universe_log2=UNIVERSE_LOG2, seed=seed)


@pytest.fixture(params=MERGEABLE)
def name(request) -> str:
    return request.param


class TestErrorLaw:
    @pytest.mark.parametrize("det_name", DETERMINISTIC)
    @given(a=shard, b=shard)
    def test_shard_then_merge_stays_within_eps(
        self, det_name, a, b
    ) -> None:
        sa, sb = build(det_name), build(det_name)
        sa.extend(a)
        sb.extend(b)
        sa.merge(sb)
        truth = np.sort(np.asarray(a + b, dtype=np.int64))
        report = measure_errors(sa, truth, EPS)
        assert report.max_error <= EPS + 1e-9

    @pytest.mark.parametrize("det_name", DETERMINISTIC)
    @given(a=shard, b=shard, c=shard)
    def test_merge_tree_stays_within_eps(self, det_name, a, b, c) -> None:
        sa, sb, sc = build(det_name), build(det_name), build(det_name)
        sa.extend(a)
        sb.extend(b)
        sc.extend(c)
        sa.merge(sb)
        sa.merge(sc)
        truth = np.sort(np.asarray(a + b + c, dtype=np.int64))
        report = measure_errors(sa, truth, EPS)
        assert report.max_error <= EPS + 1e-9

    @pytest.mark.parametrize("rand_name", RANDOMIZED)
    def test_randomized_shard_then_merge_at_scale(self, rand_name) -> None:
        rng = np.random.default_rng(0xFEED)
        shards = [
            rng.integers(0, UNIVERSE, size=4_000).tolist()
            for _ in range(4)
        ]
        sketches = [build(rand_name) for _ in shards]
        for sk, chunk in zip(sketches, shards):
            sk.extend(chunk)
        merged = sketches[0]
        for sk in sketches[1:]:
            merged.merge(sk)
        truth = np.sort(
            np.asarray([v for s in shards for v in s], dtype=np.int64)
        )
        report = measure_errors(merged, truth, EPS)
        assert report.max_error <= EPS + 1e-9


class TestCountLaw:
    @given(a=shard, b=shard)
    def test_n_adds_exactly(self, name, a, b) -> None:
        sa, sb = build(name), build(name)
        sa.extend(a)
        sb.extend(b)
        sa.merge(sb)
        assert sa.n == len(a) + len(b)

    def test_merge_into_empty(self, name) -> None:
        sa, sb = build(name), build(name)
        sb.extend(range(50))
        sa.merge(sb)
        assert sa.n == 50

    def test_merge_empty_into_full(self, name) -> None:
        sa, sb = build(name), build(name)
        sa.extend(range(50))
        sa.merge(sb)
        assert sa.n == 50


class TestCompatibilityLaw:
    def test_eps_mismatch_raises(self, name) -> None:
        sa, sb = build(name, eps=0.1), build(name, eps=0.05)
        sa.extend(range(100))
        sb.extend(range(100))
        with pytest.raises(MergeError):
            sa.merge(sb)

    @pytest.mark.parametrize(
        "left,right",
        [
            ("gk_array", "kll"),
            ("qdigest", "dcs"),
            ("mrl99", "random"),
            ("tdigest", "gk_adaptive"),
            ("dcm", "rss"),
            ("post", "dcs"),
        ],
    )
    def test_cross_type_merge_raises(self, left, right) -> None:
        sa, sb = build(left), build(right)
        sa.extend(range(100))
        sb.extend(range(100))
        with pytest.raises(MergeError):
            sa.merge(sb)

    @pytest.mark.parametrize(
        "name", [n for n in MERGEABLE if merge_shares_seed(n)]
    )
    def test_shared_seed_sketches_reject_seed_mismatch(self, name) -> None:
        sa, sb = build(name, seed=1), build(name, seed=2)
        sa.extend(range(100))
        sb.extend(range(100))
        with pytest.raises(MergeError):
            sa.merge(sb)

    @pytest.mark.parametrize(
        "name", [n for n in MERGEABLE if merge_shares_seed(n)]
    )
    def test_shared_seed_sketches_accept_same_seed(self, name) -> None:
        sa, sb = build(name, seed=3), build(name, seed=3)
        sa.extend(range(100))
        sb.extend(range(100, 200))
        sa.merge(sb)
        assert sa.n == 200


class TestCapabilityLaw:
    def test_registry_flags_match_classes(self) -> None:
        for key in algorithms():
            assert supports_merge(key) == bool(
                getattr(get_algorithm(key), "mergeable", False)
            )
            assert supports_merge(key) == (key in MERGEABLE)

    @pytest.mark.parametrize(
        "key", sorted(set(algorithms()) - set(MERGEABLE))
    )
    def test_unmergeable_raises_typed_error(self, key) -> None:
        sa, sb = build(key), build(key)
        sa.extend(range(20))
        sb.extend(range(20))
        with pytest.raises(UnmergeableSketchError):
            sa.merge(sb)

    def test_unmergeable_is_a_merge_error(self) -> None:
        assert issubclass(UnmergeableSketchError, MergeError)


class TestDeterminism:
    def test_merge_is_repeatable(self, name) -> None:
        phis = [i / 10 for i in range(1, 10)]
        answers = []
        for _ in range(2):
            rng = np.random.default_rng(11)
            sa, sb = build(name), build(name)
            sa.extend(rng.integers(0, UNIVERSE, size=400).tolist())
            sb.extend(rng.integers(0, UNIVERSE, size=400).tolist())
            sa.merge(sb)
            answers.append(sa.query_batch(phis))
        assert answers[0] == answers[1]
