"""Snapshot/restore: checksummed checkpoints for every registered summary.

Two properties anchor the fault-tolerance layer:

* **Round-trip fidelity** — ``restore(snapshot(s))`` answers every
  quantile exactly like ``s`` (Hypothesis property over random streams).
* **Corruption is always detected** — any bit flip anywhere in the
  envelope makes ``restore`` raise ``CorruptSummaryError``; a silently
  wrong summary is never returned.
"""

from __future__ import annotations

import inspect

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CorruptSummaryError,
    restore,
    snapshot,
    snapshot_registry,
)
from repro.core.errors import InvalidParameterError
from repro.core.snapshot import decode_payload, encode_payload
from repro.distributed import FaultInjector, FaultPlan

PHIS = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
UNIVERSE_LOG2 = 12

REGISTRY_KEYS = sorted(snapshot_registry())


def build_summary(key: str, eps: float = 0.05, seed: int = 3):
    cls = snapshot_registry()[key]
    kwargs = {}
    params = inspect.signature(cls.__init__).parameters
    if "universe_log2" in params:
        kwargs["universe_log2"] = UNIVERSE_LOG2
    if "seed" in params:
        kwargs["seed"] = seed
    return cls(eps=eps, **kwargs)


def test_registry_covers_the_checkpointable_summaries() -> None:
    assert {"qdigest", "random", "gk_adaptive", "gk_array", "dcs"} <= set(
        REGISTRY_KEYS
    )


@pytest.mark.parametrize("key", REGISTRY_KEYS)
@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.integers(0, (1 << UNIVERSE_LOG2) - 1), min_size=1, max_size=400
    )
)
def test_roundtrip_answers_identically(key: str, values) -> None:
    sk = build_summary(key)
    sk.extend(values)
    clone = restore(snapshot(sk))
    assert clone.n == sk.n
    assert clone.quantiles(PHIS) == sk.quantiles(PHIS)


@pytest.mark.parametrize("key", REGISTRY_KEYS)
def test_restored_summary_keeps_working(key: str, rng) -> None:
    data = rng.integers(0, 1 << UNIVERSE_LOG2, size=3_000, dtype="int64")
    sk = build_summary(key)
    sk.extend(data[:2_000].tolist())
    clone = restore(snapshot(sk))
    sk.extend(data[2_000:].tolist())
    clone.extend(data[2_000:].tolist())
    assert clone.n == sk.n
    # Deterministic summaries agree exactly; randomized ones agree because
    # the snapshot preserves the RNG state.
    assert clone.quantiles(PHIS) == sk.quantiles(PHIS)


@pytest.mark.parametrize("key", REGISTRY_KEYS)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_any_bit_flip_is_detected(key: str, data) -> None:
    sk = build_summary(key)
    sk.extend([1, 5, 7, 100, 2_000, 4_000])
    blob = snapshot(sk)
    bit = data.draw(st.integers(0, len(blob) * 8 - 1))
    injector = FaultInjector(FaultPlan(seed=0))
    with pytest.raises(CorruptSummaryError):
        restore(injector.corrupt_blob(blob, bit=bit))


@pytest.mark.parametrize("key", REGISTRY_KEYS)
def test_truncation_is_detected(key: str) -> None:
    sk = build_summary(key)
    sk.extend(range(64))
    blob = snapshot(sk)
    for cut in (0, 3, len(blob) // 2, len(blob) - 1):
        with pytest.raises(CorruptSummaryError):
            restore(blob[:cut])


def test_unregistered_type_rejected_on_snapshot() -> None:
    with pytest.raises(InvalidParameterError):
        snapshot(object())


def test_validate_catches_semantic_corruption() -> None:
    sk = build_summary("qdigest")
    sk.extend(range(100))
    sk._n += 7  # counts no longer sum to n
    with pytest.raises(CorruptSummaryError):
        sk.validate()

    gk = build_summary("gk_array")
    gk.extend(range(100))
    gk._prepare_query()
    gk._gs[0] = 0  # g must be >= 1
    with pytest.raises(CorruptSummaryError):
        gk.validate()

    dcs = build_summary("dcs")
    dcs.extend(range(100))
    exact = dcs.exact_levels()
    assert exact, "expected at least one exact level at this size"
    dcs._levels[exact[0]]._counts[0] = -1  # negative dyadic count
    with pytest.raises(CorruptSummaryError):
        dcs.validate()


def test_payload_envelope_roundtrip_and_detection() -> None:
    import numpy as np

    arr = np.arange(1_000, dtype="int64")
    blob = encode_payload(arr)
    assert (decode_payload(blob) == arr).all()
    injector = FaultInjector(FaultPlan(seed=2))
    with pytest.raises(CorruptSummaryError):
        decode_payload(injector.corrupt_blob(blob, bit=123))
    # A raw payload envelope is not a summary snapshot.
    with pytest.raises(CorruptSummaryError):
        restore(blob)
