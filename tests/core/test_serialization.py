"""Pickle round-trip tests: summaries are shippable state.

Real deployments checkpoint summaries and move them between processes
(the mergeable model assumes exactly that), so every summary must survive
pickling mid-stream: identical answers before/after, and the restored
object must keep accepting updates.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import algorithms, get_algorithm

PHIS = [0.1, 0.5, 0.9]


def _build(name: str):
    import inspect

    cls = get_algorithm(name)
    kwargs = {}
    sig = inspect.signature(cls.__init__).parameters
    if "universe_log2" in sig:
        kwargs["universe_log2"] = 12
    if "seed" in sig:
        kwargs["seed"] = 3
    if name == "rss":
        kwargs["reps"] = 16
    return cls(eps=0.05, **kwargs)


@pytest.mark.parametrize(
    "name", [a for a in algorithms() if not a.startswith("test_")]
)
def test_pickle_roundtrip(name: str, rng) -> None:
    data = rng.integers(0, 1 << 12, size=3_000, dtype=np.int64)
    sk = _build(name)
    sk.extend(data[:2_000].tolist())

    clone = pickle.loads(pickle.dumps(sk))
    assert clone.n == sk.n
    assert clone.quantiles(PHIS) == sk.quantiles(PHIS)
    assert clone.size_words() == sk.size_words()

    # The restored summary must keep working.
    more = data[2_000:]
    sk.extend(more.tolist())
    clone.extend(more.tolist())
    assert clone.n == sk.n
    # Deterministic algorithms must agree exactly post-restore; randomized
    # ones agree because the restored RNG state is identical.
    assert clone.quantiles(PHIS) == sk.quantiles(PHIS)


def test_pickle_preserves_turnstile_deletes(rng) -> None:
    from repro import DyadicCountSketch

    sk = DyadicCountSketch(eps=0.05, universe_log2=10, seed=1)
    values = rng.integers(0, 1 << 10, size=1_000, dtype=np.int64)
    sk.update_batch(values)
    clone = pickle.loads(pickle.dumps(sk))
    clone.update_batch(values[:500], -1)
    sk.update_batch(values[:500], -1)
    assert clone.n == sk.n == 500
    assert clone.query(0.5) == sk.query(0.5)
