"""Tests for the stream generators and synthetic data sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InvalidParameterError, NegativeFrequencyError
from repro.streams import (
    MPCAT_UNIVERSE,
    adversarial_teardown,
    chunked_sorted_stream,
    churn_stream,
    insert_only,
    normal_stream,
    remaining_values,
    sorted_stream,
    synthetic_lidar,
    synthetic_mpcat_obs,
    uniform_stream,
    validate_updates,
    zipf_stream,
)


class TestValueStreams:
    @pytest.mark.parametrize(
        "gen",
        [uniform_stream, normal_stream, zipf_stream, sorted_stream,
         chunked_sorted_stream],
    )
    def test_in_universe_and_reproducible(self, gen) -> None:
        a = gen(5_000, universe_log2=16, seed=4)
        b = gen(5_000, universe_log2=16, seed=4)
        c = gen(5_000, universe_log2=16, seed=5)
        assert len(a) == 5_000
        assert a.min() >= 0 and a.max() < (1 << 16)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_sorted_is_sorted(self) -> None:
        data = sorted_stream(2_000, seed=1)
        assert np.all(np.diff(data) >= 0)
        desc = sorted_stream(2_000, seed=1, descending=True)
        assert np.all(np.diff(desc) <= 0)

    def test_chunked_has_sorted_runs_but_not_global(self) -> None:
        data = chunked_sorted_stream(20_000, seed=2, mean_chunk=500)
        ascending_pairs = float(np.mean(np.diff(data) >= 0))
        assert ascending_pairs > 0.9  # mostly sorted locally
        assert not np.all(np.diff(data) >= 0)  # but not globally

    def test_normal_concentration_varies_with_sigma(self) -> None:
        tight = normal_stream(20_000, sigma=0.05, seed=3)
        loose = normal_stream(20_000, sigma=0.25, seed=3)
        assert np.std(tight.astype(float)) < np.std(loose.astype(float))

    def test_zipf_heavy_head(self) -> None:
        data = zipf_stream(20_000, alpha=1.5, seed=6)
        zero_frac = float(np.mean(data == 0))
        assert zero_frac > 0.3

    def test_invalid_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            uniform_stream(-1)
        with pytest.raises(InvalidParameterError):
            uniform_stream(10, universe_log2=0)
        with pytest.raises(InvalidParameterError):
            normal_stream(10, sigma=0.0)
        with pytest.raises(InvalidParameterError):
            zipf_stream(10, alpha=1.0)
        with pytest.raises(InvalidParameterError):
            chunked_sorted_stream(10, mean_chunk=0)


class TestSyntheticDatasets:
    def test_mpcat_shape(self) -> None:
        data = synthetic_mpcat_obs(50_000, seed=7)
        assert data.min() >= 0 and data.max() < MPCAT_UNIVERSE
        # Bimodal: both humps populated, trough between them lighter.
        hump1 = np.mean((data > 0.15 * MPCAT_UNIVERSE)
                        & (data < 0.35 * MPCAT_UNIVERSE))
        hump2 = np.mean((data > 0.6 * MPCAT_UNIVERSE)
                        & (data < 0.85 * MPCAT_UNIVERSE))
        trough = np.mean((data > 0.45 * MPCAT_UNIVERSE)
                         & (data < 0.55 * MPCAT_UNIVERSE))
        assert hump1 > 2 * trough and hump2 > 2 * trough

    def test_mpcat_chunked_arrival(self) -> None:
        data = synthetic_mpcat_obs(20_000, seed=8)
        assert float(np.mean(np.diff(data) >= 0)) > 0.9
        assert not np.all(np.diff(data) >= 0)

    def test_mpcat_fits_24_bits(self) -> None:
        data = synthetic_mpcat_obs(10_000, seed=9)
        assert data.max() < (1 << 24)

    def test_lidar_correlated_arrival(self) -> None:
        data = synthetic_lidar(20_000, seed=10)
        diffs = np.abs(np.diff(data.astype(np.float64)))
        shuffled = data.copy()
        np.random.default_rng(0).shuffle(shuffled)
        shuffled_diffs = np.abs(np.diff(shuffled.astype(np.float64)))
        # Consecutive points are much closer in value than random pairs.
        assert np.median(diffs) < 0.2 * np.median(shuffled_diffs)

    def test_reproducible(self) -> None:
        assert np.array_equal(
            synthetic_mpcat_obs(5_000, seed=1),
            synthetic_mpcat_obs(5_000, seed=1),
        )
        assert np.array_equal(
            synthetic_lidar(5_000, seed=1), synthetic_lidar(5_000, seed=1)
        )


class TestUpdateStreams:
    def test_insert_only(self) -> None:
        ops = list(insert_only([3, 1, 2]))
        assert ops == [(3, 1), (1, 1), (2, 1)]

    def test_churn_well_formed(self) -> None:
        ops = churn_stream(5_000, delete_fraction=0.45, seed=11)
        counts = validate_updates(ops)  # must not raise
        assert all(c >= 0 for c in counts.values())
        deletes = sum(1 for _v, d in ops if d == -1)
        assert 0.3 * 5_000 < deletes < 0.6 * 5_000

    def test_churn_rejects_bad_fraction(self) -> None:
        with pytest.raises(InvalidParameterError):
            churn_stream(10, delete_fraction=1.0)

    def test_teardown_leaves_survivors(self) -> None:
        ops = adversarial_teardown(1_000, survivors=7, seed=12)
        remaining = remaining_values(ops)
        assert len(remaining) == 7

    def test_teardown_rejects_bad_survivors(self) -> None:
        with pytest.raises(InvalidParameterError):
            adversarial_teardown(10, survivors=11)

    def test_validate_catches_negative(self) -> None:
        with pytest.raises(NegativeFrequencyError):
            validate_updates([(1, 1), (2, -1)])

    def test_validate_catches_bad_delta(self) -> None:
        with pytest.raises(InvalidParameterError):
            validate_updates([(1, 3)])

    def test_remaining_values_sorted_multiset(self) -> None:
        ops = [(5, 1), (3, 1), (5, 1), (3, -1)]
        assert remaining_values(ops).tolist() == [5, 5]
