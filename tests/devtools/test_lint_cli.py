"""CLI coverage for replint v2: exit codes, --select ranges, JSON schema."""

import json
from pathlib import Path

import pytest

from repro.devtools.engine import JSON_SCHEMA, Linter, render_json
from repro.devtools.lint import main as lint_main, parse_select
from repro.devtools.rules import DEFAULT_RULES, RULES_BY_ID

FIXTURES = Path(__file__).parent / "replint_fixtures"


def stage(tmp_path, name, content=None):
    src = tmp_path / "src"
    src.mkdir(exist_ok=True)
    target = src / name
    if content is None:
        content = (FIXTURES / name).read_text(encoding="utf-8")
    target.write_text(content, encoding="utf-8")
    return src


class TestParseSelect:
    def test_single_ids(self):
        assert parse_select("REP001,REP012") == {"REP001", "REP012"}

    def test_range_expansion(self):
        assert parse_select("REP008-REP012") == {
            "REP008",
            "REP009",
            "REP010",
            "REP011",
            "REP012",
        }

    def test_mixed_ids_and_ranges(self):
        assert parse_select("REP001,REP010-REP012") == {
            "REP001",
            "REP010",
            "REP011",
            "REP012",
        }

    def test_range_clips_to_catalog(self):
        # An over-wide range selects only ids that actually exist.
        assert parse_select("REP001-REP099") == set(RULES_BY_ID)

    def test_backwards_range_rejected(self):
        with pytest.raises(ValueError, match="backwards"):
            parse_select("REP012-REP008")

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="matches nothing"):
            parse_select("REP090-REP099")


class TestExitCodes:
    def test_zero_on_clean_tree(self, tmp_path, capsys):
        src = stage(tmp_path, "clean.py", "X = 1\n")
        assert lint_main([str(src)]) == 0
        assert "0 problem(s)" in capsys.readouterr().out

    def test_one_on_findings(self, tmp_path, capsys):
        src = stage(tmp_path, "bad_rep012.py")
        assert lint_main(["--select", "REP012", str(src)]) == 1
        assert "REP012" in capsys.readouterr().out

    def test_two_on_unknown_rule(self, tmp_path):
        src = stage(tmp_path, "clean.py", "X = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--select", "REP999", str(src)])
        assert excinfo.value.code == 2

    def test_two_on_malformed_range(self, tmp_path):
        src = stage(tmp_path, "clean.py", "X = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--select", "REP012-REP008", str(src)])
        assert excinfo.value.code == 2

    def test_select_range_on_cli(self, tmp_path, capsys):
        src = stage(tmp_path, "bad_rep008.py")
        assert lint_main(["--select", "REP008-REP012", str(src)]) == 1
        out = capsys.readouterr().out
        assert "REP008" in out

    def test_list_rules_includes_concurrency_pack(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP008", "REP009", "REP010", "REP011", "REP012"):
            assert rule_id in out


class TestJsonSchema:
    """The JSON output is a stable machine-readable contract for CI."""

    def run_json(self, tmp_path, name, content=None, select=None):
        src = stage(tmp_path, name, content)
        result = Linter(DEFAULT_RULES, select=select).run([str(src)])
        return json.loads(render_json(result))

    def test_top_level_shape(self, tmp_path):
        payload = self.run_json(
            tmp_path, "bad_rep012.py", select={"REP012"}
        )
        assert payload["schema"] == JSON_SCHEMA == "replint-json/1"
        assert payload["files_checked"] == 1
        assert isinstance(payload["suppressed"], int)
        assert isinstance(payload["diagnostics"], list)

    def test_record_keys(self, tmp_path):
        payload = self.run_json(
            tmp_path, "bad_rep012.py", select={"REP012"}
        )
        assert payload["diagnostics"], "expected findings"
        for record in payload["diagnostics"]:
            for key in ("rule", "path", "line", "col", "message", "suppressed"):
                assert key in record, key
            assert record["rule"] == "REP012"
            assert record["rule"] == record["rule_id"]  # back-compat alias
            assert isinstance(record["line"], int) and record["line"] >= 1
            assert record["suppressed"] is False

    def test_suppressed_records_included_and_marked(self, tmp_path):
        payload = self.run_json(
            tmp_path,
            "suppressed.py",
            content=(
                "def run(work, failure):\n"
                "    try:\n"
                "        work()\n"
                "    except Exception as exc:  # replint: disable=REP012\n"
                "        failure.append(exc)\n"
            ),
            select={"REP012"},
        )
        assert payload["suppressed"] == 1
        marked = [r for r in payload["diagnostics"] if r["suppressed"]]
        assert len(marked) == 1
        assert marked[0]["rule"] == "REP012"

    def test_exit_code_ignores_suppressed(self, tmp_path, capsys):
        src = stage(
            tmp_path,
            "suppressed.py",
            (
                "def run(work, failure):\n"
                "    try:\n"
                "        work()\n"
                "    except Exception as exc:  # replint: disable=REP012\n"
                "        failure.append(exc)\n"
            ),
        )
        assert lint_main(["--format", "json", str(src)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suppressed"] == 1

    def test_records_sorted_by_location(self, tmp_path):
        payload = self.run_json(
            tmp_path, "bad_rep012.py", select={"REP012"}
        )
        keys = [
            (r["path"], r["line"], r["col"], r["rule"])
            for r in payload["diagnostics"]
        ]
        assert keys == sorted(keys)
