"""REP005 good fixture: every recorded metric name is preregistered."""


def record(registry, count, words):
    registry.inc("repro.ingest.items", count)
    registry.set("repro.sketch.size_words", words)
    registry.observe("repro.query.latency_seconds", 0.001)
