"""REP002 bad fixture: registered classes that drift from the
QuantileSketch contract in each way the rule checks."""


def register(key):
    return lambda cls: cls


def snapshottable(tag):
    return lambda cls: cls


class QuantileSketch:
    def update(self, value):
        raise NotImplementedError

    def extend(self, values):
        for value in values:
            self.update(value)


@register("not_a_sketch")
@snapshottable("not_a_sketch")
class NotASketch:
    def update(self, value):
        pass


@register("no_validate")
@snapshottable("no_validate")
class NoValidate(QuantileSketch):
    def update(self, value):
        pass


@register("bad_extend")
@snapshottable("bad_extend")
class BadExtend(QuantileSketch):
    def update(self, value):
        pass

    def validate(self):
        return self

    def extend(self, values, weights):
        for value in values:
            self.update(value)


@register("bad_kwonly")
@snapshottable("bad_kwonly")
class BadKwonly(QuantileSketch):
    def update(self, value):
        pass

    def validate(self):
        return self

    def query_batch(self, phis, *, strict):
        return [phis, strict]
