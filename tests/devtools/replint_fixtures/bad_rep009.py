"""Lock acquires that can leak past a return or exception path."""

import threading

_registry_lock = threading.Lock()


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = {}

    def add(self, key, value):
        self._lock.acquire()  # leaks on the early return below
        if key in self.items:
            return False
        self.items[key] = value
        self._lock.release()
        return True


def update_registry(entries, validate):
    _registry_lock.acquire()  # leaks when validate() raises
    for entry in entries:
        if not validate(entry):
            raise ValueError(entry)
    _registry_lock.release()
