"""Async bodies that keep the loop free: nothing flagged."""

import asyncio
import time


def crunch(values):
    time.sleep(0.01)  # blocking, but only ever called via the executor
    return sorted(values)


async def polite_sleep():
    await asyncio.sleep(1.0)


async def offloaded(values):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, lambda: crunch(values))


async def awaited_lock(lock):
    await lock.acquire()  # asyncio lock, properly awaited
    lock.release()


def sync_can_block(path):
    with open(path) as handle:  # sync context: not REP008's business
        return handle.read()
