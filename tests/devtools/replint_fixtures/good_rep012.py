"""Broad handlers that leave evidence (event, traceback, or re-raise)."""

import traceback


def drain(queue, record_event):
    items = []
    try:
        while True:
            items.append(queue.get_nowait())
    except Exception as exc:
        record_event("drain.stopped", error=str(exc))
    return items


def forward_errors(work, out_queue):
    try:
        return work()
    except Exception:
        out_queue.put(traceback.format_exc())  # parent sees the traceback
        raise


def narrow(mapping, key):
    try:
        return mapping[key]
    except KeyError:  # narrow handler: not REP012's concern
        return None
