"""REP002/REP003 good fixture: a registered sketch that honors the
contract — subclasses QuantileSketch, carries its own @snapshottable
tag, has validate(), a compatible extend() override, and matching
__getstate__/__setstate__ keys."""


def register(key):
    return lambda cls: cls


def snapshottable(tag):
    return lambda cls: cls


class QuantileSketch:
    def update(self, value):
        raise NotImplementedError

    def extend(self, values):
        for value in values:
            self.update(value)

    def validate(self):
        return self


@register("good_sketch")
@snapshottable("good_sketch")
class GoodSketch(QuantileSketch):
    def __init__(self):
        self._items = []
        self._n = 0

    def update(self, value):
        self._items.append(value)
        self._n += 1

    def extend(self, values):
        for value in values:
            self.update(value)

    def validate(self):
        return self

    def __getstate__(self):
        return {"items": list(self._items), "n": self._n}

    def __setstate__(self, state):
        self._items = list(state["items"])
        self._n = state["n"]
