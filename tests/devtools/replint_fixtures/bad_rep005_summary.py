"""REP005 bad fixture: a summary metric missing from the table."""


def time_it(registry, elapsed_ns):
    registry.summary("latency.unregistered_ns").observe(elapsed_ns)
