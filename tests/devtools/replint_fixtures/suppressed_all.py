"""Suppression fixture: the `all` wildcard silences every rule on the
line it annotates."""


def check(n):
    assert n >= 0  # replint: disable=all
    return n
