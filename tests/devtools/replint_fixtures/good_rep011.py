"""Slot lifecycle done right: exactly one release on every path."""


def send_chunk(free_slots, queue, chunk):
    slot = free_slots.pop()
    slot.write(chunk)
    queue.put(slot)


def send_checked(free_slots, chunk, ready):
    if not ready:
        return False  # decide *before* taking the slot
    slot = free_slots.pop()
    try:
        slot.write(chunk)
    finally:
        free_slots.append(slot)  # back on the free list on every path
    return True
