"""REP001 bad fixture: hidden global RNG state and wall-clock reads."""

import datetime
import random
import time

import numpy as np


def unseeded():
    return np.random.default_rng()


def explicit_none():
    return np.random.default_rng(None)


def global_rng(count):
    return np.random.normal(size=count)


def stdlib_random():
    return random.random()


def wall_clock():
    return time.time()


def wall_clock_datetime():
    return datetime.datetime.now()
