"""Bad: hash machinery constructed per call inside hot batch kernels."""

import numpy as np

from repro.sketches.hashing import KWiseHash, SignHash, make_rng
from repro.sketches.hashplan import _compute_bucket_plane


class RehashingSketch:
    def __init__(self, width, depth, seed):
        self.width = width
        self.depth = depth
        self.seed = seed
        self._table = np.zeros((depth, width), dtype=np.int64)

    def update_batch(self, keys, deltas=1):
        rng = make_rng(self.seed)  # bad: fresh RNG per batch
        for i in range(self.depth):
            h = KWiseHash(2, self.width, rng)  # bad: fresh hash per batch
            g = SignHash(rng)  # bad: fresh sign hash per batch
            np.add.at(self._table[i], h(keys), g(keys) * deltas)

    def extend(self, values):
        hashes = [
            KWiseHash(2, self.width, make_rng(self.seed))  # bad: twice over
            for _ in range(self.depth)
        ]
        plane = _compute_bucket_plane(hashes, self.width)  # bad: uncached
        for i in range(self.depth):
            np.add.at(self._table[i], plane[i][values], 1)
