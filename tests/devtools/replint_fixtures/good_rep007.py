"""Process faults routed through a seeded FaultPlan, plus audited
supervision cleanup."""

import os
import signal


def crash_worker(worker_id, fault_plan):
    kill_after = fault_plan.kill_worker_at.get(worker_id)
    if kill_after is not None:
        os.kill(os.getpid(), signal.SIGKILL)


def stop_stalled(process, injector):
    if injector.stall_seconds(0) > 0:
        process.terminate()


def reap_for_shutdown(process):
    process.kill()  # replint: disable=REP007
