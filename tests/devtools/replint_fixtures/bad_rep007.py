"""Ad-hoc process kills that bypass the seeded FaultPlan."""

import os
import signal


os.kill(4242, signal.SIGKILL)  # module level: always flagged


def reap(process):
    process.terminate()  # no plan anywhere in sight


def hard_stop(process):
    process.kill()


def crash_self(worker_id):
    if worker_id == 0:
        os._exit(1)
