"""Two lock-acquisition orders that form a cycle: REP010 fires."""

import threading

_stats_lock = threading.Lock()
_registry_lock = threading.Lock()


def record(name, value, registry, stats):
    with _stats_lock:
        stats[name] = value
        with _registry_lock:  # stats -> registry
            registry[name] = value


def evict(name, registry, stats):
    with _registry_lock:
        registry.pop(name, None)
        with _stats_lock:  # registry -> stats: opposite order
            stats.pop(name, None)
