"""REP004 bad fixture: bare asserts in library code."""


def check(n):
    assert n >= 0
    return n


class Summary:
    def merge(self, other):
        assert other is not None
        return self
