"""Good: hash objects built once in __init__, planes fetched from the
cache inside the hot kernels."""

import numpy as np

from repro.sketches import hashplan
from repro.sketches.hashing import KWiseHash, SignHash, make_rng


class PlaneSketch:
    def __init__(self, width, depth, seed, universe):
        self.width = width
        self.depth = depth
        self.universe = universe
        rng = make_rng(seed)
        self._table = np.zeros((depth, width), dtype=np.int64)
        self._hashes = [KWiseHash(2, width, rng) for _ in range(depth)]
        self._signs = [SignHash(rng) for _ in range(depth)]

    def update_batch(self, keys, deltas=1):
        planes = hashplan.bucket_planes(self._hashes, self.universe)
        signs = hashplan.sign_planes(self._signs, self.universe)
        for i in range(self.depth):
            if planes is not None:
                cols = planes[i][keys]
                signed = signs[i][keys] * deltas
            else:
                cols = self._hashes[i](keys)
                signed = self._signs[i](keys) * deltas
            np.add.at(self._table[i], cols, signed)

    def estimate_batch(self, keys):
        planes = hashplan.bucket_planes(self._hashes, self.universe)
        rows = np.empty((self.depth, len(keys)), dtype=np.int64)
        for i in range(self.depth):
            cols = (
                planes[i][keys]
                if planes is not None
                else self._hashes[i](keys)
            )
            rows[i] = self._table[i, cols]
        return rows.min(axis=0)
