"""Compliant worker entry points: every seed flows from the plan."""

import numpy as np

from repro.core.rng import make_rng
from repro.evaluation.harness import build_sketch


def _shard_worker(worker_id, plan, spec, out_queue):
    seed = plan.sketch_seed(worker_id, spec["shares_seed"])
    sketch = build_sketch(spec["algorithm"], spec["eps"], seed=seed)
    rng = np.random.default_rng(plan.worker_seed(worker_id))
    sketch.extend(rng.integers(0, 100, size=10).tolist())
    out_queue.put(sketch)


def worker_warmup(shard, shard_plan):
    master = int(shard_plan.worker_seed(shard))
    return make_rng(master)
