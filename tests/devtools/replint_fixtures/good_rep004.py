"""REP004 good fixture: invariants raise typed errors; the one bare
assert lives inside a @debug_asserts-marked helper."""


class CorruptSummaryError(ValueError):
    pass


def debug_asserts(func):
    return func


def check(n):
    if n < 0:
        raise CorruptSummaryError("n must be non-negative")
    return n


@debug_asserts
def check_invariants_debug(summary):
    assert summary.n >= 0
    assert len(summary.items) <= summary.n
