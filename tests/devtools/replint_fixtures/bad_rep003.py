"""REP003 bad fixture: a registered sketch outside the snapshot
registry, and one whose getstate/setstate field sets disagree."""


def register(key):
    return lambda cls: cls


def snapshottable(tag):
    return lambda cls: cls


class QuantileSketch:
    def update(self, value):
        raise NotImplementedError

    def validate(self):
        return self


@register("unsnapshotted")
class Unsnapshotted(QuantileSketch):
    def update(self, value):
        pass


@register("mismatched")
@snapshottable("mismatched")
class Mismatched(QuantileSketch):
    def update(self, value):
        pass

    def __getstate__(self):
        return {"items": [], "stale": 0}

    def __setstate__(self, state):
        self._items = state["items"]
        self._n = state["n"]
