"""Every function takes the same lock order: no cycle, REP010 quiet."""

import threading

_stats_lock = threading.Lock()
_registry_lock = threading.Lock()


def record(name, value, registry, stats):
    with _stats_lock:
        stats[name] = value
        with _registry_lock:  # stats -> registry everywhere
            registry[name] = value


def evict(name, registry, stats):
    with _stats_lock:
        stats.pop(name, None)
        with _registry_lock:  # same order as record()
            registry.pop(name, None)


def stats_only(name, value, stats):
    with _stats_lock:
        stats[name] = value
