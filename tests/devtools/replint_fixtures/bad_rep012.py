"""Broad exception handlers that swallow errors without a trace."""


def drain(queue):
    items = []
    while True:
        try:
            items.append(queue.get_nowait())
        except Exception:
            pass  # swallowed: nobody will ever know the queue broke
    return items


def poll(sources):
    results = []
    for source in sources:
        try:
            results.append(source.read())
        except:  # bare except, silently skipping the source
            continue
    return results
