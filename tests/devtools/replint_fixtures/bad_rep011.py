"""Shared-memory slot lifecycle gone wrong: leaks and double releases."""


def send_chunk(free_slots, queue, chunk, ready):
    slot = free_slots.pop()  # slot off the free list
    if not ready:
        return None  # leak: the slot never goes back
    slot.write(chunk)
    queue.put(slot)
    return True


def flaky_ack(free_slots, queue, chunk, fast_path):
    slot = free_slots.pop()
    slot.write(chunk)
    if fast_path:
        queue.put(slot)  # fast ack
    queue.put(slot)  # double release when fast_path already queued it
