"""Worker entry points that break the plan-derived seed discipline."""

import numpy as np

from repro.core.rng import make_rng
from repro.evaluation.harness import build_sketch


def feed_worker(worker_id, out_queue):  # no plan parameter
    out_queue.put(worker_id)


def merge_worker(worker_id, plan, spec, out_queue):
    rng = np.random.default_rng(1234)  # constant seed
    other = make_rng(worker_id)  # shard id is not a plan-derived seed
    sketch = build_sketch(spec["algorithm"], spec["eps"], seed=worker_id)
    sketch.extend(rng.integers(0, 100, size=10).tolist())
    out_queue.put((sketch, other))
