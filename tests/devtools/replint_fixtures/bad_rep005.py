"""REP005 bad fixture: a metric name missing from DEFAULT_INSTRUMENTS."""


def record(registry):
    registry.inc("repro.bogus.metric")
