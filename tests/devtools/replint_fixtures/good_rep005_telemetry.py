"""REP005 good fixture: telemetry-plane names, including the summary
recorder method, all preregistered in the instrument table."""


def heartbeat(registry, worker, elapsed_ns):
    registry.set("telemetry.shard.alive", 1, worker=worker)
    registry.inc("flight.events", 1)
    registry.summary("latency.request_ns").observe(elapsed_ns)
