"""Blocking calls reachable from async bodies: every one flagged."""

import subprocess
import time


def load_config(path):
    with open(path) as handle:  # blocking, but sync context: fine here
        return handle.read()


def warm_up():
    time.sleep(0.5)  # sync helper that sleeps


class Engine:
    def pull(self):
        return self.task_queue.get()  # blocking queue get


async def direct_sleep():
    time.sleep(1.0)  # direct: sleeps the loop


async def shell_out():
    subprocess.run(["ls"])  # direct: subprocess


async def read_file(path):
    return open(path).read()  # direct: sync file I/O


async def unawaited_acquire(lock):
    lock.acquire()  # un-awaited lock acquire


async def transitive():
    warm_up()  # one hop: warm_up -> time.sleep


async def through_method():
    engine = Engine()
    engine.pull()  # resolved via local constructor type
