"""REP005 good fixture: query-tier (serve.*) metric names, spanning
every instrument kind the daemon records, all preregistered."""


def account_request(registry, endpoint, elapsed_ns):
    registry.set("serve.up", 1)
    registry.inc("serve.requests", 1, endpoint=endpoint)
    registry.summary("latency.serve.request_ns").observe(elapsed_ns)


def account_cache(registry, hits, entries):
    registry.inc("serve.cache.hits", hits)
    registry.set("serve.cache.entries", entries)


def account_flush(registry, sketch, elapsed_ns):
    registry.observe("serve.flush_ns", elapsed_ns, sketch=sketch)
