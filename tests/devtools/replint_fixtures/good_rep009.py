"""Lock discipline done right: with-scoped or released on every path."""

import threading

_registry_lock = threading.Lock()


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = {}

    def add(self, key, value):
        with self._lock:
            if key in self.items:
                return False
            self.items[key] = value
            return True


def update_registry(entries, validate):
    _registry_lock.acquire()
    try:
        for entry in entries:
            if not validate(entry):
                raise ValueError(entry)
    finally:
        _registry_lock.release()


def branch_release(flag, state_lock):
    state_lock.acquire()
    if flag:
        state_lock.release()
        return "fast"
    state_lock.release()
    return "slow"
