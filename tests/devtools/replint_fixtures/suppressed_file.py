"""Suppression fixture: a file-level disable silences every REP001
violation in the file."""

# replint: disable-file=REP001

import time


def first():
    return time.time()


def second():
    return time.time()
