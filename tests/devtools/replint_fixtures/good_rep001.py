"""REP001 good fixture: every random draw flows from an explicit seed,
and only monotonic timers are used for measurement."""

import time

import numpy as np


def draw(seed, count):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(count)


def draw_kw(seed):
    return np.random.default_rng(seed=seed)


def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
