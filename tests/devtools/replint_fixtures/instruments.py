"""Shared REP005 fixture: the preregistered instrument table."""

DEFAULT_INSTRUMENTS = (
    ("counter", "repro.ingest.items"),
    ("gauge", "repro.sketch.size_words"),
    ("histogram", "repro.query.latency_seconds"),
    ("gauge", "telemetry.shard.alive"),
    ("counter", "flight.events"),
    ("summary", "latency.request_ns"),
    ("gauge", "serve.up"),
    ("counter", "serve.requests"),
    ("counter", "serve.cache.hits"),
    ("gauge", "serve.cache.entries"),
    ("histogram", "serve.flush_ns"),
    ("summary", "latency.serve.request_ns"),
)
