"""Suppression fixture: the same violation twice — once silenced by a
line-level disable comment, once left to fire."""

import time


def silenced():
    return time.time()  # replint: disable=REP001


def still_fires():
    return time.time()
