"""Runtime lock-order sanitizer tests, including the deadlock proof.

The cycle tests build private :class:`SanitizerState` instances, so they
can seed deliberate deadlock-prone orders without tripping the globally
installed plugin state (CI runs this file under ``-p
repro.devtools.sanitize`` precisely to prove the detector fires).
"""

import asyncio
import threading
import time

import pytest

from repro.devtools import sanitize
from repro.devtools.sanitize import (
    InstrumentedLock,
    Sanitizer,
    SanitizerState,
)


def run_in_thread(fn):
    worker = threading.Thread(target=fn)
    worker.start()
    worker.join(timeout=10)
    assert not worker.is_alive()


class TestLockOrderCycle:
    def test_deliberate_deadlock_order_fires(self):
        """The seeded AB/BA order must produce a cycle violation."""
        state = SanitizerState()
        lock_a = InstrumentedLock(state, name="A")
        lock_b = InstrumentedLock(state, name="B")

        with lock_a:
            with lock_b:  # edge A -> B
                pass

        def opposite_order():
            with lock_b:
                with lock_a:  # edge B -> A: closes the cycle
                    pass

        run_in_thread(opposite_order)

        kinds = [v.kind for v in state.violations]
        assert kinds == ["lock-order-cycle"]
        message = state.violations[0].message
        assert "Lock(A)" in message and "Lock(B)" in message
        assert "edges:" in message

    def test_cycle_reported_once(self):
        state = SanitizerState()
        lock_a = InstrumentedLock(state, name="A")
        lock_b = InstrumentedLock(state, name="B")
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
            with lock_b:
                with lock_a:
                    pass
        assert len(state.violations) == 1

    def test_consistent_order_is_clean(self):
        state = SanitizerState()
        lock_a = InstrumentedLock(state, name="A")
        lock_b = InstrumentedLock(state, name="B")

        def same_order():
            with lock_a:
                with lock_b:
                    pass

        same_order()
        run_in_thread(same_order)
        assert state.violations == []
        assert state.report() == "lock sanitizer: no violations"

    def test_three_lock_cycle(self):
        state = SanitizerState()
        locks = [InstrumentedLock(state, name=n) for n in "ABC"]
        pairs = [(0, 1), (1, 2), (2, 0)]  # A->B, B->C, C->A
        for first, second in pairs:
            with locks[first]:
                with locks[second]:
                    pass
        assert [v.kind for v in state.violations] == ["lock-order-cycle"]

    def test_reentrant_acquire_adds_no_self_edge(self):
        state = SanitizerState()
        outer = InstrumentedLock(state, name="outer")
        rlock = InstrumentedLock(state, reentrant=True, name="R")
        with outer:
            rlock.acquire()
            rlock.acquire()  # reentrant: no new edges, no self-cycle
            rlock.release()
            rlock.release()
        assert state.violations == []
        serials = list(state.graph)
        for held in serials:
            assert held not in state.graph.get(held, set())

    def test_held_stack_unwinds(self):
        state = SanitizerState()
        lock_a = InstrumentedLock(state, name="A")
        with lock_a:
            assert state.held_serials() != []
        assert state.held_serials() == []


class TestEventLoopBlocking:
    def test_long_hold_on_loop_thread_flagged(self):
        state = SanitizerState(block_threshold_s=0.01)
        lock = InstrumentedLock(state, name="hot")

        async def main():
            lock.acquire()
            time.sleep(0.05)  # deliberately parks the loop while holding
            lock.release()

        asyncio.run(main())
        kinds = [v.kind for v in state.violations]
        assert kinds == ["event-loop-blocked-hold"]
        assert "Lock(hot)" in state.violations[0].message

    def test_long_wait_on_loop_thread_flagged(self):
        state = SanitizerState(block_threshold_s=0.01)
        lock = InstrumentedLock(state, name="contended")
        held = threading.Event()

        def holder():
            lock.acquire()
            held.set()
            time.sleep(0.05)
            lock.release()

        worker = threading.Thread(target=holder)
        worker.start()
        held.wait(timeout=10)

        async def main():
            lock.acquire()  # blocks the loop until the holder releases
            lock.release()

        asyncio.run(main())
        worker.join(timeout=10)
        assert "event-loop-blocked-wait" in [v.kind for v in state.violations]

    def test_fast_locks_off_loop_are_clean(self):
        state = SanitizerState(block_threshold_s=0.01)
        lock = InstrumentedLock(state, name="cold")
        lock.acquire()
        time.sleep(0.05)  # long hold, but no event loop on this thread
        lock.release()
        assert state.violations == []


class TestGlobalPatch:
    def test_install_patches_and_uninstall_restores(self):
        sanitizer = Sanitizer()
        try:
            sanitizer.install()
            lock = threading.Lock()
            assert isinstance(lock, InstrumentedLock)
            rlock = threading.RLock()
            assert isinstance(rlock, InstrumentedLock)
        finally:
            sanitizer.uninstall()
        assert threading.Lock is sanitize._REAL_LOCK
        assert threading.RLock is sanitize._REAL_RLOCK

    def test_queue_and_condition_work_under_patch(self):
        # queue.Queue builds its mutex from threading.Lock and Condition
        # wraps it; both must behave normally under instrumentation.
        sanitizer = Sanitizer()
        try:
            sanitizer.install()
            import queue

            q = queue.Queue()
            results = []

            def consumer():
                results.append(q.get(timeout=10))

            worker = threading.Thread(target=consumer)
            worker.start()
            q.put("payload")
            worker.join(timeout=10)
            assert results == ["payload"]
            assert not sanitizer.violations
        finally:
            sanitizer.uninstall()

    def test_module_install_is_idempotent(self):
        was_active = sanitize.current()
        if was_active is not None:
            pytest.skip("plugin already active in this session")
        first = sanitize.install()
        try:
            assert sanitize.install() is first
            assert sanitize.current() is first
        finally:
            sanitize.uninstall()
        assert sanitize.current() is None

    def test_report_lists_violations(self):
        state = SanitizerState()
        lock_a = InstrumentedLock(state, name="A")
        lock_b = InstrumentedLock(state, name="B")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        report = state.report()
        assert "1 violation(s)" in report
        assert "[lock-order-cycle]" in report
