"""Fixture-pair tests for the flow-aware concurrency rules REP008-REP012."""

from pathlib import Path

from repro.devtools.engine import Linter
from repro.devtools.rules import DEFAULT_RULES

FIXTURES = Path(__file__).parent / "replint_fixtures"


def lint_fixtures(tmp_path, *names, select=None):
    """Copy fixtures into ``tmp_path/src`` (library role) and lint."""
    src = tmp_path / "src"
    src.mkdir(exist_ok=True)
    for name in names:
        (src / name).write_text(
            (FIXTURES / name).read_text(encoding="utf-8"), encoding="utf-8"
        )
    return Linter(DEFAULT_RULES, select=select).run([str(src)])


class TestREP008BlockingInAsync:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep008.py", select={"REP008"})
        messages = [d.message for d in result.diagnostics]
        assert len(messages) == 6
        assert any("time.sleep" in m and "direct_sleep" in m for m in messages)
        assert any("subprocess" in m for m in messages)
        assert any("synchronous file I/O" in m for m in messages)
        assert any("un-awaited lock acquire" in m for m in messages)
        # Transitive: warm_up() is blocking because it sleeps.
        assert any(
            "warm_up" in m and "sleeps the whole event loop" in m
            for m in messages
        )
        # Method resolution through a local constructor type.
        assert any(
            "engine.pull" in m and "blocking queue get" in m for m in messages
        )

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_rep008.py", select={"REP008"})
        assert result.diagnostics == []

    def test_offload_suggestion_in_message(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep008.py", select={"REP008"})
        assert all(
            "run_in_executor" in d.message for d in result.diagnostics
        )


class TestREP009LockRelease:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep009.py", select={"REP009"})
        messages = [d.message for d in result.diagnostics]
        assert len(messages) == 2
        assert any("self._lock" in m and "add()" in m for m in messages)
        assert any(
            "_registry_lock" in m and "update_registry()" in m
            for m in messages
        )

    def test_good_fixture_clean(self, tmp_path):
        # with-scoping, try/finally, and release-on-every-branch all pass.
        result = lint_fixtures(tmp_path, "good_rep009.py", select={"REP009"})
        assert result.diagnostics == []


class TestREP010LockOrder:
    def test_bad_fixture_fires_once_per_cycle(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep010.py", select={"REP010"})
        assert len(result.diagnostics) == 1
        message = result.diagnostics[0].message
        assert "lock-order cycle" in message
        assert "bad_rep010._stats_lock" in message
        assert "bad_rep010._registry_lock" in message

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_rep010.py", select={"REP010"})
        assert result.diagnostics == []

    def test_consistent_order_across_files_clean(self, tmp_path):
        # Nesting alone is fine; only *conflicting* orders form a cycle.
        src = tmp_path / "src"
        src.mkdir(exist_ok=True)
        (src / "one_order.py").write_text(
            "import threading\n"
            "_a_lock = threading.Lock()\n"
            "_b_lock = threading.Lock()\n"
            "def f(x):\n"
            "    with _a_lock:\n"
            "        with _b_lock:\n"
            "            return x\n",
            encoding="utf-8",
        )
        result = Linter(DEFAULT_RULES, select={"REP010"}).run([str(src)])
        assert result.diagnostics == []


class TestREP011SlotLifecycle:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep011.py", select={"REP011"})
        messages = [d.message for d in result.diagnostics]
        assert len(messages) == 2
        assert any("may leak" in m and "send_chunk" in m for m in messages)
        assert any(
            "already have been released" in m and "flaky_ack" in m
            for m in messages
        )

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_rep011.py", select={"REP011"})
        assert result.diagnostics == []


class TestREP012SilentException:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep012.py", select={"REP012"})
        messages = [d.message for d in result.diagnostics]
        assert len(messages) == 2
        assert any("except Exception" in m for m in messages)
        assert any("bare except" in m for m in messages)

    def test_good_fixture_clean(self, tmp_path):
        # record_event, format_exc-and-reraise, and narrow handlers pass.
        result = lint_fixtures(tmp_path, "good_rep012.py", select={"REP012"})
        assert result.diagnostics == []

    def test_suppression_with_justification(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir(exist_ok=True)
        (src / "justified.py").write_text(
            "def run(work, failure):\n"
            "    try:\n"
            "        work()\n"
            "    # Not swallowed: the caller re-raises from ``failure``.\n"
            "    except Exception as exc:  # replint: disable=REP012\n"
            "        failure.append(exc)\n",
            encoding="utf-8",
        )
        result = Linter(DEFAULT_RULES, select={"REP012"}).run([str(src)])
        assert result.diagnostics == []
        assert result.suppressed == 1


class TestNewRulesRoleScoping:
    def test_rules_skip_test_code(self, tmp_path):
        # The concurrency pack applies to library code only: tests may
        # block, hold locks across asserts, and swallow exceptions.
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir(exist_ok=True)
        (tests_dir / "test_fixture_style.py").write_text(
            (FIXTURES / "bad_rep012.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        result = Linter(
            DEFAULT_RULES, select={"REP008", "REP009", "REP010", "REP011", "REP012"}
        ).run([str(tests_dir)])
        assert result.diagnostics == []
