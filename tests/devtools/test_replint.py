"""Tests for the replint static-analysis pass (repro.devtools).

Each REP rule gets a good/bad fixture pair from ``replint_fixtures/``.
Fixtures are copied into a throwaway ``src/`` tree before linting
because :func:`repro.devtools.engine.infer_role` classifies anything
under a ``tests`` path component as test code, which most rules skip
— and the fixtures directory itself is excluded from discovery so the
deliberately bad sources never leak into a real lint run.
"""

import json
from pathlib import Path

import pytest

from repro.devtools.engine import (
    Linter,
    discover_files,
    infer_role,
    parse_suppressions,
    render_json,
    render_text,
)
from repro.devtools.lint import main as lint_main
from repro.devtools.marks import debug_asserts
from repro.devtools.rules import DEFAULT_RULES, RULES_BY_ID

FIXTURES = Path(__file__).parent / "replint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_fixtures(tmp_path, *names, select=None):
    """Copy fixtures into ``tmp_path/src`` (library role) and lint."""
    src = tmp_path / "src"
    src.mkdir(exist_ok=True)
    for name in names:
        (src / name).write_text(
            (FIXTURES / name).read_text(encoding="utf-8"), encoding="utf-8"
        )
    return Linter(DEFAULT_RULES, select=select).run([str(src)])


def rule_ids(result):
    return [diag.rule_id for diag in result.diagnostics]


# ---------------------------------------------------------------------------
# Per-rule fixture pairs: the bad fixture must fire, the good must not.
# ---------------------------------------------------------------------------


class TestREP001Determinism:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep001.py")
        assert rule_ids(result) == ["REP001"] * 6

    def test_flags_each_violation_kind(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep001.py")
        messages = " | ".join(d.message for d in result.diagnostics)
        assert "stdlib `random`" in messages
        assert "without a seed" in messages
        assert "global RNG" in messages
        assert "`time.time()`" in messages
        assert "datetime" in messages

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_rep001.py")
        assert result.diagnostics == []
        assert result.exit_code == 0


class TestREP002SketchContract:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep002.py", select={"REP002"})
        messages = [d.message for d in result.diagnostics]
        assert len(messages) == 4
        assert any("does not subclass QuantileSketch" in m for m in messages)
        assert any("no validate()" in m for m in messages)
        assert any("positional arguments" in m for m in messages)
        assert any("keyword-only" in m for m in messages)

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_sketch.py")
        assert result.diagnostics == []


class TestREP003SnapshotCoverage:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep003.py", select={"REP003"})
        messages = [d.message for d in result.diagnostics]
        assert len(messages) == 3
        assert any("not @snapshottable" in m for m in messages)
        assert any("reads keys never written" in m and "n" in m for m in messages)
        assert any(
            "writes keys never read" in m and "stale" in m for m in messages
        )

    def test_suggests_registry_key_as_tag(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep003.py", select={"REP003"})
        missing = [
            d for d in result.diagnostics if "not @snapshottable" in d.message
        ]
        assert len(missing) == 1
        assert 'snapshottable("unsnapshotted")' in missing[0].message

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_sketch.py", select={"REP003"})
        assert result.diagnostics == []


class TestREP004NoLibraryAssert:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep004.py")
        assert rule_ids(result) == ["REP004", "REP004"]

    def test_debug_asserts_allowlist(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_rep004.py")
        assert result.diagnostics == []

    def test_asserts_allowed_in_test_role(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_thing.py").write_text(
            "def test_ok():\n    assert 1 + 1 == 2\n", encoding="utf-8"
        )
        result = Linter(DEFAULT_RULES).run([str(tests_dir)])
        assert result.diagnostics == []


class TestREP005MetricsPreregistration:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "instruments.py", "bad_rep005.py")
        assert rule_ids(result) == ["REP005"]
        assert "repro.bogus.metric" in result.diagnostics[0].message

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "instruments.py", "good_rep005.py")
        assert result.diagnostics == []

    def test_summary_method_checked(self, tmp_path):
        # summary() takes a metric name like inc()/observe(); an
        # unregistered name recorded through it must fire.
        result = lint_fixtures(
            tmp_path, "instruments.py", "bad_rep005_summary.py"
        )
        assert rule_ids(result) == ["REP005"]
        assert "latency.unregistered_ns" in result.diagnostics[0].message

    def test_telemetry_names_clean(self, tmp_path):
        result = lint_fixtures(
            tmp_path, "instruments.py", "good_rep005_telemetry.py"
        )
        assert result.diagnostics == []

    def test_serve_names_clean(self, tmp_path):
        # The query-tier daemon's serve.* families (every instrument
        # kind it records) must count as preregistered.
        result = lint_fixtures(
            tmp_path, "instruments.py", "good_rep005_serve.py"
        )
        assert result.diagnostics == []

    def test_real_instrument_table_is_found(self):
        # The live src tree declares DEFAULT_INSTRUMENTS; every recorded
        # metric name must already be preregistered there.
        result = Linter(DEFAULT_RULES, select={"REP005"}).run(
            [str(REPO_ROOT / "src")]
        )
        assert result.diagnostics == []


class TestREP006WorkerSeedDiscipline:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep006.py", select={"REP006"})
        messages = [d.message for d in result.diagnostics]
        assert len(messages) == 4
        assert any("takes no ShardPlan" in m for m in messages)
        assert any("np.random.default_rng" in m for m in messages)
        assert any("make_rng" in m for m in messages)
        assert any("seed= passed" in m for m in messages)

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_rep006.py")
        assert result.diagnostics == []

    def test_non_worker_functions_ignored(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "harness.py").write_text(
            "from repro.core.rng import make_rng\n\n\n"
            "def run_experiment(seed):\n"
            "    return make_rng(seed)\n",
            encoding="utf-8",
        )
        result = Linter(DEFAULT_RULES, select={"REP006"}).run([str(src)])
        assert result.diagnostics == []


class TestREP007FaultInjectionDiscipline:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep007.py", select={"REP007"})
        messages = [d.message for d in result.diagnostics]
        assert len(messages) == 4
        assert any("at module level" in m for m in messages)
        assert any(
            "`process.terminate()` in reap" in m for m in messages
        )
        assert any("`process.kill()` in hard_stop" in m for m in messages)
        assert any("`os._exit` in crash_self" in m for m in messages)

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_rep007.py", select={"REP007"})
        assert result.diagnostics == []
        # The supervision-cleanup line is audited, not silently passed.
        assert result.suppressed == 1

    def test_applies_to_test_role_too(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_kill.py").write_text(
            "def test_crash(worker):\n    worker.terminate()\n",
            encoding="utf-8",
        )
        result = Linter(DEFAULT_RULES, select={"REP007"}).run(
            [str(tests_dir)]
        )
        assert rule_ids(result) == ["REP007"]

    def test_plan_reference_via_attribute(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "chaos.py").write_text(
            "import os\nimport signal\n\n\n"
            "class Harness:\n"
            "    def crash(self, pid):\n"
            "        if self.fault_plan.kill_worker_at:\n"
            "            os.kill(pid, signal.SIGKILL)\n",
            encoding="utf-8",
        )
        result = Linter(DEFAULT_RULES, select={"REP007"}).run([str(src)])
        assert result.diagnostics == []

    def test_live_tree_is_clean(self):
        # Every kill in the real tree rides a fault plan or carries an
        # explicit supervision suppression.
        result = Linter(DEFAULT_RULES, select={"REP007"}).run(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
        )
        assert result.diagnostics == []


class TestREP013HotPathHashConstruction:
    def test_bad_fixture_fires(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep013.py", select={"REP013"})
        messages = [d.message for d in result.diagnostics]
        assert len(messages) == 6
        assert any("`KWiseHash` constructed inside hot kernel "
                   "`update_batch`" in m for m in messages)
        assert any("`SignHash`" in m for m in messages)
        assert any("`make_rng`" in m for m in messages)
        assert any("`_compute_bucket_plane` constructed inside hot kernel "
                   "`extend`" in m for m in messages)

    def test_good_fixture_clean(self, tmp_path):
        result = lint_fixtures(tmp_path, "good_rep013.py", select={"REP013"})
        assert result.diagnostics == []

    def test_init_construction_is_fine(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "warm.py").write_text(
            "from repro.sketches.hashing import KWiseHash, make_rng\n\n\n"
            "class S:\n"
            "    def __init__(self, w, d, seed):\n"
            "        rng = make_rng(seed)\n"
            "        self._hashes = [KWiseHash(2, w, rng)"
            " for _ in range(d)]\n",
            encoding="utf-8",
        )
        result = Linter(DEFAULT_RULES, select={"REP013"}).run([str(src)])
        assert result.diagnostics == []

    def test_skips_test_role(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_hash.py").write_text(
            "from repro.sketches.hashing import KWiseHash, make_rng\n\n\n"
            "def update_batch(keys):\n"
            "    h = KWiseHash(2, 8, make_rng(0))\n"
            "    return h(keys)\n",
            encoding="utf-8",
        )
        result = Linter(DEFAULT_RULES, select={"REP013"}).run(
            [str(tests_dir)]
        )
        assert result.diagnostics == []

    def test_live_tree_is_clean(self):
        # The real sketches build hashes in __init__ and pull planes
        # from the hashplan cache — the hot kernels never construct.
        result = Linter(DEFAULT_RULES, select={"REP013"}).run(
            [str(REPO_ROOT / "src")]
        )
        assert result.diagnostics == []


# ---------------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_line_level_disable(self, tmp_path):
        result = lint_fixtures(tmp_path, "suppressed_line.py")
        assert rule_ids(result) == ["REP001"]
        assert result.suppressed == 1

    def test_file_level_disable(self, tmp_path):
        result = lint_fixtures(tmp_path, "suppressed_file.py")
        assert result.diagnostics == []
        assert result.suppressed == 2

    def test_all_wildcard(self, tmp_path):
        result = lint_fixtures(tmp_path, "suppressed_all.py")
        assert result.diagnostics == []
        assert result.suppressed == 1

    def test_parse_suppressions_shapes(self):
        line_rules, file_rules = parse_suppressions(
            "x = 1  # replint: disable=REP001, REP004\n"
            "# replint: disable-file=REP005\n"
        )
        assert line_rules == {1: {"REP001", "REP004"}}
        assert file_rules == {"REP005"}


# ---------------------------------------------------------------------------
# Engine behavior: discovery, roles, selection, broken files, rendering.
# ---------------------------------------------------------------------------


class TestEngine:
    def test_fixture_dirs_excluded_from_discovery(self):
        files = discover_files([str(Path(__file__).parent)])
        assert all("replint_fixtures" not in f.parts for f in files)
        # Explicit file paths still work, so fixtures stay lintable.
        explicit = discover_files([str(FIXTURES / "bad_rep001.py")])
        assert len(explicit) == 1

    def test_role_inference(self):
        assert infer_role(Path("src/repro/core/base.py")) == "library"
        assert infer_role(Path("tests/core/test_base.py")) == "tests"
        assert infer_role(Path("benchmarks/bench_fig1.py")) == "benchmarks"

    def test_select_limits_rules(self, tmp_path):
        result = lint_fixtures(
            tmp_path, "bad_rep001.py", "bad_rep004.py", select={"REP004"}
        )
        assert set(rule_ids(result)) == {"REP004"}

    def test_syntax_error_reported_as_rep000(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "broken.py").write_text("def f(:\n", encoding="utf-8")
        result = Linter(DEFAULT_RULES).run([str(src)])
        assert rule_ids(result) == ["REP000"]
        assert result.exit_code == 1

    def test_render_text_and_json(self, tmp_path):
        result = lint_fixtures(tmp_path, "bad_rep004.py")
        text = render_text(result)
        assert "REP004" in text
        assert "2 problem(s)" in text
        payload = json.loads(render_json(result))
        assert payload["files_checked"] == 1
        assert [d["rule_id"] for d in payload["diagnostics"]] == [
            "REP004",
            "REP004",
        ]

    def test_rule_catalog_is_complete(self):
        assert sorted(RULES_BY_ID) == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
            "REP010",
            "REP011",
            "REP012",
            "REP013",
        ]
        for rule in DEFAULT_RULES:
            assert rule.title
            assert rule.rationale
            assert rule.roles


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "clean.py").write_text("X = 1\n", encoding="utf-8")
        assert lint_main([str(src)]) == 0
        assert "0 problem(s)" in capsys.readouterr().out

    @staticmethod
    def _bad_file(tmp_path):
        # CLI tests need a library-role path: linted by explicit file
        # path the fixture would classify as test code and REP004
        # would not apply.
        src = tmp_path / "src"
        src.mkdir(exist_ok=True)
        target = src / "bad_rep004.py"
        target.write_text(
            (FIXTURES / "bad_rep004.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        return target

    def test_exit_one_on_findings(self, tmp_path, capsys):
        code = lint_main([str(self._bad_file(tmp_path))])
        assert code == 1
        assert "REP004" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        code = lint_main(
            ["--format", "json", str(self._bad_file(tmp_path))]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"]

    def test_unknown_rule_id_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            lint_main(["--select", "REP999", "src"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES_BY_ID:
            assert rule_id in out


# ---------------------------------------------------------------------------
# Marks and the live tree.
# ---------------------------------------------------------------------------


def test_debug_asserts_is_identity():
    def helper():
        return 42

    assert debug_asserts(helper) is helper
    assert debug_asserts(helper)() == 42


def test_live_tree_is_clean():
    """The repo's own sources must lint clean — replint gates CI."""
    paths = [
        str(REPO_ROOT / name)
        for name in ("src", "tests", "benchmarks", "examples")
        if (REPO_ROOT / name).exists()
    ]
    result = Linter(DEFAULT_RULES).run(paths)
    assert result.diagnostics == [], render_text(result)
