"""Unit tests for the replint v2 CFG and dataflow engine."""

import ast
import textwrap

from repro.devtools import flow


def get_fn(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    fns = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if name is None:
        return fns[0]
    return next(fn for fn in fns if fn.name == name)


def fn_cfg(source, name=None):
    return flow.build_cfg(get_fn(source, name))


def stmt_node(cfg, stmt_type):
    return next(
        node
        for node in cfg.iter_nodes(flow.STMT)
        if isinstance(node.stmt, stmt_type)
    )


def lock_events(cfg):
    """acquire/release callables keyed on ``<name>.acquire()``/``.release()``."""

    def tokens(node, attr):
        if node.kind != flow.STMT or node.stmt is None:
            return frozenset()
        found = set()
        for root in flow.stmt_header_exprs(node.stmt):
            for sub in ast.walk(root):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == attr
                    and isinstance(sub.func.value, ast.Name)
                ):
                    found.add(sub.func.value.id)
        return frozenset(found)

    return (
        lambda node: tokens(node, "acquire"),
        lambda node: tokens(node, "release"),
    )


def may_held_at_exit(cfg):
    acquires, releases = lock_events(cfg)
    analysis = flow.HeldSetAnalysis(acquires, releases, mode=flow.MAY)
    in_states, _ = flow.solve(cfg, analysis)
    return in_states[cfg.exit.index]


class TestCFGShapes:
    def test_linear_chain(self):
        cfg = fn_cfg(
            """
            def f(x):
                a = x + 1
                b = a * 2
                return b
            """
        )
        stmts = list(cfg.iter_nodes(flow.STMT))
        assert len(stmts) == 3
        assert cfg.entry.succs == [stmts[0].index]
        assert cfg.exit.index in stmts[-1].succs

    def test_if_branches_join(self):
        cfg = fn_cfg(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        ret = stmt_node(cfg, ast.Return)
        assert len(cfg.predecessors()[ret.index]) == 2

    def test_loop_head_cycles_and_break_exits(self):
        cfg = fn_cfg(
            """
            def f(xs):
                for x in xs:
                    if x:
                        break
                return 1
            """
        )
        head = stmt_node(cfg, ast.For)
        brk = stmt_node(cfg, ast.Break)
        ret = stmt_node(cfg, ast.Return)
        # The if-condition loops back to the head; break exits to return.
        assert head.index in cfg.predecessors()[head.index] or any(
            head.index in cfg.nodes[p].succs for p in cfg.predecessors()[head.index]
        )
        assert ret.index in brk.succs
        assert head.index in cfg.predecessors()[ret.index]

    def test_continue_edges_to_loop_head(self):
        cfg = fn_cfg(
            """
            def f(xs):
                for x in xs:
                    if x:
                        continue
                    handle(x)
            """
        )
        head = stmt_node(cfg, ast.For)
        cont = stmt_node(cfg, ast.Continue)
        assert head.index in cont.succs

    def test_with_brackets_body(self):
        cfg = fn_cfg(
            """
            def f(lock):
                with lock:
                    touch()
            """
        )
        enters = list(cfg.iter_nodes(flow.WITH_ENTER))
        exits = list(cfg.iter_nodes(flow.WITH_EXIT))
        assert len(enters) == 1 and len(exits) == 1
        assert enters[0].item is exits[0].item

    def test_return_inside_with_synthesizes_exit(self):
        cfg = fn_cfg(
            """
            def f(lock):
                with lock:
                    return 1
            """
        )
        ret = stmt_node(cfg, ast.Return)
        succ = cfg.nodes[ret.succs[0]]
        assert succ.kind == flow.WITH_EXIT
        assert cfg.exit.index in succ.succs

    def test_try_body_may_raise_into_handler(self):
        cfg = fn_cfg(
            """
            def f(x):
                try:
                    a = x()
                    b = a + 1
                except ValueError:
                    b = 0
                return b
            """
        )
        handler = stmt_node(cfg, ast.ExceptHandler)
        # The two body statements plus the try's own predecessor (entry)
        # can all raise into the handler.
        assert len(cfg.predecessors()[handler.index]) == 3

    def test_dead_code_after_return_is_unreachable(self):
        cfg = fn_cfg(
            """
            def f():
                return 1
                x = 2
            """
        )
        dead = stmt_node(cfg, ast.Assign)
        assert cfg.predecessors()[dead.index] == []
        in_states, _ = flow.solve(cfg, flow.ReachingDefinitions(cfg))
        assert in_states[dead.index] is None


class TestFinallyRouting:
    def test_raise_routes_through_finally(self):
        cfg = fn_cfg(
            """
            def f(lock, items):
                lock.acquire()
                try:
                    if not items:
                        raise ValueError(items)
                finally:
                    lock.release()
            """
        )
        assert may_held_at_exit(cfg) == frozenset()

    def test_raise_without_finally_leaks(self):
        cfg = fn_cfg(
            """
            def f(lock, items):
                lock.acquire()
                if not items:
                    raise ValueError(items)
                lock.release()
            """
        )
        assert may_held_at_exit(cfg) == frozenset({"lock"})

    def test_return_routes_through_finally(self):
        cfg = fn_cfg(
            """
            def f(lock, key, table):
                lock.acquire()
                try:
                    if key in table:
                        return table[key]
                    return None
                finally:
                    lock.release()
            """
        )
        assert may_held_at_exit(cfg) == frozenset()

    def test_break_routes_through_finally_to_loop_exit(self):
        cfg = fn_cfg(
            """
            def f(xs, log):
                for x in xs:
                    try:
                        if x:
                            break
                    finally:
                        log.append(x)
                return 1
            """
        )
        ret = stmt_node(cfg, ast.Return)
        append_node = next(
            node
            for node in cfg.iter_nodes(flow.STMT)
            if isinstance(node.stmt, ast.Expr)
        )
        # The break re-routes from the finally's out-node to the loop exit.
        assert ret.index in append_node.succs

    def test_raise_in_body_prefers_handler_over_finally(self):
        cfg = fn_cfg(
            """
            def f(x):
                try:
                    raise ValueError(x)
                except ValueError:
                    handled = True
                finally:
                    cleanup = True
            """
        )
        raise_node = stmt_node(cfg, ast.Raise)
        handler = stmt_node(cfg, ast.ExceptHandler)
        assert handler.index in raise_node.succs


class TestSolveAndReachingDefs:
    def test_params_reach_from_entry(self):
        cfg = fn_cfg(
            """
            def f(flag):
                return flag
            """
        )
        in_states, _ = flow.solve(cfg, flow.ReachingDefinitions(cfg))
        ret = stmt_node(cfg, ast.Return)
        assert flow.definition_nodes(in_states[ret.index], "flag") == [
            cfg.entry.index
        ]

    def test_branch_definitions_merge(self):
        cfg = fn_cfg(
            """
            def f(flag):
                x = 1
                if flag:
                    x = 2
                return x
            """
        )
        in_states, _ = flow.solve(cfg, flow.ReachingDefinitions(cfg))
        ret = stmt_node(cfg, ast.Return)
        assert len(flow.definition_nodes(in_states[ret.index], "x")) == 2

    def test_redefinition_kills_prior(self):
        cfg = fn_cfg(
            """
            def f():
                x = 1
                x = 2
                return x
            """
        )
        in_states, _ = flow.solve(cfg, flow.ReachingDefinitions(cfg))
        ret = stmt_node(cfg, ast.Return)
        assert len(flow.definition_nodes(in_states[ret.index], "x")) == 1

    def test_with_as_binds_at_enter(self):
        cfg = fn_cfg(
            """
            def f(path):
                with open(path) as handle:
                    return handle.read()
            """
        )
        in_states, _ = flow.solve(cfg, flow.ReachingDefinitions(cfg))
        ret = stmt_node(cfg, ast.Return)
        enter = next(cfg.iter_nodes(flow.WITH_ENTER))
        assert flow.definition_nodes(in_states[ret.index], "handle") == [
            enter.index
        ]

    def test_assigned_names_targets(self):
        stmt = ast.parse("a, (b, *c) = rhs").body[0]
        assert sorted(flow.assigned_names(stmt)) == ["a", "b", "c"]


class TestHeldSetAnalysis:
    def test_may_vs_must_on_branch(self):
        cfg = fn_cfg(
            """
            def f(flag, a_lock):
                if flag:
                    a_lock.acquire()
                probe()
                a_lock.release()
            """
        )
        acquires, releases = lock_events(cfg)
        probe = next(
            node
            for node in cfg.iter_nodes(flow.STMT)
            if isinstance(node.stmt, ast.Expr)
            and isinstance(node.stmt.value, ast.Call)
            and isinstance(node.stmt.value.func, ast.Name)
        )
        may_in, _ = flow.solve(
            cfg, flow.HeldSetAnalysis(acquires, releases, mode=flow.MAY)
        )
        must_in, _ = flow.solve(
            cfg, flow.HeldSetAnalysis(acquires, releases, mode=flow.MUST)
        )
        assert may_in[probe.index] == frozenset({"a_lock"})
        assert must_in[probe.index] == frozenset()

    def test_invalid_mode_rejected(self):
        try:
            flow.HeldSetAnalysis(
                lambda n: frozenset(), lambda n: frozenset(), mode="bogus"
            )
        except ValueError as exc:
            assert "bogus" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestCallIteration:
    def test_awaited_flag_and_nested_skip(self):
        fn = get_fn(
            """
            async def f(loop, lock):
                await lock.acquire()
                loop.run_in_executor(None, lambda: blocking())
                helper()
            """
        )
        rendered = sorted(
            (ast.unparse(call.func), awaited)
            for call, awaited in flow.iter_calls(fn, skip_nested=True)
        )
        assert rendered == [
            ("helper", False),
            ("lock.acquire", True),
            ("loop.run_in_executor", False),
        ]

    def test_nested_def_bodies_excluded(self):
        fn = get_fn(
            """
            def outer():
                def inner():
                    hidden()
                visible()
            """,
            name="outer",
        )
        names = [
            ast.unparse(call.func)
            for call, _ in flow.iter_calls(fn, skip_nested=True)
        ]
        assert names == ["visible"]

    def test_is_async_function(self):
        assert flow.is_async_function(get_fn("async def f():\n    pass"))
        assert not flow.is_async_function(get_fn("def f():\n    pass"))
