"""Tests for Count-Min, Count-Sketch, ExactCounter and SubsetSumSketch.

Key invariants (from the papers the sketches come from):

* Count-Min never underestimates on insert-only streams.
* Count-Sketch is unbiased across seeds.
* Batch updates are equivalent to loops of single updates.
* Turnstile: insert-then-delete leaves the counters exactly as before.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError, UniverseOverflowError
from repro.sketches import (
    CountMinSketch,
    CountSketch,
    ExactCounter,
    SubsetSumSketch,
)

ALL_SKETCHES = [
    lambda seed: CountMinSketch(width=256, depth=5, seed=seed),
    lambda seed: CountSketch(width=256, depth=5, seed=seed),
    lambda seed: ExactCounter(universe=1 << 12),
    lambda seed: SubsetSumSketch(groups=5, reps=32, seed=seed),
]

SKETCH_IDS = ["countmin", "countsketch", "exact", "subsetsum"]


@pytest.fixture(params=list(zip(ALL_SKETCHES, SKETCH_IDS)), ids=SKETCH_IDS)
def sketch_factory(request):
    return request.param[0]


def _counts_of(sketch):
    """Snapshot of the internal counter state for equality checks."""
    if isinstance(sketch, ExactCounter):
        return sketch._counts.copy()
    if isinstance(sketch, SubsetSumSketch):
        return sketch._counters.copy()
    return sketch._table.copy()


class TestCommonBehavior:
    def test_batch_equals_loop(self, sketch_factory, rng) -> None:
        keys = rng.integers(0, 1 << 12, size=500, dtype=np.int64)
        one = sketch_factory(33)
        two = sketch_factory(33)
        for k in keys.tolist():
            one.update(int(k))
        two.update_batch(keys)
        assert np.array_equal(_counts_of(one), _counts_of(two))

    def test_insert_delete_cancels(self, sketch_factory, rng) -> None:
        keys = rng.integers(0, 1 << 12, size=300, dtype=np.int64)
        sk = sketch_factory(5)
        sk.update_batch(keys)
        before = _counts_of(sk)
        extra = rng.integers(0, 1 << 12, size=200, dtype=np.int64)
        sk.update_batch(extra, 1)
        sk.update_batch(extra, -1)
        assert np.array_equal(_counts_of(sk), before)

    def test_estimate_batch_matches_scalar(self, sketch_factory, rng) -> None:
        keys = rng.integers(0, 1 << 12, size=400, dtype=np.int64)
        sk = sketch_factory(9)
        sk.update_batch(keys)
        probe = np.arange(0, 1 << 12, 173, dtype=np.int64)
        batch = sk.estimate_batch(probe)
        for k, b in zip(probe.tolist(), batch.tolist()):
            assert sk.estimate(int(k)) == b

    def test_size_words_positive(self, sketch_factory) -> None:
        assert sketch_factory(0).size_words() > 0


class TestCountMin:
    def test_never_underestimates(self, rng) -> None:
        sk = CountMinSketch(width=512, depth=5, seed=1)
        keys = rng.integers(0, 1 << 20, size=5_000, dtype=np.int64)
        sk.update_batch(keys)
        true = {}
        for k in keys.tolist():
            true[k] = true.get(k, 0) + 1
        for k, f in list(true.items())[:200]:
            assert sk.estimate(k) >= f

    def test_error_bound(self, rng) -> None:
        """Estimate error should be ~ n / w on uniform data."""
        n, w = 20_000, 1024
        sk = CountMinSketch(width=w, depth=5, seed=2)
        keys = rng.integers(0, 1 << 20, size=n, dtype=np.int64)
        sk.update_batch(keys)
        probe = rng.integers(0, 1 << 20, size=100, dtype=np.int64)
        errors = sk.estimate_batch(probe)  # most probes have true freq ~0
        assert float(np.mean(errors)) < 5 * n / w

    def test_rejects_bad_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            CountMinSketch(width=0, depth=3)
        with pytest.raises(InvalidParameterError):
            CountMinSketch(width=8, depth=0)


class TestCountSketch:
    def test_unbiased_across_seeds(self, rng) -> None:
        """Mean estimate over many seeds should approach the truth."""
        keys = rng.integers(0, 1 << 16, size=2_000, dtype=np.int64)
        target = int(keys[0])
        truth = int((keys == target).sum())
        estimates = []
        for seed in range(60):
            sk = CountSketch(width=64, depth=1, seed=seed)
            sk.update_batch(keys)
            estimates.append(sk.estimate(target))
        err = abs(float(np.mean(estimates)) - truth)
        # std of the mean ~ sqrt(F2/w)/sqrt(60); generous envelope below.
        assert err < 3 * np.sqrt(len(keys) / 64 / 60) * np.sqrt(
            len(keys) / (1 << 16) + 1
        ) + 5

    def test_heavy_hitter_recovered(self, rng) -> None:
        keys = rng.integers(0, 1 << 20, size=5_000, dtype=np.int64)
        heavy = np.full(2_000, 777, dtype=np.int64)
        sk = CountSketch(width=512, depth=5, seed=3)
        sk.update_batch(np.concatenate([keys, heavy]))
        assert abs(sk.estimate(777) - 2_000) < 300

    def test_variance_estimate_tracks_f2(self, rng) -> None:
        keys = rng.integers(0, 1 << 16, size=10_000, dtype=np.int64)
        sk = CountSketch(width=256, depth=5, seed=4)
        sk.update_batch(keys)
        f2 = float(
            (np.bincount(keys.astype(np.int64)).astype(np.float64) ** 2).sum()
        )
        est = sk.variance_estimate() * 256  # un-normalize: ~F2
        assert 0.5 * f2 < est < 2.0 * f2

    def test_rejects_bad_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            CountSketch(width=-1, depth=3)


class TestExactCounter:
    def test_exact(self, rng) -> None:
        sk = ExactCounter(universe=100)
        keys = rng.integers(0, 100, size=1_000, dtype=np.int64)
        sk.update_batch(keys)
        counts = np.bincount(keys, minlength=100)
        assert np.array_equal(sk.estimate_batch(np.arange(100)), counts)

    def test_prefix_sums(self, rng) -> None:
        sk = ExactCounter(universe=64)
        keys = rng.integers(0, 64, size=500, dtype=np.int64)
        sk.update_batch(keys)
        ps = sk.prefix_sums()
        assert ps[0] == 0 and ps[-1] == 500
        for k in (1, 13, 63):
            assert ps[k] == int((keys < k).sum())

    def test_rejects_out_of_universe(self) -> None:
        sk = ExactCounter(universe=10)
        with pytest.raises(UniverseOverflowError):
            sk.update(10)
        with pytest.raises(UniverseOverflowError):
            sk.update(-1)
        with pytest.raises(UniverseOverflowError):
            sk.update_batch(np.int64([3, 11]))
        with pytest.raises(UniverseOverflowError):
            sk.estimate(12)

    def test_variance_is_zero(self) -> None:
        assert ExactCounter(universe=4).variance_estimate() == 0.0


class TestSubsetSum:
    def test_unbiased_across_seeds(self, rng) -> None:
        keys = rng.integers(0, 1 << 10, size=1_000, dtype=np.int64)
        heavy = np.full(400, 123, dtype=np.int64)
        stream = np.concatenate([keys, heavy])
        estimates = []
        for seed in range(40):
            sk = SubsetSumSketch(groups=1, reps=16, seed=seed)
            sk.update_batch(stream)
            estimates.append(sk.estimate(123))
        truth = 400 + int((keys == 123).sum())
        assert abs(float(np.mean(estimates)) - truth) < 60

    def test_rejects_bad_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            SubsetSumSketch(groups=0, reps=4)
        with pytest.raises(InvalidParameterError):
            SubsetSumSketch(groups=4, reps=0)


@given(st.lists(st.integers(min_value=0, max_value=255), max_size=60))
def test_countsketch_state_linear(keys) -> None:
    """Count-Sketch state is linear: inserting a multiset then deleting a
    sub-multiset equals inserting the difference."""
    keys = np.asarray(keys, dtype=np.int64)
    half = keys[: len(keys) // 2]
    a = CountSketch(width=32, depth=3, seed=77)
    b = CountSketch(width=32, depth=3, seed=77)
    if keys.size:
        a.update_batch(keys)
    if half.size:
        a.update_batch(half, -1)
    rest = keys[len(keys) // 2 :]
    if rest.size:
        b.update_batch(rest)
    assert np.array_equal(a._table, b._table)
