"""Tests for the k-wise independent hash families.

The crucial property is that the vectorized modular arithmetic is *exact*:
``mulmod61`` must agree with Python big-int arithmetic for every operand,
and polynomial evaluation must match a direct big-int evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.sketches.hashing import (
    KWiseHash,
    MERSENNE_P,
    SignHash,
    make_rng,
    mulmod61,
)


class TestMulmod61:
    @given(
        a=st.integers(min_value=0, max_value=MERSENNE_P - 1),
        b=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_matches_bigint(self, a: int, b: int) -> None:
        assert int(mulmod61(a, b)) == (a * b) % MERSENNE_P

    def test_extremes(self) -> None:
        cases = [
            (MERSENNE_P - 1, (1 << 32) - 1),
            (MERSENNE_P - 1, 1),
            (0, (1 << 32) - 1),
            (1, 0),
            ((1 << 61) - 2, (1 << 32) - 1),
        ]
        for a, b in cases:
            assert int(mulmod61(a, b)) == (a * b) % MERSENNE_P

    def test_vectorized_matches_scalar(self) -> None:
        rng = make_rng(1)
        a = rng.integers(0, MERSENNE_P, size=1000).astype(np.uint64)
        b = rng.integers(0, 1 << 32, size=1000).astype(np.uint64)
        out = mulmod61(a, b)
        for i in range(0, 1000, 97):
            assert int(out[i]) == (int(a[i]) * int(b[i])) % MERSENNE_P


class TestKWiseHash:
    def test_polynomial_matches_bigint(self) -> None:
        rng = make_rng(7)
        h = KWiseHash(4, 1 << 20, rng)
        coeffs = [int(c) for c in h._coeffs]
        keys = make_rng(8).integers(0, 1 << 32, size=200).astype(np.uint64)
        got = h(keys)
        for k, g in zip(keys.tolist(), got.tolist()):
            val = 0
            for c in coeffs:
                val = (val * k + c) % MERSENNE_P
            assert g == val % (1 << 20)

    def test_range_respected(self) -> None:
        rng = make_rng(3)
        for w in (1, 2, 7, 1024):
            h = KWiseHash(2, w, rng)
            out = h(np.arange(10_000, dtype=np.uint64))
            assert out.min() >= 0 and out.max() < w

    def test_deterministic_given_seed(self) -> None:
        keys = np.arange(1000, dtype=np.uint64)
        h1 = KWiseHash(2, 64, make_rng(42))
        h2 = KWiseHash(2, 64, make_rng(42))
        assert np.array_equal(h1(keys), h2(keys))

    def test_different_seeds_differ(self) -> None:
        keys = np.arange(1000, dtype=np.uint64)
        h1 = KWiseHash(2, 1 << 30, make_rng(1))
        h2 = KWiseHash(2, 1 << 30, make_rng(2))
        assert not np.array_equal(h1(keys), h2(keys))

    def test_pairwise_uniformity(self) -> None:
        """Buckets of a pairwise hash should be roughly balanced."""
        h = KWiseHash(2, 16, make_rng(11))
        counts = np.bincount(
            h(np.arange(160_000, dtype=np.uint64)), minlength=16
        )
        assert counts.min() > 8_000 and counts.max() < 12_000

    def test_rejects_large_keys(self) -> None:
        h = KWiseHash(2, 16, make_rng(0))
        with pytest.raises(InvalidParameterError):
            h(np.uint64([1 << 32]))

    def test_rejects_bad_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            KWiseHash(0, 16, make_rng(0))
        with pytest.raises(InvalidParameterError):
            KWiseHash(2, 0, make_rng(0))

    def test_hash_one_matches_array_path(self) -> None:
        h = KWiseHash(4, 97, make_rng(5))
        keys = [0, 1, 12345, (1 << 32) - 1]
        assert [h.hash_one(k) for k in keys] == h(
            np.uint64(keys)
        ).tolist()


class TestSignHash:
    def test_values_are_signs(self) -> None:
        g = SignHash(make_rng(2))
        out = g(np.arange(10_000, dtype=np.uint64))
        assert set(np.unique(out).tolist()) <= {-1, 1}

    def test_roughly_balanced(self) -> None:
        g = SignHash(make_rng(4))
        out = g(np.arange(100_000, dtype=np.uint64))
        assert abs(int(out.sum())) < 3_000

    def test_sign_one_matches_array_path(self) -> None:
        g = SignHash(make_rng(6))
        keys = [0, 5, 999_999]
        assert [g.sign_one(k) for k in keys] == g(np.uint64(keys)).tolist()

    def test_mean_of_products_near_zero(self) -> None:
        """Pairwise sign products should average out (independence proxy)."""
        g = SignHash(make_rng(9))
        out = g(np.arange(50_000, dtype=np.uint64)).astype(np.float64)
        assert abs(float((out[:-1] * out[1:]).mean())) < 0.05
