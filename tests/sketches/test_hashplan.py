"""Tests for the hash-plane cache (repro.sketches.hashplan).

The load-bearing property is *bit-identical equivalence*: every fast
path the cache enables — plane gathers, blocked-repetition dedup, the
dyadic counts-fold — only reorders commutative int64 additions, so
tables, estimates, and quantile answers must match the direct
``_poly_eval`` path exactly, not approximately.  The suite also pins
the cache's bounded-growth behavior (LRU eviction under a byte budget),
cross-instance sharing (same seed ⇒ same entries), and snapshot
hygiene (planes never serialize into envelopes).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.snapshot import restore, snapshot
from repro.obs import metrics as obs_metrics
from repro.sketches import hashplan
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.hashing import KWiseHash, SignHash, make_rng
from repro.turnstile.dcm import DyadicCountMin
from repro.turnstile.dcs import DyadicCountSketch


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts from an empty, default-budget cache."""
    hashplan.configure(hashplan.DEFAULT_CACHE_BYTES)
    yield
    hashplan.configure(hashplan.DEFAULT_CACHE_BYTES)


def _stream(seed, n, universe):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, universe, size=n)
    deltas = rng.choice(np.array([-2, -1, 1, 1, 3]), size=n)
    return keys, deltas.astype(np.int64)


# ---------------------------------------------------------------------------
# Bit-identical equivalence: plane path vs direct hashing.
# ---------------------------------------------------------------------------


class TestSketchEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        width=st.integers(2, 300),
        depth=st.integers(1, 7),
        universe_log2=st.integers(1, 12),
        data_seed=st.integers(0, 2**32 - 1),
    )
    def test_countmin_bit_identical(
        self, seed, width, depth, universe_log2, data_seed
    ):
        universe = 1 << universe_log2
        keys, deltas = _stream(data_seed, 800, universe)
        fast = CountMinSketch(width, depth, seed=seed, universe=universe)
        fast.update_batch(keys, deltas)
        with hashplan.disabled():
            slow = CountMinSketch(width, depth, seed=seed, universe=universe)
            slow.update_batch(keys, deltas)
        probe = np.arange(universe)
        assert np.array_equal(fast._table, slow._table)
        assert np.array_equal(
            fast.estimate_batch(probe),
            slow_estimates := slow.estimate_batch(probe),
        )
        with hashplan.disabled():
            # Query side: plane gather vs direct hash on the same state.
            assert np.array_equal(fast.estimate_batch(probe), slow_estimates)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        width=st.integers(2, 300),
        depth=st.integers(1, 7),
        universe_log2=st.integers(1, 12),
        data_seed=st.integers(0, 2**32 - 1),
    )
    def test_countsketch_bit_identical(
        self, seed, width, depth, universe_log2, data_seed
    ):
        universe = 1 << universe_log2
        keys, deltas = _stream(data_seed, 800, universe)
        fast = CountSketch(width, depth, seed=seed, universe=universe)
        fast.update_batch(keys, deltas)
        with hashplan.disabled():
            slow = CountSketch(width, depth, seed=seed, universe=universe)
            slow.update_batch(keys, deltas)
        probe = np.arange(universe)
        assert np.array_equal(fast._table, slow._table)
        assert np.array_equal(
            fast.estimate_batch(probe), slow.estimate_batch(probe)
        )

    def test_dedup_fallback_bit_identical(self):
        # Universe above PLANE_UNIVERSE_MAX: the blocked-repetition
        # dedup path must still produce exactly the direct tables.
        universe = hashplan.PLANE_UNIVERSE_MAX * 8
        keys, deltas = _stream(3, 5000, universe)
        keys = keys % 500  # heavy repetition so the dedup gate opens
        for cls in (CountMinSketch, CountSketch):
            fast = cls(64, 5, seed=11, universe=universe)
            fast.update_batch(keys, deltas)
            with hashplan.disabled():
                slow = cls(64, 5, seed=11, universe=universe)
                slow.update_batch(keys, deltas)
            assert np.array_equal(fast._table, slow._table)


class TestDyadicEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        universe_log2=st.integers(2, 14),
        data_seed=st.integers(0, 2**32 - 1),
    )
    def test_dcs_ingest_and_query_bit_identical(
        self, seed, universe_log2, data_seed
    ):
        keys, deltas = _stream(data_seed, 1500, 1 << universe_log2)
        deltas = np.abs(deltas)  # strict turnstile for valid quantiles
        fast = DyadicCountSketch(0.05, universe_log2, seed=seed)
        fast.update_batch(keys, deltas)
        with hashplan.disabled():
            slow = DyadicCountSketch(0.05, universe_log2, seed=seed)
            slow.update_batch(keys, deltas)
        for mine, theirs in zip(fast._levels, slow._levels):
            state = getattr(mine, "_table", None)
            other = getattr(theirs, "_table", None)
            if state is None:
                state, other = mine._counts, theirs._counts
            assert np.array_equal(state, other)
        phis = [0.01, 0.25, 0.5, 0.75, 0.99]
        assert fast.query_batch(phis) == slow.query_batch(phis)
        probe = np.arange(0, fast.universe + 1, max(1, fast.universe // 64))
        assert np.array_equal(fast.rank_batch(probe), slow.rank_batch(probe))

    def test_dcm_turnstile_deletes_bit_identical(self):
        keys, _ = _stream(5, 4000, 1 << 10)
        fast = DyadicCountMin(0.05, 10, seed=2)
        fast.update_batch(keys)
        fast.update_batch(keys[:1000], -1)
        with hashplan.disabled():
            slow = DyadicCountMin(0.05, 10, seed=2)
            slow.update_batch(keys)
            slow.update_batch(keys[:1000], -1)
        assert fast.query_batch([0.1, 0.5, 0.9]) == slow.query_batch(
            [0.1, 0.5, 0.9]
        )

    def test_small_batches_skip_the_fold(self):
        # Below FOLD_MIN_BATCH the per-level fan-out runs; results must
        # agree with the folded path for the concatenated stream.
        keys, deltas = _stream(9, 3000, 1 << 8)
        deltas = np.abs(deltas)
        folded = DyadicCountSketch(0.05, 8, seed=4)
        folded.update_batch(keys, deltas)
        trickled = DyadicCountSketch(0.05, 8, seed=4)
        step = hashplan.FOLD_MIN_BATCH // 2
        for lo in range(0, len(keys), step):
            trickled.update_batch(
                keys[lo:lo + step], deltas[lo:lo + step]
            )
        for mine, theirs in zip(folded._levels, trickled._levels):
            state = getattr(mine, "_table", getattr(mine, "_counts", None))
            other = getattr(
                theirs, "_table", getattr(theirs, "_counts", None)
            )
            assert np.array_equal(state, other)


# ---------------------------------------------------------------------------
# Snapshot hygiene: planes never ride in envelopes.
# ---------------------------------------------------------------------------


class TestSnapshotHygiene:
    def test_envelope_identical_with_and_without_planes(self):
        keys, deltas = _stream(21, 2000, 1 << 10)
        deltas = np.abs(deltas)
        warm = DyadicCountSketch(0.05, 10, seed=8)
        warm.update_batch(keys, deltas)
        with hashplan.disabled():
            cold = DyadicCountSketch(0.05, 10, seed=8)
            cold.update_batch(keys, deltas)
        # Same bytes: the warmed sketch holds no plane arrays, so the
        # envelope is exactly what the plane-free run produces.
        assert snapshot(warm) == snapshot(cold)

    def test_restore_round_trip_rehits_the_cache(self):
        keys, deltas = _stream(22, 2000, 1 << 10)
        deltas = np.abs(deltas)
        sketch = DyadicCountSketch(0.05, 10, seed=8)
        sketch.update_batch(keys, deltas)
        blob = snapshot(sketch)
        revived = restore(blob)
        hits_before = hashplan.cache().hits
        revived.update_batch(keys, deltas)
        # The restored sketch's hashes have the same coefficients, so
        # its first batch hits the already-materialized planes.
        assert hashplan.cache().hits > hits_before
        sketch.update_batch(keys, deltas)
        assert sketch.query_batch([0.5]) == revived.query_batch([0.5])

    def test_merge_after_restore_stays_linear(self):
        keys, deltas = _stream(23, 2000, 1 << 9)
        deltas = np.abs(deltas)
        a = DyadicCountMin(0.05, 9, seed=3)
        b = DyadicCountMin(0.05, 9, seed=3)
        a.update_batch(keys[:1000], deltas[:1000])
        b.update_batch(keys[1000:], deltas[1000:])
        a = restore(snapshot(a))
        a.merge(b)
        whole = DyadicCountMin(0.05, 9, seed=3)
        whole.update_batch(keys, deltas)
        assert a.query_batch([0.25, 0.5, 0.75]) == whole.query_batch(
            [0.25, 0.5, 0.75]
        )


# ---------------------------------------------------------------------------
# The cache itself: sharing, bounding, eviction, metering.
# ---------------------------------------------------------------------------


class TestHashPlaneCache:
    def test_same_seed_instances_share_entries(self):
        universe = 1 << 10
        a = CountSketch(64, 5, seed=42, universe=universe)
        b = CountSketch(64, 5, seed=42, universe=universe)
        keys = np.arange(universe, dtype=np.uint64)
        a.update_batch(keys)
        entries_after_first = len(hashplan.cache())
        b.update_batch(keys)
        assert len(hashplan.cache()) == entries_after_first
        assert hashplan.cache().hits > 0

    def test_different_seeds_do_not_collide(self):
        universe = 1 << 10
        a = CountMinSketch(64, 5, seed=1, universe=universe)
        b = CountMinSketch(64, 5, seed=2, universe=universe)
        keys = np.arange(universe, dtype=np.uint64)
        a.update_batch(keys)
        b.update_batch(keys)
        assert len(hashplan.cache()) == 2
        assert not np.array_equal(a._table, b._table)

    def test_byte_budget_evicts_lru(self):
        cache = hashplan.configure(64 * 1024)
        rng = make_rng(0)
        hashes = [[KWiseHash(2, 64, rng) for _ in range(3)]
                  for _ in range(8)]
        for hs in hashes:
            hashplan.bucket_planes(hs, 1 << 12)  # 48 KiB per plane
        stats = cache.stats()
        assert stats["evictions"] > 0
        assert cache.nbytes <= 64 * 1024
        # Most-recent entry survives.
        assert hashplan.bucket_planes(hashes[-1], 1 << 12) is not None
        assert cache.hits >= 1

    def test_oversized_universe_falls_through(self):
        rng = make_rng(0)
        hashes = [KWiseHash(2, 64, rng)]
        signs = [SignHash(rng)]
        too_big = hashplan.PLANE_UNIVERSE_MAX * 2
        assert hashplan.bucket_planes(hashes, too_big) is None
        assert hashplan.sign_planes(signs, too_big) is None
        assert len(hashplan.cache()) == 0

    def test_planes_match_direct_evaluation(self):
        rng = make_rng(7)
        hashes = [KWiseHash(2, 97, rng) for _ in range(4)]
        signs = [SignHash(rng) for _ in range(4)]
        universe = 1 << 9
        buckets = hashplan.bucket_planes(hashes, universe)
        sign_plane = hashplan.sign_planes(signs, universe)
        domain = np.arange(universe, dtype=np.uint64)
        for i in range(4):
            assert np.array_equal(buckets[i], hashes[i](domain))
            assert np.array_equal(sign_plane[i], signs[i](domain))

    def test_planes_are_read_only(self):
        rng = make_rng(1)
        plane = hashplan.bucket_planes([KWiseHash(2, 8, rng)], 256)
        with pytest.raises(ValueError):
            plane[0, 0] = 99

    def test_rejects_bad_budget(self):
        with pytest.raises(InvalidParameterError):
            hashplan.HashPlaneCache(0)

    def test_metrics_flow_through_preregistered_names(self):
        with obs_metrics.collecting() as reg:
            universe = 1 << 8
            s = CountMinSketch(32, 3, seed=5, universe=universe)
            keys = np.arange(universe, dtype=np.uint64)
            s.update_batch(keys)
            s.update_batch(keys)
        by_name = {
            name: payload[0]
            for kind, name, labels, payload in obs_metrics.export_state(
                reg, skip_idle=False
            )
            if name.startswith("hashplan.")
        }
        assert by_name["hashplan.cache.misses"] >= 1
        assert by_name["hashplan.cache.hits"] >= 1
        assert "hashplan.cache.evictions" in by_name


class TestFoldHelpers:
    def test_aggregate_batch_sums_exactly(self):
        keys = np.array([5, 1, 5, 1, 9], dtype=np.uint64)
        deltas = np.array([1, 2, 3, -7, 10], dtype=np.int64)
        uniq, agg = hashplan.aggregate_batch(keys, deltas)
        assert uniq.tolist() == [1, 5, 9]
        assert agg.tolist() == [-5, 4, 10]

    def test_fold_level_halves_cells(self):
        cells = np.array([0, 1, 2, 5, 6, 7], dtype=np.uint64)
        deltas = np.array([1, 2, 4, 8, 16, 32], dtype=np.int64)
        folded_cells, folded = hashplan.fold_level(cells, deltas)
        assert folded_cells.tolist() == [0, 1, 2, 3]
        assert folded.tolist() == [3, 4, 8, 48]

    def test_fold_chain_matches_shifted_aggregate(self):
        keys, deltas = _stream(13, 4000, 1 << 12)
        cells, sums = hashplan.aggregate_batch(
            keys.astype(np.uint64), deltas
        )
        for level in range(1, 12):
            cells, sums = hashplan.fold_level(cells, sums)
            want_cells, want_sums = hashplan.aggregate_batch(
                keys.astype(np.uint64) >> np.uint64(level), deltas
            )
            assert np.array_equal(cells, want_cells)
            assert np.array_equal(sums, want_sums)

    def test_dedup_skips_strictly_increasing_batches(self):
        keys = np.arange(hashplan.DEDUP_MIN_BATCH * 2, dtype=np.uint64)
        deltas = np.ones(keys.size, dtype=np.int64)
        assert hashplan.dedup_batch(keys, deltas) is None

    def test_dedup_requires_enough_repetition(self):
        rng = np.random.default_rng(0)
        keys = rng.permutation(
            np.arange(hashplan.DEDUP_MIN_BATCH * 2, dtype=np.uint64)
        )
        deltas = np.ones(keys.size, dtype=np.int64)
        assert hashplan.dedup_batch(keys, deltas) is None
        repeated = keys % 16
        uniq, agg = hashplan.dedup_batch(repeated, deltas)
        assert uniq.size == 16
        assert int(agg.sum()) == keys.size
