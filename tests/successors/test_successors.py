"""Tests for the successor algorithms: KLL, t-digest, SampledGK."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import EmptySummaryError, ExactQuantiles, MergeError
from repro.successors import KLL, SampledGK, TDigest

PHIS = [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95]


def _max_rank_error(sketch, exact: ExactQuantiles, phis=PHIS) -> float:
    n = exact.n
    worst = 0.0
    for phi in phis:
        q = sketch.query(phi)
        lo, hi = exact.rank_interval(q)
        target = phi * n
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        worst = max(worst, err / n)
    return worst


class TestKLL:
    @pytest.mark.parametrize("order", ["random", "sorted"])
    def test_error_within_eps(self, order, rng) -> None:
        eps = 0.01
        data = rng.integers(0, 1 << 24, size=40_000, dtype=np.int64)
        if order == "sorted":
            data = np.sort(data)
        sk = KLL(eps=eps, seed=3)
        sk.extend(data.tolist())
        exact = ExactQuantiles(data.tolist())
        assert _max_rank_error(sk, exact) <= eps

    def test_weight_conservation(self, rng) -> None:
        """Sum of (size * 2^level) stays within one compaction of n."""
        sk = KLL(eps=0.02, seed=4)
        sk.extend(rng.integers(0, 1000, size=25_000).tolist())
        total = sum(
            len(comp) * (1 << level)
            for level, comp in enumerate(sk._compactors)
        )
        # Each compaction of a level-h buffer with odd size drops at most
        # one weight-2^h element's worth; sum over history is bounded.
        assert abs(total - sk.n) < 0.02 * sk.n + sk.k

    def test_geometric_capacities(self) -> None:
        sk = KLL(eps=0.05, seed=1)
        sk.extend(list(range(50_000)))
        caps = [sk._capacity(level) for level in range(len(sk._compactors))]
        assert caps[-1] == sk.k  # top compactor at full k
        assert all(a <= b for a, b in zip(caps, caps[1:]))

    def test_space_beats_random_at_same_error(self, rng) -> None:
        """KLL's geometric decay should not use more space than Random's
        uniform buffers at comparable observed error."""
        from repro.cash_register import RandomSketch

        eps = 0.005
        data = rng.integers(0, 1 << 24, size=60_000, dtype=np.int64)
        exact = ExactQuantiles(data.tolist())
        kll = KLL(eps=eps, seed=2)
        rnd = RandomSketch(eps=eps, seed=2)
        kll.extend(data.tolist())
        rnd.extend(data.tolist())
        kll_err = _max_rank_error(kll, exact)
        assert kll_err <= eps
        assert kll.size_words() <= rnd.size_words()

    def test_merge(self, rng) -> None:
        a = KLL(eps=0.02, seed=1)
        b = KLL(eps=0.02, seed=2)
        d1 = rng.integers(0, 1 << 16, size=20_000, dtype=np.int64)
        d2 = rng.integers(1 << 15, 1 << 17, size=20_000, dtype=np.int64)
        a.extend(d1.tolist())
        b.extend(d2.tolist())
        a.merge(b)
        assert a.n == 40_000 and b.n == 0
        exact = ExactQuantiles(np.concatenate([d1, d2]).tolist())
        assert _max_rank_error(a, exact) <= 0.04

    def test_merge_rejects_mismatched(self) -> None:
        with pytest.raises(MergeError):
            KLL(eps=0.1).merge(KLL(eps=0.01))
        with pytest.raises(MergeError):
            KLL(eps=0.1).merge(object())

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            KLL(eps=0.1, c=0.4)
        with pytest.raises(EmptySummaryError):
            KLL(eps=0.1).query(0.5)


class TestTDigest:
    def test_mid_quantiles_accurate(self, rng) -> None:
        data = rng.normal(0, 1, size=50_000)
        td = TDigest(delta=100)
        td.extend(data.tolist())
        for phi in (0.25, 0.5, 0.75):
            assert abs(
                td.query(phi) - float(np.quantile(data, phi))
            ) < 0.05

    def test_tail_relative_accuracy(self, rng) -> None:
        """The t-digest's raison d'etre: extreme tails stay sharp."""
        data = rng.lognormal(0, 1.5, size=80_000)
        td = TDigest(delta=100)
        td.extend(data.tolist())
        sorted_data = np.sort(data)
        for phi in (0.999, 0.9999):
            est_rank = float(np.searchsorted(sorted_data, td.query(phi)))
            target = phi * len(data)
            # Relative rank error at the tail: within ~60% of (1-phi)*n
            # (interpolation noise included) — still far beyond what any
            # uniform eps*n guarantee could promise out there.
            assert abs(est_rank - target) <= 0.6 * (1 - phi) * len(data) + 10

    def test_rank_monotone_and_anchored(self, rng) -> None:
        data = rng.normal(0, 1, size=20_000)
        td = TDigest(delta=50)
        td.extend(data.tolist())
        probes = np.linspace(-4, 4, 30)
        ranks = [td.rank(float(p)) for p in probes]
        assert all(a <= b + 1e-9 for a, b in zip(ranks, ranks[1:]))
        assert ranks[0] == 0.0
        assert ranks[-1] == float(td.n)

    def test_centroid_budget(self, rng) -> None:
        td = TDigest(delta=100)
        td.extend(rng.uniform(0, 1, size=100_000).tolist())
        assert td.centroid_count() <= 2 * 100

    def test_merge(self, rng) -> None:
        a = TDigest(delta=100)
        b = TDigest(delta=100)
        a.extend(rng.normal(0, 1, size=20_000).tolist())
        b.extend(rng.normal(0, 1, size=20_000).tolist())
        a.merge(b)
        assert a.n == 40_000 and b.n == 0
        assert abs(a.query(0.5)) < 0.05

    def test_merge_rejects_mismatched(self) -> None:
        with pytest.raises(MergeError):
            TDigest(delta=100).merge(TDigest(delta=50))
        with pytest.raises(MergeError):
            TDigest(delta=100).merge(7)

    def test_extremes_exact(self, rng) -> None:
        data = rng.normal(0, 1, size=5_000)
        td = TDigest(delta=50)
        td.extend(data.tolist())
        assert td.query(0.0) == pytest.approx(float(data.min()), abs=1e-9)
        assert td.query(1.0) == pytest.approx(float(data.max()), rel=1e-6)

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            TDigest(delta=5)
        with pytest.raises(EmptySummaryError):
            TDigest(delta=100).query(0.5)

    @given(
        data=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=300
        )
    )
    def test_quantiles_inside_range_property(self, data) -> None:
        td = TDigest(delta=20)
        td.extend(data)
        for phi in (0.0, 0.3, 0.7, 1.0):
            q = td.query(phi)
            assert min(data) - 1e-6 <= q <= max(data) + 1e-6


class TestSampledGK:
    def test_error_envelope(self, rng) -> None:
        eps = 0.02
        data = rng.integers(0, 1 << 24, size=60_000, dtype=np.int64)
        exact = ExactQuantiles(data.tolist())
        errs = []
        for seed in range(5):
            sk = SampledGK(eps=eps, seed=seed)
            sk.extend(data.tolist())
            errs.append(_max_rank_error(sk, exact))
        # Constant-probability guarantee: generous 2x envelope on the max,
        # mean well under eps.
        assert max(errs) <= 2 * eps
        assert float(np.mean(errs)) <= eps

    def test_rate_decays(self, rng) -> None:
        sk = SampledGK(eps=0.1, seed=1)
        sk.extend(rng.integers(0, 1000, size=50_000).tolist())
        assert sk.sampling_rate < 1.0
        assert sk._summary.n <= sk.cap

    def test_space_capped(self, rng) -> None:
        sk = SampledGK(eps=0.05, seed=1)
        words = []
        for _ in range(4):
            sk.extend(rng.integers(0, 1 << 20, size=20_000).tolist())
            words.append(sk.size_words())
        assert max(words) < 3 * min(w for w in words if w > 0)

    def test_uncompetitive_vs_random(self, rng) -> None:
        """The paper's verdict, reproduced: once sampling kicks in, the
        FO-style prototype sits strictly inside Random's error-space
        frontier — worse observed error at the same eps."""
        from repro.cash_register import RandomSketch

        eps = 0.05  # small enough cap that sampling activates at this n
        data = rng.integers(0, 1 << 24, size=50_000, dtype=np.int64)
        exact = ExactQuantiles(data.tolist())
        sampled_errs, random_errs = [], []
        for seed in range(5):
            sampled = SampledGK(eps=eps, seed=seed)
            rnd = RandomSketch(eps=eps, seed=seed)
            sampled.extend(data.tolist())
            rnd.extend(data.tolist())
            sampled_errs.append(_max_rank_error(sampled, exact))
            random_errs.append(_max_rank_error(rnd, exact))
        assert sampled.sampling_rate < 1.0  # sampling actually engaged
        assert float(np.mean(sampled_errs)) > float(np.mean(random_errs))

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            SampledGK(eps=0.1, sample_factor=0)
        with pytest.raises(EmptySummaryError):
            SampledGK(eps=0.1).query(0.5)
