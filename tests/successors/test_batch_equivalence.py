"""Batch equivalence for the successor algorithms (KLL, SampledGK).

KLL's ``extend`` fills the bottom compactor in chunks but triggers
compactions at exactly the same element boundaries as the update loop,
so same-seed runs are identical down to the compactor contents and the
RNG state.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.successors.kll import KLL
from repro.successors.sampled_gk import SampledGK

PHI_GRID = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]

streams = st.lists(st.integers(0, (1 << 16) - 1), max_size=600)
seeds = st.integers(0, 2**16)


class TestKLLSameSeedIdentical:
    @given(data=streams, seed=seeds)
    def test_extend_matches_update_loop(self, data, seed) -> None:
        batched = KLL(eps=0.1, seed=seed)
        looped = KLL(eps=0.1, seed=seed)
        batched.extend(np.asarray(data, dtype=np.int64))
        for v in data:
            looped.update(v)
        assert batched._compactors == looped._compactors
        assert batched.n == looped.n == len(data)
        assert (
            batched._rng.bit_generator.state
            == looped._rng.bit_generator.state
        )
        if data:
            assert batched.query_batch(PHI_GRID) == looped.query_batch(
                PHI_GRID
            )

    def test_empty_and_single_element_batches(self) -> None:
        sk = KLL(eps=0.1, seed=1)
        sk.extend([])
        sk.extend(np.asarray([], dtype=np.int64))
        assert sk.n == 0
        sk.extend(np.asarray([5], dtype=np.int64))
        assert sk.n == 1
        assert sk.query(0.5) == 5


class TestQueryBatchMatchesQueryLoop:
    def test_kll(self, rng) -> None:
        sk = KLL(eps=0.05, seed=2)
        sk.extend(rng.integers(0, 1 << 16, size=4_000, dtype=np.int64))
        assert sk.query_batch(PHI_GRID) == [
            sk.query(phi) for phi in PHI_GRID
        ]
        assert sk.query_batch([]) == []

    def test_sampled_gk(self, rng) -> None:
        sk = SampledGK(eps=0.05, seed=2)
        sk.extend(rng.integers(0, 1 << 16, size=4_000, dtype=np.int64))
        assert sk.query_batch(PHI_GRID) == [
            sk.query(phi) for phi in PHI_GRID
        ]
