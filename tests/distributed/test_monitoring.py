"""Tests for continuous distributed quantile monitoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmptySummaryError, InvalidParameterError
from repro.distributed.monitoring import ContinuousQuantileMonitor
from repro.obs import metrics as obs_metrics

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]


def _max_error(monitor, all_values, phis=PHIS) -> float:
    arr = np.sort(np.asarray(all_values))
    n = len(arr)
    worst = 0.0
    for phi in phis:
        q = monitor.query(phi)
        lo = float(np.searchsorted(arr, q, "left"))
        hi = float(np.searchsorted(arr, q, "right"))
        target = phi * n
        err = 0.0 if lo <= target <= hi else min(
            abs(target - lo), abs(target - hi)
        )
        worst = max(worst, err / n)
    return worst


class TestAccuracy:
    def test_error_bounded_at_any_time(self, rng) -> None:
        eps, sites = 0.05, 8
        monitor = ContinuousQuantileMonitor(sites=sites, eps=eps)
        seen = []
        data = rng.integers(0, 1 << 20, size=20_000, dtype=np.int64)
        site_of = rng.integers(0, sites, size=len(data))
        checkpoints = {2_000, 7_500, 19_999}
        for i, (x, s) in enumerate(zip(data.tolist(), site_of.tolist())):
            monitor.observe(s, x)
            seen.append(x)
            if i in checkpoints:
                assert _max_error(monitor, seen) <= eps

    def test_skewed_site_distributions(self, rng) -> None:
        """Each site sees a different value range; the coordinator must
        still merge ranks correctly."""
        eps, sites = 0.05, 4
        monitor = ContinuousQuantileMonitor(sites=sites, eps=eps)
        seen = []
        for step in range(4_000):
            site = step % sites
            value = int(rng.integers(site * 1_000, (site + 1) * 1_000))
            monitor.observe(site, value)
            seen.append(value)
        assert _max_error(monitor, seen) <= eps

    def test_idle_sites_tolerated(self, rng) -> None:
        monitor = ContinuousQuantileMonitor(sites=10, eps=0.1)
        seen = []
        for x in rng.integers(0, 1_000, size=3_000).tolist():
            monitor.observe(0, int(x))  # only site 0 ever observes
            seen.append(int(x))
        assert _max_error(monitor, seen) <= 0.1


class TestCommunication:
    def test_sublinear_in_stream(self, rng) -> None:
        """Total words shipped must be far less than forwarding every
        element (the naive protocol's cost of n words).  Communication is
        O((k/eps) log n * summary), so the advantage needs n past the
        crossover — hence the moderate eps and larger n here."""
        eps, sites = 0.1, 4
        monitor = ContinuousQuantileMonitor(sites=sites, eps=eps)
        n = 150_000
        data = rng.integers(0, 1 << 16, size=n, dtype=np.int64)
        site_of = rng.integers(0, sites, size=n)
        for x, s in zip(data.tolist(), site_of.tolist()):
            monitor.observe(s, x)
        assert monitor.words_sent < n / 3
        assert monitor.syncs < n / 100

    def test_sync_rate_decays(self, rng) -> None:
        """Thresholds grow with N, so syncs per element must fall."""
        monitor = ContinuousQuantileMonitor(sites=4, eps=0.1)
        data = rng.integers(0, 1_000, size=40_000, dtype=np.int64)
        site_of = rng.integers(0, 4, size=len(data))
        halfway_syncs = None
        for i, (x, s) in enumerate(zip(data.tolist(), site_of.tolist())):
            monitor.observe(s, int(x))
            if i == len(data) // 2:
                halfway_syncs = monitor.syncs
        second_half = monitor.syncs - halfway_syncs
        assert second_half < halfway_syncs

    def test_tighter_eps_costs_more(self, rng) -> None:
        data = rng.integers(0, 1 << 16, size=20_000, dtype=np.int64)
        site_of = rng.integers(0, 4, size=len(data))
        costs = {}
        for eps in (0.1, 0.02):
            monitor = ContinuousQuantileMonitor(sites=4, eps=eps)
            for x, s in zip(data.tolist(), site_of.tolist()):
                monitor.observe(s, int(x))
            costs[eps] = monitor.words_sent
        assert costs[0.02] > costs[0.1]


class TestMetricsAccounting:
    def _drive(self, monitor, rng, n=5_000) -> None:
        data = rng.integers(0, 1 << 16, size=n, dtype=np.int64)
        site_of = rng.integers(0, monitor.k, size=n)
        for x, s in zip(data.tolist(), site_of.tolist()):
            monitor.observe(s, int(x))

    def test_fields_read_through_private_registry(self, rng) -> None:
        monitor = ContinuousQuantileMonitor(sites=4, eps=0.1)
        self._drive(monitor, rng)
        assert monitor.syncs > 0
        words = monitor.metrics.counter("distributed.monitoring.sync.words")
        rounds = monitor.metrics.counter("distributed.monitoring.sync.rounds")
        assert monitor.words_sent == int(words.value)
        assert monitor.syncs == int(rounds.value)
        # Every sync round ships one snapshot message plus k broadcasts.
        assert monitor.messages_sent == monitor.syncs * (1 + monitor.k)

    def test_global_recorder_mirrors_private_counters(self, rng) -> None:
        with obs_metrics.collecting(obs_metrics.MetricsRegistry()) as reg:
            monitor = ContinuousQuantileMonitor(sites=4, eps=0.1)
            self._drive(monitor, rng)
            assert monitor.syncs > 0
            assert (
                reg.counter("distributed.monitoring.sync.words").value
                == monitor.words_sent
            )
            assert (
                reg.counter("distributed.monitoring.sync.rounds").value
                == monitor.syncs
            )
            assert reg.gauge("distributed.monitoring.known_n").value > 0

    def test_disabled_recorder_keeps_private_accounting(self, rng) -> None:
        assert not obs_metrics.recorder().enabled
        monitor = ContinuousQuantileMonitor(sites=4, eps=0.1)
        self._drive(monitor, rng)
        assert monitor.words_sent > 0
        assert monitor.messages_sent > 0


class TestValidation:
    def test_unknown_site(self) -> None:
        monitor = ContinuousQuantileMonitor(sites=2, eps=0.1)
        with pytest.raises(InvalidParameterError):
            monitor.observe(5, 1)

    def test_query_before_any_sync(self) -> None:
        monitor = ContinuousQuantileMonitor(sites=2, eps=0.1)
        with pytest.raises(EmptySummaryError):
            monitor.query(0.5)

    def test_bad_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            ContinuousQuantileMonitor(sites=0, eps=0.1)
        with pytest.raises(InvalidParameterError):
            ContinuousQuantileMonitor(sites=2, eps=0.0)

    def test_n_counts_everything(self, rng) -> None:
        monitor = ContinuousQuantileMonitor(sites=3, eps=0.1)
        for i in range(100):
            monitor.observe(i % 3, i)
        assert monitor.n == 100
