"""Tests for the distributed aggregation substrate and protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InvalidParameterError
from repro.distributed import (
    AggregationNetwork,
    FaultPlan,
    make_network,
    merge_summaries,
    sample_and_send,
    ship_everything,
)

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]


class TestNetwork:
    @pytest.mark.parametrize("topology", ["star", "tree", "chain"])
    def test_structure(self, topology) -> None:
        net = make_network(1_000, sites=8, topology=topology, seed=1)
        assert net.total_n() == 1_000
        assert net.root.parent is None
        # Every non-root site reaches the root.
        for site in net.sites.values():
            cursor, hops = site, 0
            while cursor.parent is not None:
                cursor = net.sites[cursor.parent]
                hops += 1
                assert hops <= len(net.sites)
        if topology == "star":
            assert net.depth() == 1
        if topology == "chain":
            assert net.depth() == 7

    def test_postorder_children_first(self) -> None:
        net = make_network(100, sites=7, topology="tree", seed=2)
        seen = set()
        for sid in net.postorder():
            for child in net.sites[sid].children:
                assert child in seen
            seen.add(sid)
        assert seen == set(net.sites)

    def test_skewed_shards_differ(self) -> None:
        net = make_network(8_000, sites=8, seed=3, skew=0.9)
        medians = [float(np.median(s.data)) for s in net.sites.values()]
        assert max(medians) > 2 * min(medians) + 1

    def test_validation(self) -> None:
        with pytest.raises(InvalidParameterError):
            make_network(2, sites=5)
        with pytest.raises(InvalidParameterError):
            make_network(100, sites=4, topology="ring")
        with pytest.raises(InvalidParameterError):
            AggregationNetwork([])
        net = make_network(100, sites=2, seed=0)
        with pytest.raises(InvalidParameterError):
            net.send(-1)


class TestProtocols:
    @pytest.mark.parametrize("topology", ["star", "tree", "chain"])
    def test_ship_everything_exact(self, topology) -> None:
        net = make_network(5_000, sites=16, topology=topology, seed=4)
        truth = net.union_sorted()
        result = ship_everything(net)
        assert result.max_rank_error(truth, PHIS) <= 1.0 / 5_000
        assert result.words_sent >= net.total_n() - len(net.root.data)

    @pytest.mark.parametrize("summary", ["qdigest", "random"])
    def test_merge_summaries_accuracy(self, summary) -> None:
        eps = 0.02
        net = make_network(40_000, sites=16, topology="tree", seed=5,
                           skew=0.7)
        truth = net.union_sorted()
        result = merge_summaries(net, eps=eps, summary=summary, seed=9)
        # Merging across depth-4 trees can stack error; generous budget.
        assert result.max_rank_error(truth, PHIS) <= 3 * eps
        assert result.answerer.n == 40_000

    def test_merge_cheaper_than_shipping(self) -> None:
        eps = 0.05
        net_a = make_network(60_000, sites=16, topology="tree", seed=6)
        net_b = make_network(60_000, sites=16, topology="tree", seed=6)
        shipped = ship_everything(net_a)
        merged = merge_summaries(net_b, eps=eps, summary="qdigest")
        assert merged.words_sent < shipped.words_sent / 4

    def test_sampling_accuracy_and_cost(self) -> None:
        eps = 0.05
        net = make_network(80_000, sites=16, topology="star", seed=7)
        truth = net.union_sorted()
        result = sample_and_send(net, eps=eps, seed=11)
        assert result.max_rank_error(truth, PHIS) <= eps
        assert result.words_sent < 80_000

    def test_sampling_cost_independent_of_n(self) -> None:
        eps = 0.1
        small = make_network(20_000, sites=8, topology="star", seed=8)
        large = make_network(80_000, sites=8, topology="star", seed=8)
        a = sample_and_send(small, eps=eps, seed=12)
        b = sample_and_send(large, eps=eps, seed=12)
        assert b.words_sent < 2 * a.words_sent  # ~flat in n

    def test_invalid_summary_rejected(self) -> None:
        net = make_network(100, sites=2, seed=0)
        with pytest.raises(InvalidParameterError):
            merge_summaries(net, eps=0.1, summary="gk")

    def test_chain_topology_summary_size_bounded(self) -> None:
        """Along a chain, merge-aggregation still sends one summary per
        edge (the whole point of mergeability)."""
        eps = 0.05
        net = make_network(20_000, sites=10, topology="chain", seed=13)
        result = merge_summaries(net, eps=eps, summary="random")
        # 9 edges, each carrying ~one summary.
        per_edge = result.words_sent / 9
        single = result.answerer.size_words()
        assert per_edge <= 1.5 * single


class TestFaultAwareProtocols:
    """The fault-aware mode of merge_summaries / sample_and_send."""

    PLAN = FaultPlan(
        seed=17, drop_rate=0.1, duplicate_rate=0.05, corrupt_rate=0.05,
        crash_sites=(11,),
    )

    @pytest.mark.parametrize("summary", ["qdigest", "random"])
    @pytest.mark.parametrize("topology", ["star", "tree", "chain"])
    def test_zero_fault_plan_is_bit_identical_to_lossless(
        self, summary, topology
    ) -> None:
        kwargs = dict(n=30_000, sites=12, topology=topology, seed=31,
                      skew=0.5)
        plain = merge_summaries(
            make_network(**kwargs), eps=0.02, summary=summary, seed=7
        )
        checked = merge_summaries(
            make_network(**kwargs), eps=0.02, summary=summary, seed=7,
            faults=FaultPlan.lossless(),
        )
        assert plain.words_sent == checked.words_sent
        assert plain.messages_sent == checked.messages_sent
        assert checked.coverage == 1.0 and checked.retransmissions == 0
        assert (
            plain.answerer.quantiles(PHIS)
            == checked.answerer.quantiles(PHIS)
        )

    @pytest.mark.parametrize("topology", ["star", "tree", "chain"])
    def test_sampling_zero_fault_plan_is_bit_identical(
        self, topology
    ) -> None:
        kwargs = dict(n=30_000, sites=12, topology=topology, seed=32)
        plain = sample_and_send(make_network(**kwargs), eps=0.05, seed=7)
        checked = sample_and_send(
            make_network(**kwargs), eps=0.05, seed=7,
            faults=FaultPlan.lossless(),
        )
        assert plain.words_sent == checked.words_sent
        assert plain.messages_sent == checked.messages_sent
        assert (
            plain.answerer.quantiles(PHIS)
            == checked.answerer.quantiles(PHIS)
        )

    @pytest.mark.parametrize("summary", ["qdigest", "random"])
    @pytest.mark.parametrize("topology", ["star", "tree", "chain"])
    def test_degrades_gracefully_under_drop_and_crash(
        self, summary, topology
    ) -> None:
        """10% drop + one crashed site: completes on every topology,
        reports coverage < 1 and a degraded epsilon, raises nothing."""
        eps = 0.05
        net = make_network(
            36_000, sites=12, topology=topology, seed=33, skew=0.5,
            faults=self.PLAN,
        )
        truth = net.union_sorted()
        result = merge_summaries(net, eps=eps, summary=summary, seed=7)
        assert 0.0 < result.coverage < 1.0
        assert 11 in result.lost_sites
        assert eps < result.effective_eps < 1.0
        assert result.effective_eps == pytest.approx(
            result.coverage * eps + (1 - result.coverage)
        )
        # The degraded bound really holds against the full stream.
        assert result.max_rank_error(truth, PHIS) <= result.effective_eps
        # Surviving mass matches the bookkeeping.
        lost_n = sum(
            len(net.sites[sid].data) for sid in result.lost_sites
        )
        assert result.answerer.n == 36_000 - lost_n

    @pytest.mark.parametrize("topology", ["star", "tree", "chain"])
    def test_sampling_degrades_gracefully(self, topology) -> None:
        net = make_network(
            36_000, sites=12, topology=topology, seed=34, faults=self.PLAN
        )
        truth = net.union_sorted()
        result = sample_and_send(net, eps=0.05, seed=7)
        assert 0.0 < result.coverage < 1.0
        assert result.max_rank_error(truth, PHIS) <= result.effective_eps

    @pytest.mark.parametrize("summary", ["qdigest", "random"])
    def test_same_seed_and_plan_reproduce_accounting_byte_identically(
        self, summary
    ) -> None:
        """Two runs with the same seed and FaultPlan are byte-identical:
        same fault pattern, same retries, same surviving sites."""
        def run():
            net = make_network(
                24_000, sites=10, topology="tree", seed=35, skew=0.3,
                faults=self.PLAN,
            )
            return merge_summaries(net, eps=0.05, summary=summary, seed=7)

        a, b = run(), run()
        assert repr(a.accounting()) == repr(b.accounting())
        assert a.answerer.quantiles(PHIS) == b.answerer.quantiles(PHIS)

    def test_sampling_determinism_under_faults(self) -> None:
        def run():
            net = make_network(
                24_000, sites=10, topology="chain", seed=36,
                faults=self.PLAN,
            )
            return sample_and_send(net, eps=0.05, seed=7)

        a, b = run(), run()
        assert repr(a.accounting()) == repr(b.accounting())
        assert a.answerer.quantiles(PHIS) == b.answerer.quantiles(PHIS)
