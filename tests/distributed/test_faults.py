"""Tests for fault injection and the reliable ack/retry transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    CorruptSummaryError,
    InvalidParameterError,
    SiteUnavailableError,
)
from repro.core.snapshot import decode_payload, encode_payload
from repro.distributed import (
    FaultInjector,
    FaultPlan,
    make_network,
    merge_summaries,
    sample_and_send,
)

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]


class TestFaultPlan:
    def test_validation(self) -> None:
        with pytest.raises(InvalidParameterError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(InvalidParameterError):
            FaultPlan(corrupt_rate=-0.1)
        with pytest.raises(InvalidParameterError):
            FaultPlan(max_retries=-1)
        with pytest.raises(InvalidParameterError):
            FaultPlan(backoff_factor=0.5)

    def test_losslessness(self) -> None:
        assert FaultPlan.lossless().is_lossless()
        assert not FaultPlan(drop_rate=0.1).is_lossless()
        assert not FaultPlan(crash_sites=(3,)).is_lossless()

    def test_crash_schedule(self) -> None:
        injector = FaultInjector(
            FaultPlan(crash_sites=(2,), crash_at_step={5: 1})
        )
        assert injector.site_crashed(2, 0)
        assert not injector.site_crashed(5, 0)
        assert injector.site_crashed(5, 1)
        assert injector.crashed_sites(range(8)) == frozenset({2})


class TestFaultInjector:
    def test_decisions_are_deterministic(self) -> None:
        a = FaultInjector(FaultPlan(seed=4, drop_rate=0.3,
                                    duplicate_rate=0.2, corrupt_rate=0.1))
        b = FaultInjector(FaultPlan(seed=4, drop_rate=0.3,
                                    duplicate_rate=0.2, corrupt_rate=0.1))
        coords = [(s, d, q, t) for s in range(4) for d in range(4)
                  for q in range(3) for t in range(3)]
        assert [a.decide(*c) for c in coords] == [b.decide(*c) for c in coords]

    def test_decisions_depend_on_seed(self) -> None:
        a = FaultInjector(FaultPlan(seed=1, drop_rate=0.5))
        b = FaultInjector(FaultPlan(seed=2, drop_rate=0.5))
        coords = [(0, 1, q, 0) for q in range(64)]
        assert (
            [a.decide(*c).drop for c in coords]
            != [b.decide(*c).drop for c in coords]
        )

    def test_rates_are_roughly_honored(self) -> None:
        injector = FaultInjector(FaultPlan(seed=9, drop_rate=0.25))
        drops = sum(
            injector.decide(0, 1, seq, 0).drop for seq in range(2_000)
        )
        assert 0.2 < drops / 2_000 < 0.3

    def test_corrupt_blob_flips_exactly_one_bit(self) -> None:
        injector = FaultInjector(FaultPlan(seed=3))
        blob = bytes(range(64))
        bad = injector.corrupt_blob(blob, 0, 1, 2, 0)
        assert bad != blob and len(bad) == len(blob)
        diff = [x ^ y for x, y in zip(blob, bad)]
        assert sum(bin(d).count("1") for d in diff) == 1


class TestReliableTransport:
    def test_lossless_transmit_matches_send(self) -> None:
        net = make_network(1_000, sites=4, seed=0)
        outcome = net.transmit(1, 0, 25)
        assert outcome.delivered and outcome.attempts == 1
        assert (net.words_sent, net.messages_sent) == (25, 1)

    def test_drops_cause_metered_retransmissions(self) -> None:
        plan = FaultPlan(seed=11, drop_rate=0.6, max_retries=50)
        net = make_network(1_000, sites=4, seed=0, faults=plan)
        for _ in range(20):
            outcome = net.transmit(1, 0, 10)
            assert outcome.delivered
        assert net.retransmissions > 0
        assert net.retransmitted_words == 10 * net.retransmissions
        # First attempts stay in the paper's accounting, retries do not.
        assert (net.words_sent, net.messages_sent) == (200, 20)
        # Backoff really consumed simulated time.
        assert net.clock.now > 0

    def test_corrupted_payload_is_retransmitted_never_accepted(self) -> None:
        plan = FaultPlan(seed=5, corrupt_rate=1.0, max_retries=3)
        net = make_network(1_000, sites=4, seed=0, faults=plan)
        payload = np.arange(50)
        outcome = net.transmit(
            1, 0, 50, encode_payload(payload), decode_payload
        )
        # Every attempt corrupts, every corruption is caught by the CRC.
        assert not outcome.delivered
        assert net.corruptions_detected == 4
        outcome2 = net.transmit(
            2, 0, 50, encode_payload(payload), decode_payload
        )
        assert not outcome2.delivered and outcome2.payload is None

    def test_duplicate_delivery_suppressed_by_seq_dedup(self) -> None:
        plan = FaultPlan(seed=6, duplicate_rate=1.0)
        net = make_network(1_000, sites=4, seed=0, faults=plan)
        outcome = net.transmit(
            1, 0, 10, encode_payload(np.arange(5)), decode_payload
        )
        assert outcome.delivered
        assert net.duplicates_suppressed == 1

    def test_dead_receiver_exhausts_retries(self) -> None:
        plan = FaultPlan(seed=7, crash_sites=(0,), max_retries=2)
        net = make_network(1_000, sites=4, seed=0, faults=plan)
        outcome = net.transmit(1, 0, 10)
        assert not outcome.delivered
        assert outcome.reason == "receiver-crashed"
        assert net.retransmissions == 2

    def test_unknown_edge_rejected(self) -> None:
        net = make_network(1_000, sites=4, seed=0)
        with pytest.raises(InvalidParameterError):
            net.transmit(1, 99, 10)


class TestMergeIdempotence:
    """At-least-once delivery must not double-merge a summary."""

    @pytest.mark.parametrize("summary", ["qdigest", "random"])
    @pytest.mark.parametrize("topology", ["star", "tree", "chain"])
    def test_duplicate_delivery_changes_nothing(
        self, summary, topology
    ) -> None:
        kwargs = dict(
            n=20_000, sites=8, topology=topology, seed=21, skew=0.4
        )
        baseline = merge_summaries(
            make_network(**kwargs), eps=0.05, summary=summary, seed=9
        )
        plan = FaultPlan(seed=3, duplicate_rate=1.0)
        net = make_network(**kwargs, faults=plan)
        doubled = merge_summaries(
            net, eps=0.05, summary=summary, seed=9, faults=None
        )
        # Every edge delivered twice; the dedup layer dropped each copy.
        assert net.duplicates_suppressed == 7
        assert doubled.answerer.n == baseline.answerer.n == 20_000
        assert doubled.coverage == 1.0
        assert (
            doubled.answerer.quantiles(PHIS)
            == baseline.answerer.quantiles(PHIS)
        )
        # Duplicates ride in the same radio message, so the word/message
        # accounting matches the lossless run exactly.
        assert doubled.words_sent == baseline.words_sent
        assert doubled.messages_sent == baseline.messages_sent

    def test_duplicated_samples_not_double_counted(self) -> None:
        kwargs = dict(n=20_000, sites=8, topology="tree", seed=22)
        baseline = sample_and_send(make_network(**kwargs), eps=0.05, seed=9)
        net = make_network(**kwargs, faults=FaultPlan(seed=3,
                                                      duplicate_rate=1.0))
        doubled = sample_and_send(net, eps=0.05, seed=9)
        assert doubled.answerer.n == baseline.answerer.n
        assert (
            doubled.answerer.quantiles(PHIS)
            == baseline.answerer.quantiles(PHIS)
        )


class TestGracefulDegradation:
    def test_crashed_root_raises_site_unavailable(self) -> None:
        net = make_network(
            1_000, sites=4, seed=0, faults=FaultPlan(crash_sites=(0,))
        )
        with pytest.raises(SiteUnavailableError):
            merge_summaries(net, eps=0.1, summary="qdigest")

    def test_crashed_inner_node_loses_its_subtree(self) -> None:
        # Tree over 8 sites: site 1's subtree is {1, 3, 4, 7}.
        net = make_network(
            16_000, sites=8, topology="tree", seed=2,
            faults=FaultPlan(crash_sites=(1,)),
        )
        result = merge_summaries(net, eps=0.05, summary="qdigest")
        assert set(result.lost_sites) == {1, 3, 4, 7}
        assert result.coverage == pytest.approx(0.5, abs=0.01)
        assert result.effective_eps == pytest.approx(
            result.coverage * 0.05 + (1 - result.coverage)
        )

    def test_heavy_drop_still_completes_via_retries(self) -> None:
        plan = FaultPlan(seed=13, drop_rate=0.5, max_retries=30)
        net = make_network(
            20_000, sites=8, topology="chain", seed=3, faults=plan
        )
        result = merge_summaries(net, eps=0.05, summary="qdigest")
        assert result.coverage == 1.0
        assert result.retransmissions > 0
        assert result.effective_eps == pytest.approx(0.05)
