"""Shared pytest fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One shared profile: tests that stream many elements through pure-Python
# sketches are slow per example, so keep example counts modest and silence
# the too-slow health check.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    # function_scoped_fixture: our fixtures parameterize stateless factory
    # classes, which are safe to share across generated examples.
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A reproducible numpy Generator for tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_stream(rng) -> np.ndarray:
    """A small uniform integer stream for smoke tests."""
    return rng.integers(0, 1 << 16, size=5_000, dtype=np.int64)
