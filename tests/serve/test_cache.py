"""Answer-cache behavior: hits, coalescing, eviction, invalidation."""

import asyncio

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs import metrics as obs_metrics
from repro.serve.cache import STALE, AnswerCache


@pytest.fixture(autouse=True)
def _no_metrics():
    previous = obs_metrics._recorder
    obs_metrics.disable()
    yield
    obs_metrics._recorder = previous


def run(coro):
    return asyncio.run(coro)


async def _const(value):
    return value


class TestBasics:
    def test_capacity_validated(self):
        with pytest.raises(InvalidParameterError):
            AnswerCache(capacity=0)

    def test_miss_then_hit(self):
        cache = AnswerCache()

        async def scenario():
            calls = []

            async def supplier():
                calls.append(1)
                return [42]

            first = await cache.get_or_compute(("s", 1, "q"), supplier)
            second = await cache.get_or_compute(("s", 1, "q"), supplier)
            return first, second, calls

        first, second, calls = run(scenario())
        assert first == ([42], "miss")
        assert second == ([42], "hit")
        assert calls == [1]  # computed once

    def test_distinct_keys_do_not_share(self):
        cache = AnswerCache()

        async def scenario():
            a = await cache.get_or_compute(("s", 1, "a"), lambda: _const(1))
            b = await cache.get_or_compute(("s", 1, "b"), lambda: _const(2))
            return a[0], b[0]

        assert run(scenario()) == (1, 2)

    def test_lru_eviction(self):
        cache = AnswerCache(capacity=2)

        async def scenario():
            await cache.get_or_compute(("s", 1, "a"), lambda: _const(1))
            await cache.get_or_compute(("s", 1, "b"), lambda: _const(2))
            # touch "a" so "b" is the LRU victim
            await cache.get_or_compute(("s", 1, "a"), lambda: _const(1))
            await cache.get_or_compute(("s", 1, "c"), lambda: _const(3))
            hit_a = await cache.get_or_compute(
                ("s", 1, "a"), lambda: _const(99)
            )
            miss_b = await cache.get_or_compute(
                ("s", 1, "b"), lambda: _const(98)
            )
            return hit_a, miss_b

        hit_a, miss_b = run(scenario())
        assert hit_a == (1, "hit")
        assert miss_b == (98, "miss")  # "b" was evicted
        assert len(cache) == 2


class TestCoalescing:
    def test_concurrent_identical_queries_compute_once(self):
        cache = AnswerCache()

        async def scenario():
            calls = []
            gate = asyncio.Event()

            async def slow():
                calls.append(1)
                await gate.wait()
                return [7]

            tasks = [
                asyncio.ensure_future(
                    cache.get_or_compute(("s", 1, "q"), slow)
                )
                for _ in range(5)
            ]
            await asyncio.sleep(0)  # let every task reach the cache
            gate.set()
            results = await asyncio.gather(*tasks)
            return calls, results

        calls, results = run(scenario())
        assert calls == [1]
        assert {status for _value, status in results} == {
            "miss", "coalesced"
        }
        assert all(value == [7] for value, _status in results)

    def test_waiters_of_invalidated_computation_get_stale(self):
        cache = AnswerCache()

        async def scenario():
            gate = asyncio.Event()

            async def slow():
                await gate.wait()
                return [7]

            leader = asyncio.ensure_future(
                cache.get_or_compute(("s", 1, "q"), slow)
            )
            await asyncio.sleep(0)
            waiter = asyncio.ensure_future(
                cache.get_or_compute(("s", 1, "q"), slow)
            )
            await asyncio.sleep(0)
            cache.invalidate("s")  # flush landed mid-computation
            gate.set()
            return await asyncio.gather(leader, waiter)

        leader, waiter = run(scenario())
        assert leader == (STALE, "stale")
        assert waiter == (STALE, "stale")
        assert len(cache) == 0  # nothing was published

    def test_supplier_error_not_cached_and_waiters_retry(self):
        cache = AnswerCache()

        async def scenario():
            gate = asyncio.Event()

            async def failing():
                await gate.wait()
                raise RuntimeError("boom")

            leader = asyncio.ensure_future(
                cache.get_or_compute(("s", 1, "q"), failing)
            )
            await asyncio.sleep(0)
            waiter = asyncio.ensure_future(
                cache.get_or_compute(("s", 1, "q"), failing)
            )
            await asyncio.sleep(0)
            gate.set()
            with pytest.raises(RuntimeError):
                await leader
            waited = await waiter
            # After the failure the key is computable again.
            retry = await cache.get_or_compute(
                ("s", 1, "q"), lambda: _const([1])
            )
            return waited, retry

        waited, retry = run(scenario())
        assert waited == (STALE, "stale")
        assert retry == ([1], "miss")
        assert cache.inflight == 0


class TestInvalidation:
    def test_invalidate_drops_only_that_sketch(self):
        cache = AnswerCache()

        async def scenario():
            await cache.get_or_compute(("a", 1, "q"), lambda: _const(1))
            await cache.get_or_compute(("a", 1, "r"), lambda: _const(2))
            await cache.get_or_compute(("b", 1, "q"), lambda: _const(3))
            dropped = cache.invalidate("a")
            keep = await cache.get_or_compute(
                ("b", 1, "q"), lambda: _const(99)
            )
            return dropped, keep

        dropped, keep = run(scenario())
        assert dropped == 2
        assert keep == (3, "hit")
        assert len(cache) == 1

    def test_clear_resets_everything(self):
        cache = AnswerCache()

        async def scenario():
            await cache.get_or_compute(("a", 1, "q"), lambda: _const(1))
            cache.clear()
            return await cache.get_or_compute(
                ("a", 1, "q"), lambda: _const(2)
            )

        assert run(scenario()) == (2, "miss")

    def test_stats_shape(self):
        cache = AnswerCache(capacity=8)
        stats = cache.stats()
        assert stats == {"entries": 0, "inflight": 0, "capacity": 8}


class TestMetricsAccounting:
    def test_counters_flow_into_registry(self):
        registry = obs_metrics.enable(obs_metrics.MetricsRegistry())
        cache = AnswerCache(capacity=1)

        async def scenario():
            await cache.get_or_compute(("a", 1, "q"), lambda: _const(1))
            await cache.get_or_compute(("a", 1, "q"), lambda: _const(1))
            await cache.get_or_compute(("a", 1, "r"), lambda: _const(2))
            cache.invalidate("a")

        run(scenario())
        assert registry.get("serve.cache.misses").value == 2
        assert registry.get("serve.cache.hits").value == 1
        assert registry.get("serve.cache.evictions").value == 1
        assert registry.get("serve.cache.invalidations").value == 1
        assert registry.get("serve.cache.entries").value == 0
