"""End-to-end daemon tests: HTTP surface, errors, replication, CLI."""

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.daemon import _parse_create, serve_in_thread
from repro.serve.service import QuantileService


@pytest.fixture(autouse=True)
def _metrics_registry():
    previous = obs_metrics._recorder
    obs_metrics.enable(obs_metrics.MetricsRegistry())
    yield
    obs_metrics._recorder = previous


@pytest.fixture()
def daemon():
    with serve_in_thread() as handle:
        yield handle


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.url()) as c:
        yield c


class TestLifecycle:
    def test_create_list_info_drop(self, client):
        info = client.create("a", algorithm="gk_array", eps=0.01)
        assert info["name"] == "a" and info["epoch"] == 0
        names = [s["name"] for s in client.sketches()]
        assert names == ["a"]
        assert client.info("a")["algorithm"] == "gk_array"
        client.drop("a")
        assert client.sketches() == []

    def test_ingest_flush_query_round_trip(self, client):
        client.create("q", algorithm="gk_array", eps=0.01)
        result = client.ingest("q", list(range(1, 1001)), flush=True)
        assert result["flushed"] is True and result["epoch"] == 1
        answer = client.quantile("q", [0.5, 0.99])
        assert answer["n"] == 1000
        values = [q["value"] for q in answer["quantiles"]]
        assert values[0] == pytest.approx(500, abs=15)
        assert values[1] == pytest.approx(990, abs=15)
        rank = client.rank("q", [500.0])
        assert rank["ranks"][0]["rank"] == pytest.approx(0.5, abs=0.02)
        cdf = client.cdf("q", points=5)
        assert len(cdf["points"]) == 5
        flushed = client.flush("q")
        assert flushed["flushed"] is False  # nothing pending

    def test_batch_query_and_cache_status(self, client):
        client.create("b", algorithm="gk_array", eps=0.01)
        client.ingest("b", list(range(100)), flush=True)
        first, second = client.query([
            {"sketch": "b", "phis": [0.5, 0.9]},
            {"sketch": "b", "phis": [0.5, 0.9]},
        ])
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        repeat = client.query([{"sketch": "b", "phis": [0.5, 0.9]}])
        assert repeat[0]["cache"] == "hit"


class TestErrors:
    def test_unknown_sketch_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.quantile("ghost", [0.5])
        assert excinfo.value.status == 404

    def test_duplicate_create_409(self, client):
        client.create("dup", algorithm="gk_array", eps=0.01)
        with pytest.raises(ServeClientError) as excinfo:
            client.create("dup", algorithm="gk_array", eps=0.01)
        assert excinfo.value.status == 409

    def test_bad_parameters_400(self, client):
        client.create("e", algorithm="gk_array", eps=0.01)
        client.ingest("e", [1.0], flush=True)
        for call in (
            lambda: client.quantile("e", [1.5]),
            lambda: client.create("bad", algorithm="nope", eps=0.01),
            lambda: client.cdf("e", points="x"),
        ):
            with pytest.raises(ServeClientError) as excinfo:
                call()
            assert excinfo.value.status == 400

    def test_empty_sketch_400(self, client):
        client.create("empty", algorithm="gk_array", eps=0.01)
        with pytest.raises(ServeClientError) as excinfo:
            client.quantile("empty", [0.5])
        assert excinfo.value.status == 400
        assert "empty" in str(excinfo.value)

    def test_unknown_path_404_and_bad_method_405(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeClientError) as excinfo:
            client._request("PUT", "/v1/sketches")
        assert excinfo.value.status == 405

    def test_malformed_json_400(self, client):
        client._conn.request(
            "POST", "/v1/sketches", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = client._conn.getresponse()
        response.read()
        assert response.status == 400


class TestObservability:
    def test_metrics_exposition_has_serve_families(self, client):
        client.create("m", algorithm="gk_array", eps=0.01)
        client.ingest("m", [1.0, 2.0, 3.0], flush=True)
        client.quantile("m", [0.5])
        text = client.metrics_text()
        for family in (
            "repro_serve_up", "repro_serve_requests",
            "repro_serve_sketches", "repro_serve_cache_hits",
            "repro_latency_serve_request_ns",
        ):
            assert family in text, family

    def test_healthz_reports_epochs(self, client):
        client.create("h", algorithm="gk_array", eps=0.01)
        client.ingest("h", [1.0], flush=True)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["epochs"] == {"h": 1}

    def test_stats_counts_requests(self, client):
        client.create("st", algorithm="gk_array", eps=0.01)
        client.ingest("st", list(range(10)), flush=True)
        client.quantile("st", [0.5])
        stats = client.stats()
        assert stats["counters"]["requests"] >= 3
        assert stats["counters"]["queries"] == 1
        assert stats["request_latency_ns"]["count"] >= 3


class TestReplication:
    def test_snapshot_restore_identical_vectors(self, daemon, client):
        client.create("r", algorithm="gk_array", eps=0.005)
        client.ingest("r", list(range(1, 5001)), flush=True)
        phis = [0.01, 0.25, 0.5, 0.75, 0.99]
        primary = client.quantile("r", phis)
        exported = client.snapshot("r")
        assert exported["epoch"] == 1 and exported["n"] == 5000

        with serve_in_thread() as replica:
            with ServeClient(replica.url()) as rc:
                restored = rc.restore("r", exported)
                assert restored["epoch"] == 1
                mirrored = rc.quantile("r", phis)
        assert mirrored["quantiles"] == primary["quantiles"]

    def test_warm_restart_from_persist_dir(self, tmp_path):
        phis = [0.1, 0.5, 0.9]
        with serve_in_thread(
            service=QuantileService(persist_dir=str(tmp_path))
        ) as handle:
            with ServeClient(handle.url()) as c:
                c.create("w", algorithm="gk_array", eps=0.01, seed=0)
                c.ingest("w", list(range(1, 2001)), flush=True)
                before = c.quantile("w", phis)

        # The daemon is gone; a new one recovers the sealed epoch.
        with serve_in_thread(
            service=QuantileService(persist_dir=str(tmp_path))
        ) as handle:
            with ServeClient(handle.url()) as c:
                after = c.quantile("w", phis)
        assert after["quantiles"] == before["quantiles"]
        assert after["epoch"] == before["epoch"]

    def test_restore_rejects_garbage(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.restore("x", {
                "envelope_b64": "!!!notbase64!!!",
                "spec": {"algorithm": "gk_array", "eps": 0.01},
                "epoch": 1,
            })
        assert excinfo.value.status == 400


class TestParallelIngestRoute:
    def test_workers_route_over_http(self, client):
        client.create("p", algorithm="kll", eps=0.02, seed=7)
        data = np.arange(30_000, dtype=np.float64)
        result = client.ingest("p", data.tolist(), workers=2)
        assert result["flushed"] is True
        answer = client.quantile("p", [0.5])
        assert answer["n"] == 30_000
        value = answer["quantiles"][0]["value"]
        assert value == pytest.approx(15_000, rel=0.05)


class TestCreateArgParsing:
    def test_parse_create_full(self):
        name, spec = _parse_create("lat,kll,0.001,seed=7")
        assert name == "lat" and spec.algorithm == "kll"
        assert spec.eps == 0.001 and spec.seed == 7

    def test_parse_create_universe(self):
        _name, spec = _parse_create("f,qdigest,0.05,universe_log2=16")
        assert spec.universe_log2 == 16

    def test_parse_create_rejects_garbage(self):
        import argparse

        for bad in ("onlyname", "a,b", "x,gk_array,0.01,zap=1",
                    "x,gk_array,0.01,seed=z"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_create(bad)
