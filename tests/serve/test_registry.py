"""Registry semantics: specs, epochs, sealing, and warm recovery."""

import json

import numpy as np
import pytest

from repro.core.errors import CorruptSummaryError, InvalidParameterError
from repro.core.snapshot import envelope_info, snapshot
from repro.evaluation.harness import build_sketch, feed_stream
from repro.serve.registry import (
    DuplicateSketchError,
    LiveSketch,
    ServeRegistry,
    SketchSpec,
    UnknownSketchError,
)

SPEC = SketchSpec(algorithm="gk_array", eps=0.01)


class TestSketchSpec:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown algorithm"):
            SketchSpec(algorithm="nope", eps=0.01)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.5, 2.0])
    def test_bad_eps_rejected(self, eps):
        with pytest.raises(InvalidParameterError):
            SketchSpec(algorithm="gk_array", eps=eps)

    def test_dtype_follows_universe(self):
        assert SPEC.dtype == np.dtype(np.float64)
        fixed = SketchSpec(algorithm="qdigest", eps=0.05, universe_log2=16)
        assert fixed.dtype == np.dtype(np.int64)

    def test_round_trips_through_dict(self):
        spec = SketchSpec(algorithm="kll", eps=0.02, seed=7)
        assert SketchSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_missing_field(self):
        with pytest.raises(InvalidParameterError, match="algorithm"):
            SketchSpec.from_dict({"eps": 0.01})

    def test_build_matches_harness(self):
        sketch = SPEC.build()
        reference = build_sketch("gk_array", 0.01)
        assert type(sketch) is type(reference)


class TestLiveSketch:
    def test_buffer_does_not_change_answers(self):
        entry = LiveSketch("s", SPEC)
        entry.buffer(np.arange(1, 101, dtype=np.float64))
        entry.apply()
        before = entry.sketch.query(0.5)
        entry.buffer(np.full(1000, 1e9))
        assert entry.sketch.query(0.5) == before
        assert entry.pending_elements == 1000
        assert entry.epoch == 1

    def test_apply_advances_epoch_and_matches_offline(self):
        entry = LiveSketch("s", SPEC)
        data = np.arange(1, 2001, dtype=np.float64)
        entry.buffer(data[:1000])
        entry.buffer(data[1000:])
        assert entry.apply() is True
        assert entry.epoch == 1
        assert entry.apply() is False  # nothing pending
        offline = build_sketch("gk_array", 0.01)
        feed_stream(offline, data)
        phis = [0.1, 0.5, 0.9, 0.99]
        assert entry.sketch.query_batch(phis) == offline.query_batch(phis)

    def test_invalid_name_rejected(self):
        for name in ("", "a b", "x/y", "-lead", "a" * 65):
            with pytest.raises(InvalidParameterError):
                LiveSketch(name, SPEC)

    def test_empty_buffer_is_noop(self):
        entry = LiveSketch("s", SPEC)
        assert entry.buffer([]) == 0
        assert entry.apply() is False


class TestServeRegistry:
    def test_create_get_drop(self):
        reg = ServeRegistry()
        reg.create("a", SPEC)
        assert "a" in reg and len(reg) == 1
        assert reg.get("a").name == "a"
        with pytest.raises(DuplicateSketchError):
            reg.create("a", SPEC)
        reg.drop("a")
        assert "a" not in reg
        with pytest.raises(UnknownSketchError):
            reg.get("a")
        with pytest.raises(UnknownSketchError):
            reg.drop("a")

    def test_unknown_error_lists_served_names(self):
        reg = ServeRegistry()
        reg.create("served", SPEC)
        with pytest.raises(UnknownSketchError, match="served"):
            reg.get("ghost")

    def test_publish_adopts_external_summary(self):
        reg = ServeRegistry()
        sketch = build_sketch("gk_array", 0.01)
        feed_stream(sketch, np.arange(1, 501, dtype=np.float64))
        entry = reg.publish("adopted", sketch, SPEC, epoch=3)
        assert entry.epoch == 3
        assert reg.get("adopted").sketch.n == 500
        with pytest.raises(DuplicateSketchError):
            reg.publish("adopted", sketch, SPEC)

    def test_seal_and_recover_identical_answers(self, tmp_path):
        reg = ServeRegistry(persist_dir=tmp_path)
        reg.create("w", SPEC)
        entry = reg.get("w")
        entry.buffer(np.arange(1, 5001, dtype=np.float64))
        reg.flush("w")
        phis = [0.01, 0.25, 0.5, 0.75, 0.99]
        expected = entry.sketch.query_batch(phis)

        recovered = ServeRegistry(persist_dir=tmp_path)
        names = recovered.recover()
        assert names == ["w"]
        restored = recovered.get("w")
        assert restored.epoch == 1
        assert restored.ingested_total == 5000
        assert restored.sketch.query_batch(phis) == expected

    def test_recover_skips_already_registered(self, tmp_path):
        reg = ServeRegistry(persist_dir=tmp_path)
        reg.create("w", SPEC)
        reg.get("w").buffer([1.0, 2.0, 3.0])
        reg.flush("w")
        assert reg.recover() == []  # "w" is already live

    def test_recover_rejects_corrupt_envelope(self, tmp_path):
        reg = ServeRegistry(persist_dir=tmp_path)
        reg.create("w", SPEC)
        reg.get("w").buffer(np.arange(100, dtype=np.float64))
        reg.flush("w")
        blob = bytearray((tmp_path / "w.rqss").read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (tmp_path / "w.rqss").write_bytes(bytes(blob))
        with pytest.raises(CorruptSummaryError):
            ServeRegistry(persist_dir=tmp_path).recover()

    def test_recover_rejects_unknown_meta_schema(self, tmp_path):
        reg = ServeRegistry(persist_dir=tmp_path)
        reg.create("w", SPEC)
        reg.get("w").buffer([1.0])
        reg.flush("w")
        meta_path = tmp_path / "w.json"
        meta = json.loads(meta_path.read_text())
        meta["schema"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(InvalidParameterError, match="schema"):
            ServeRegistry(persist_dir=tmp_path).recover()

    def test_drop_removes_sealed_files(self, tmp_path):
        reg = ServeRegistry(persist_dir=tmp_path)
        reg.create("w", SPEC)
        reg.get("w").buffer([1.0, 2.0])
        reg.flush("w")
        assert (tmp_path / "w.rqss").exists()
        reg.drop("w")
        assert not (tmp_path / "w.rqss").exists()
        assert not (tmp_path / "w.json").exists()

    def test_export_restore_envelope_round_trip(self):
        primary = ServeRegistry()
        primary.create("p", SPEC)
        primary.get("p").buffer(np.arange(1, 1001, dtype=np.float64))
        primary.flush("p")
        exported = primary.export_envelope("p")
        assert exported["epoch"] == 1 and exported["n"] == 1000

        replica = ServeRegistry()
        entry = replica.restore_envelope(
            "p", exported["envelope"],
            SketchSpec.from_dict(exported["spec"]), exported["epoch"],
        )
        phis = [0.1, 0.5, 0.9]
        assert entry.sketch.query_batch(phis) == (
            primary.get("p").sketch.query_batch(phis)
        )

    def test_seal_without_persist_dir_raises(self):
        reg = ServeRegistry()
        entry = reg.create("m", SPEC)
        with pytest.raises(InvalidParameterError, match="persist_dir"):
            reg.seal(entry)


class TestEnvelopeInfo:
    def test_reports_header_without_unpickling(self):
        sketch = build_sketch("gk_array", 0.01)
        feed_stream(sketch, np.arange(1, 101, dtype=np.float64))
        blob = snapshot(sketch)
        info = envelope_info(blob)
        assert info.tag  # the registered snapshot tag
        assert info.version == 1
        assert info.payload_bytes > 0
        assert 0 <= info.crc32 < 2 ** 32

    def test_detects_corruption(self):
        sketch = build_sketch("gk_array", 0.01)
        feed_stream(sketch, np.arange(1, 101, dtype=np.float64))
        blob = bytearray(snapshot(sketch))
        blob[-1] ^= 0xFF
        with pytest.raises(CorruptSummaryError):
            envelope_info(bytes(blob))
