"""Service semantics: cached reads, the parallel route, and the
flush-mid-flight race (a pre-flush answer must never reach a
post-flush reader)."""

import asyncio

import numpy as np
import pytest

from repro.core.errors import (
    EmptySummaryError,
    InvalidParameterError,
    UnmergeableSketchError,
)
from repro.evaluation.harness import build_sketch, feed_stream
from repro.obs import metrics as obs_metrics
from repro.serve.registry import SketchSpec
from repro.serve.service import QuantileService

SPEC = SketchSpec(algorithm="gk_array", eps=0.01)


@pytest.fixture(autouse=True)
def _no_metrics():
    previous = obs_metrics._recorder
    obs_metrics.disable()
    yield
    obs_metrics._recorder = previous


def run(coro):
    return asyncio.run(coro)


async def _loaded_service(data, **kwargs):
    service = QuantileService(**kwargs)
    await service.create("s", SPEC)
    await service.ingest("s", data, flush=True)
    return service


class TestReads:
    def test_quantiles_match_offline_sketch(self):
        data = np.arange(1, 5001, dtype=np.float64)
        phis = [0.01, 0.25, 0.5, 0.75, 0.99]

        async def scenario():
            service = await _loaded_service(data)
            return await service.quantiles("s", phis)

        result = run(scenario())
        offline = build_sketch("gk_array", 0.01)
        feed_stream(offline, data)
        assert [q["value"] for q in result["quantiles"]] == (
            offline.query_batch(phis)
        )
        assert result["epoch"] == 1 and result["n"] == 5000

    def test_second_read_hits_cache(self):
        async def scenario():
            service = await _loaded_service([1.0, 2.0, 3.0])
            first = await service.quantiles("s", [0.5])
            second = await service.quantiles("s", [0.5])
            return first, second

        first, second = run(scenario())
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert first["quantiles"] == second["quantiles"]

    def test_ranks_and_cdf(self):
        data = np.arange(1, 1001, dtype=np.float64)

        async def scenario():
            service = await _loaded_service(data)
            ranks = await service.ranks("s", [500.0])
            cdf = await service.cdf("s", 4)
            return ranks, cdf

        ranks, cdf = run(scenario())
        assert ranks["ranks"][0]["rank"] == pytest.approx(0.5, abs=0.02)
        assert len(cdf["points"]) == 4
        assert cdf["points"] == sorted(cdf["points"])

    def test_query_batch_coalesces_duplicates(self):
        async def scenario():
            service = await _loaded_service(list(range(1, 101)))
            results = await service.query_batch([
                {"sketch": "s", "phis": [0.5, 0.9]},
                {"sketch": "s", "phis": [0.5, 0.9]},
            ])
            return results

        first, second = run(scenario())
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert first["quantiles"] == second["quantiles"]

    def test_empty_sketch_refuses_reads(self):
        async def scenario():
            service = QuantileService()
            await service.create("s", SPEC)
            await service.quantiles("s", [0.5])

        with pytest.raises(EmptySummaryError):
            run(scenario())

    def test_bad_params_rejected(self):
        async def scenario(call):
            service = await _loaded_service([1.0, 2.0])
            await call(service)

        for call in (
            lambda s: s.quantiles("s", []),
            lambda s: s.ranks("s", []),
            lambda s: s.cdf("s", 0),
            lambda s: s.quantiles("s", [1.5]),
        ):
            with pytest.raises(InvalidParameterError):
                run(scenario(call))


class TestWrites:
    def test_buffered_ingest_leaves_answers_sealed(self):
        async def scenario():
            service = await _loaded_service(list(range(1, 101)))
            before = await service.quantiles("s", [0.5])
            result = await service.ingest("s", [1e6] * 500)
            mid = await service.quantiles("s", [0.5])
            await service.flush("s")
            after = await service.quantiles("s", [0.5])
            return before, result, mid, after

        before, result, mid, after = run(scenario())
        assert result["flushed"] is False
        assert result["pending_elements"] == 500
        assert mid["quantiles"] == before["quantiles"]  # still sealed
        assert mid["epoch"] == 1
        assert after["epoch"] == 2
        assert after["quantiles"] != before["quantiles"]

    def test_auto_flush_threshold(self):
        async def scenario():
            service = QuantileService(flush_threshold=100)
            await service.create("s", SPEC)
            small = await service.ingest("s", list(range(50)))
            big = await service.ingest("s", list(range(60)))
            return small, big

        small, big = run(scenario())
        assert small["flushed"] is False
        assert big["flushed"] is True  # 110 pending >= 100
        assert big["pending_elements"] == 0

    def test_parallel_route_merges_and_bumps_epoch(self):
        data = np.arange(50_000, dtype=np.float64)

        async def scenario():
            service = QuantileService()
            await service.create(
                "p", SketchSpec(algorithm="kll", eps=0.02, seed=7)
            )
            result = await service.ingest("p", data, workers=2)
            query = await service.quantiles("p", [0.5])
            return result, query

        result, query = run(scenario())
        assert result["flushed"] is True and result["accepted"] == 50_000
        assert query["n"] == 50_000
        assert query["quantiles"][0]["value"] == pytest.approx(
            25_000, rel=0.05
        )

    def test_parallel_route_rejects_unmergeable(self):
        async def scenario():
            service = QuantileService()
            await service.create(
                "u", SketchSpec(algorithm="reservoir", eps=0.05)
            )
            await service.ingest("u", [1.0, 2.0], workers=2)

        with pytest.raises(UnmergeableSketchError):
            run(scenario())

    def test_parallel_route_rejects_shared_seed_merges(self):
        async def scenario():
            service = QuantileService()
            await service.create(
                "d", SketchSpec(algorithm="dcs", eps=0.05,
                                universe_log2=16, seed=3)
            )
            await service.ingest("d", [1, 2, 3], workers=2)

        with pytest.raises(InvalidParameterError, match="seed"):
            run(scenario())

    def test_drop_invalidates_cache(self):
        async def scenario():
            service = await _loaded_service([1.0, 2.0, 3.0])
            await service.quantiles("s", [0.5])
            await service.drop("s")
            return len(service.cache)

        assert run(scenario()) == 0


class TestFlushMidFlightRace:
    """The satellite acceptance test: pause a coalesced computation
    across a flush and prove no pre-flush answer leaks to any
    post-flush reader (and no answer lands under a pre-flush key)."""

    def test_paused_computation_never_serves_stale_answers(self):
        async def scenario():
            service = await _loaded_service(
                list(range(1, 1001)), flush_threshold=0
            )
            warm = await service.quantiles("s", [0.5])

            original = service._compute
            release = asyncio.Event()
            compute_log = []

            async def paused(entry, kind, params):
                compute_log.append((entry.epoch, kind, params))
                await release.wait()
                return await original(entry, kind, params)

            service._compute = paused

            # Two identical reads: a leader paused inside the compute
            # and a coalesced waiter parked on its future.
            leader = asyncio.ensure_future(
                service.quantiles("s", [0.9])
            )
            await asyncio.sleep(0)
            waiter = asyncio.ensure_future(
                service.quantiles("s", [0.9])
            )
            await asyncio.sleep(0)
            assert service.cache.inflight == 1

            # A flush lands mid-flight with wildly different data.
            await service.ingest("s", [1e6] * 3000, flush=True)

            release.set()
            leader_result = await leader
            waiter_result = await waiter
            post = await service.quantiles("s", [0.5])
            return warm, leader_result, waiter_result, post, (
                compute_log, list(service.cache._done)
            )

        warm, leader_result, waiter_result, post, extras = run(scenario())
        compute_log, cached_keys = extras

        # Both paused readers retried into epoch 2 — their answers
        # include the post-flush data, not the epoch-1 snapshot.
        assert warm["epoch"] == 1
        for result in (leader_result, waiter_result):
            assert result["epoch"] == 2
            assert result["n"] == 4000
            assert result["quantiles"][0]["value"] == 1e6
        # A post-flush reader of the warmed params sees epoch 2, not
        # the pre-flush cached answer.
        assert post["epoch"] == 2
        assert post["cache"] != "hit" or post["n"] == 4000
        assert post["quantiles"] != warm["quantiles"]
        # The paused compute ran at epoch 1 first, then the retries at
        # epoch 2; nothing was ever filed under an epoch-1 key.
        assert compute_log[0][0] == 1
        assert all(epoch == 2 for epoch, _k, _p in compute_log[1:])
        assert cached_keys and all(key[1] == 2 for key in cached_keys)

    def test_repeated_flushes_fall_back_to_uncached(self):
        """If a flush lands during *every* retry, the read still
        answers (uncached) instead of looping forever."""

        async def scenario():
            service = await _loaded_service(
                list(range(1, 101)), flush_threshold=0
            )
            original = service._compute

            async def flushing_compute(entry, kind, params):
                # Sabotage: every computation is immediately staled.
                service.cache.invalidate(entry.name)
                return await original(entry, kind, params)

            service._compute = flushing_compute
            return await service.quantiles("s", [0.5])

        result = run(scenario())
        assert result["cache"] == "uncached"
        assert result["n"] == 100


class TestStats:
    def test_stats_shape_and_counters(self):
        obs_metrics.enable(obs_metrics.MetricsRegistry())

        async def scenario():
            service = await _loaded_service(list(range(1, 101)))
            await service.quantiles("s", [0.5])
            await service.quantiles("s", [0.5])
            return service.stats()

        stats = run(scenario())
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["counters"]["queries"] == 2
        assert stats["counters"]["ingested"] == 100
        assert stats["counters"]["flushes"] == 1
        assert stats["uptime_s"] >= 0
        assert stats["sketches"][0]["name"] == "s"

    def test_registry_and_persist_dir_conflict(self):
        from repro.serve.registry import ServeRegistry

        with pytest.raises(InvalidParameterError):
            QuantileService(
                registry=ServeRegistry(), persist_dir="/tmp/x"
            )
