"""Tests for the terminal plotting helpers."""

from __future__ import annotations

import pytest

from repro.core import InvalidParameterError
from repro.evaluation import RunResult
from repro.evaluation.plotting import plot_results, text_plot


def _series():
    return {
        "alpha": [(0.01, 100.0), (0.001, 1000.0), (0.0001, 10000.0)],
        "beta": [(0.01, 50.0), (0.001, 200.0)],
    }


class TestTextPlot:
    def test_contains_markers_and_legend(self) -> None:
        out = text_plot(_series(), title="demo")
        assert out.startswith("demo")
        assert "o alpha" in out and "x beta" in out
        body = out.split("\n", 1)[1]
        assert "o" in body and "x" in body

    def test_axis_ticks_rendered(self) -> None:
        out = text_plot(_series())
        assert "0.0001" in out or "1e-04" in out.replace("e-04", "e-04")
        assert "1e+04" in out or "10000" in out or "1e4" in out

    def test_linear_axes(self) -> None:
        out = text_plot(
            {"s": [(0.0, 1.0), (5.0, 2.0)]}, x_log=False, y_log=False
        )
        assert "s" in out

    def test_log_axis_rejects_nonpositive(self) -> None:
        with pytest.raises(InvalidParameterError):
            text_plot({"s": [(0.0, 1.0)]}, x_log=True)
        with pytest.raises(InvalidParameterError):
            text_plot({"s": [(1.0, -1.0)]}, y_log=True)

    def test_empty_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            text_plot({})
        with pytest.raises(InvalidParameterError):
            text_plot({"s": []})

    def test_tiny_area_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            text_plot(_series(), width=4)

    def test_collisions_marked(self) -> None:
        out = text_plot(
            {"a": [(1.0, 1.0)], "b": [(1.0, 1.0)]},
            x_log=False, y_log=False,
        )
        assert "?" in out

    def test_single_point_degenerate_ranges(self) -> None:
        out = text_plot({"s": [(2.0, 3.0)]}, x_log=False, y_log=False)
        assert "o" in out


class TestPlotResults:
    def _result(self, name, eps, kb):
        return RunResult(
            algorithm=name, eps=eps, n=100, update_time_us=1.0,
            peak_words=int(kb * 256), max_error=eps / 2,
            avg_error=eps / 4, repeats=1,
        )

    def test_per_algorithm_series(self) -> None:
        results = [
            self._result("gk", 0.01, 10),
            self._result("gk", 0.001, 100),
            self._result("random", 0.01, 5),
        ]
        out = plot_results(results, "avg_error", "peak_kb", title="fig")
        assert "o gk" in out and "x random" in out
