"""Tests for the distribution-analytics layer (CDF/PDF/QQ/KS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ExactQuantiles, GKArray, RandomSketch
from repro.core import InvalidParameterError
from repro.evaluation.analysis import (
    cdf,
    compare,
    describe,
    ks_distance,
    pdf_histogram,
    qq_points,
)


@pytest.fixture
def normal_sketch(rng):
    sk = GKArray(eps=0.005)
    sk.extend(rng.normal(0, 1, size=30_000).tolist())
    return sk


class TestCDF:
    def test_monotone_and_anchored(self, normal_sketch) -> None:
        values, probs = cdf(normal_sketch, resolution=50)
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probs) > 0)
        assert 0 < probs[0] < probs[-1] < 1

    def test_matches_normal_cdf(self, normal_sketch) -> None:
        from scipy.stats import norm

        values, probs = cdf(normal_sketch, resolution=99)
        theoretical = norm.cdf(values)
        assert float(np.abs(theoretical - probs).max()) < 0.02

    def test_rejects_bad_resolution(self, normal_sketch) -> None:
        with pytest.raises(InvalidParameterError):
            cdf(normal_sketch, resolution=1)


class TestPDF:
    def test_densities_integrate_to_one(self, normal_sketch) -> None:
        edges, densities = pdf_histogram(normal_sketch, bins=25)
        mass = float((densities * np.diff(edges)).sum())
        assert mass == pytest.approx(1.0, abs=0.02)

    def test_peak_near_mode(self, normal_sketch) -> None:
        edges, densities = pdf_histogram(normal_sketch, bins=25)
        centers = (edges[:-1] + edges[1:]) / 2
        assert abs(float(centers[np.argmax(densities)])) < 0.5

    def test_rejects_bad_bins(self, normal_sketch) -> None:
        with pytest.raises(InvalidParameterError):
            pdf_histogram(normal_sketch, bins=0)


class TestQQ:
    def test_same_distribution_on_diagonal(self, rng) -> None:
        a = RandomSketch(eps=0.01, seed=1)
        b = RandomSketch(eps=0.01, seed=2)
        a.extend(rng.normal(0, 1, size=20_000).tolist())
        b.extend(rng.normal(0, 1, size=20_000).tolist())
        xs, ys = qq_points(a, b, resolution=30)
        assert float(np.abs(xs - ys).max()) < 0.15

    def test_shift_visible(self, rng) -> None:
        a = ExactQuantiles(rng.normal(0, 1, size=5_000).tolist())
        b = ExactQuantiles(rng.normal(2, 1, size=5_000).tolist())
        xs, ys = qq_points(a, b, resolution=30)
        assert float(np.median(ys - xs)) == pytest.approx(2.0, abs=0.2)


class TestKS:
    def test_identical_near_zero(self, rng) -> None:
        data = rng.normal(0, 1, size=20_000)
        a = GKArray(eps=0.005)
        b = GKArray(eps=0.005)
        a.extend(data.tolist())
        b.extend(data.tolist())
        assert ks_distance(a, b) < 0.02

    def test_disjoint_near_one(self, rng) -> None:
        a = ExactQuantiles(rng.uniform(0, 1, size=2_000).tolist())
        b = ExactQuantiles(rng.uniform(10, 11, size=2_000).tolist())
        assert ks_distance(a, b) > 0.95

    def test_matches_theoretical_shift(self, rng) -> None:
        """KS between N(0,1) and N(1,1) is about 0.38."""
        a = GKArray(eps=0.005)
        b = GKArray(eps=0.005)
        a.extend(rng.normal(0, 1, size=30_000).tolist())
        b.extend(rng.normal(1, 1, size=30_000).tolist())
        assert ks_distance(a, b) == pytest.approx(0.383, abs=0.04)


class TestDescribe:
    def test_normal_card(self, normal_sketch) -> None:
        card = describe(normal_sketch)
        assert card.n == 30_000
        assert abs(card.median) < 0.05
        assert card.iqr == pytest.approx(1.35, abs=0.1)
        assert abs(card.skew_proxy) < 0.15

    def test_skewed_card(self, rng) -> None:
        sk = ExactQuantiles(rng.lognormal(0, 1, size=10_000).tolist())
        assert describe(sk).skew_proxy > 0.5

    def test_compare_report(self, rng) -> None:
        a = ExactQuantiles(rng.normal(0, 1, size=3_000).tolist())
        b = ExactQuantiles(rng.normal(3, 1, size=3_000).tolist())
        report = compare(a, b)
        assert report["median_shift"] == pytest.approx(3.0, abs=0.2)
        assert report["ks_distance"] > 0.8
        assert report["a"].n == report["b"].n == 3_000
