"""Tests for the measurement harness, sweeps, and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InvalidParameterError
from repro.evaluation import (
    PeakSpaceTracker,
    RunResult,
    build_sketch,
    by_algorithm,
    bytes_to_words,
    feed_stream,
    format_table,
    matrix_table,
    results_table,
    run_experiment,
    scaled_n,
    sweep,
    tradeoff_series,
)
from repro.streams import uniform_stream


class TestBuildSketch:
    def test_comparison_algorithm(self) -> None:
        sk = build_sketch("gk_array", eps=0.01)
        assert sk.name == "GKArray"

    def test_fixed_universe_requires_log(self) -> None:
        with pytest.raises(InvalidParameterError):
            build_sketch("dcs", eps=0.01)
        sk = build_sketch("dcs", eps=0.01, universe_log2=16, seed=1)
        assert sk.universe == 1 << 16

    def test_extra_kwargs_forwarded(self) -> None:
        sk = build_sketch(
            "dcs", eps=0.01, universe_log2=16, seed=1, width=99, depth=3
        )
        assert sk.width == 99 and sk.depth == 3

    def test_unknown_algorithm(self) -> None:
        with pytest.raises(InvalidParameterError):
            build_sketch("nope", eps=0.01)


class TestFeedStream:
    def test_insert_only(self) -> None:
        data = uniform_stream(5_000, universe_log2=16, seed=1)
        sk = build_sketch("gk_array", eps=0.02)
        seconds, peak = feed_stream(sk, data)
        assert sk.n == 5_000
        assert seconds > 0 and peak > 0

    def test_turnstile_with_deletions(self) -> None:
        data = uniform_stream(3_000, universe_log2=12, seed=2)
        sk = build_sketch("dcs", eps=0.05, universe_log2=12, seed=3)
        feed_stream(sk, data, deletions=data[:1_000])
        assert sk.n == 2_000

    def test_deletions_rejected_for_cash_register(self) -> None:
        data = uniform_stream(100, universe_log2=12, seed=2)
        sk = build_sketch("gk_array", eps=0.05)
        with pytest.raises(InvalidParameterError):
            feed_stream(sk, data, deletions=data[:10])


class TestFeedStreamTiming:
    def test_sampling_excluded_from_update_time(self, monkeypatch) -> None:
        """The historical bug: ``tracker.sample()`` ran inside the timed
        window, so a slow ``size_words`` inflated update_time.  Make
        sampling artificially expensive and check it lands in the sample
        bucket, not the update bucket."""
        import time as _time

        from repro.cash_register.gk_array import GKArray

        original = GKArray.size_words

        def slow_size_words(self):
            _time.sleep(0.005)
            return original(self)

        monkeypatch.setattr(GKArray, "size_words", slow_size_words)
        data = uniform_stream(2_000, universe_log2=16, seed=1)
        sk = build_sketch("gk_array", eps=0.05)
        timings = {}
        seconds, _peak = feed_stream(sk, data, chunk=500, timings=timings)
        assert seconds == timings["update_s"]
        # 5 sample points x 5ms dwarf the actual update work.
        assert timings["sample_s"] > 0.02
        assert timings["update_s"] < timings["sample_s"]

    def test_timings_dict_filled(self) -> None:
        data = uniform_stream(1_000, universe_log2=16, seed=2)
        sk = build_sketch("gk_array", eps=0.05)
        timings = {}
        feed_stream(sk, data, timings=timings)
        assert set(timings) == {
            "update_s", "sample_s", "ingest_path", "batch_size"
        }
        assert timings["update_s"] > 0
        assert timings["sample_s"] >= 0
        assert timings["ingest_path"] == "extend"
        assert timings["batch_size"] == 4096


class TestRunExperiment:
    def test_deterministic_runs_once(self) -> None:
        data = uniform_stream(5_000, universe_log2=16, seed=4)
        result = run_experiment("gk_array", data, eps=0.02, repeats=5)
        assert result.repeats == 1
        assert result.max_error <= 0.02
        assert result.n == 5_000
        assert result.peak_bytes == result.peak_words * 4

    def test_randomized_repeats(self) -> None:
        data = uniform_stream(5_000, universe_log2=16, seed=4)
        result = run_experiment("random", data, eps=0.05, repeats=3, seed=1)
        assert result.repeats == 3
        assert result.max_error <= 0.05

    def test_turnstile_with_deletions_ground_truth(self) -> None:
        data = np.concatenate(
            [np.arange(1_000, dtype=np.int64),
             np.full(1_000, 4_000, dtype=np.int64)]
        )
        deletions = np.full(1_000, 4_000, dtype=np.int64)
        result = run_experiment(
            "dcs", data, eps=0.05, universe_log2=12,
            deletions=deletions, seed=2,
        )
        assert result.n == 1_000  # ground truth is the remaining multiset

    def test_invalid_deletions_rejected(self) -> None:
        data = np.asarray([1, 2, 3], dtype=np.int64)
        with pytest.raises(InvalidParameterError):
            run_experiment(
                "dcs", data, eps=0.1, universe_log2=8,
                deletions=np.asarray([9], dtype=np.int64),
            )

    def test_post_processing_flag(self) -> None:
        data = uniform_stream(8_000, universe_log2=16, seed=6)
        result = run_experiment(
            "dcs", data, eps=0.02, universe_log2=16, seed=7,
            post_process=True, eta=0.1, repeats=1,
        )
        assert result.algorithm == "dcs+post"

    def test_phase_breakdown_in_extra(self) -> None:
        data = uniform_stream(3_000, universe_log2=16, seed=5)
        result = run_experiment("gk_array", data, eps=0.05)
        assert set(result.extra) == {
            "build_s", "update_s", "sample_s", "query_s", "ingest_path"
        }
        assert result.extra["ingest_path"] == "extend"
        assert all(
            v >= 0
            for k, v in result.extra.items()
            if k != "ingest_path"
        )
        assert result.update_time_us == pytest.approx(
            1e6 * result.extra["update_s"] / len(data)
        )

    def test_collect_metrics_populates_recorder(self) -> None:
        from repro.obs import metrics as obs_metrics

        data = uniform_stream(3_000, universe_log2=16, seed=5)
        previous = obs_metrics._recorder
        try:
            obs_metrics.disable()
            result = run_experiment(
                "gk_array", data, eps=0.05, collect_metrics=True
            )
            reg = obs_metrics.recorder()
            assert reg.enabled
            assert reg.counter("evaluation.runs", algo="gk_array").value == 1
            assert (
                reg.counter("evaluation.updates", algo="GKArray").value
                == 3_000
            )
            phase = reg.histogram(
                "evaluation.phase_ns", phase="update", algo="gk_array"
            )
            assert phase.count == 1
            assert result.extra["update_s"] > 0
        finally:
            obs_metrics._recorder = previous


class TestSweep:
    def test_sweep_shape_and_grouping(self) -> None:
        data = uniform_stream(4_000, universe_log2=16, seed=8)
        results = sweep(
            ["gk_array", "random"], data, [0.05, 0.02], repeats=1, seed=0
        )
        assert len(results) == 4
        curves = by_algorithm(results)
        assert set(curves) == {"GKArray".lower() and "gk_array", "random"}
        assert [r.eps for r in curves["gk_array"]] == [0.05, 0.02]

    def test_sweep_with_post_suffix(self) -> None:
        data = uniform_stream(4_000, universe_log2=12, seed=9)
        results = sweep(
            ["dcs", "dcs+post"], data, [0.05],
            universe_log2=12, repeats=1, seed=0,
        )
        names = {r.algorithm for r in results}
        assert names == {"dcs", "dcs+post"}

    def test_per_algorithm_kwargs(self) -> None:
        data = uniform_stream(2_000, universe_log2=12, seed=10)
        results = sweep(
            ["dcs"], data, [0.05], universe_log2=12, repeats=1,
            per_algorithm_kwargs={"dcs": {"width": 33}},
        )
        assert len(results) == 1


class TestSpaceTracker:
    def test_peak_tracking(self) -> None:
        class Growing:
            words = 10

            def size_words(self):
                return self.words

        g = Growing()
        tracker = PeakSpaceTracker(g, interval=2)
        g.words = 100
        tracker.tick()  # 1 < 2: not sampled yet
        assert tracker.peak_words == 10
        tracker.tick()  # hits interval
        assert tracker.peak_words == 100
        g.words = 50
        tracker.sample()
        assert tracker.peak_words == 100
        assert tracker.peak_bytes == 400

    def test_invalid_interval(self) -> None:
        with pytest.raises(InvalidParameterError):
            PeakSpaceTracker(None, interval=0)

    def test_bytes_to_words(self) -> None:
        assert bytes_to_words(1024) == 256
        with pytest.raises(InvalidParameterError):
            bytes_to_words(-1)


class TestReporting:
    def _result(self, name: str, eps: float) -> RunResult:
        return RunResult(
            algorithm=name, eps=eps, n=100, update_time_us=1.5,
            peak_words=256, max_error=0.01, avg_error=0.005, repeats=1,
        )

    def test_results_table_contains_rows(self) -> None:
        text = results_table(
            [self._result("gk", 0.01), self._result("random", 0.01)],
            title="demo",
        )
        assert "demo" in text and "gk" in text and "random" in text
        assert "us/update" in text

    def test_tradeoff_series(self) -> None:
        rs = [self._result("gk", 0.01), self._result("gk", 0.001)]
        text = tradeoff_series(rs, "avg_error", "peak_kb", title="fig")
        assert text.startswith("fig")
        assert text.count("(") == 2

    def test_matrix_table(self) -> None:
        cells = {(3, 64): 0.5, (3, 128): 0.25, (5, 64): 0.4}
        text = matrix_table(
            "d", [3, 5], "KB", [64, 128], cells, title="tuning"
        )
        assert "tuning" in text
        assert "-" in text  # the missing (5, 128) cell

    def test_format_table_empty(self) -> None:
        text = format_table(["a", "b"], [])
        assert "a" in text


def test_scaled_n_env(monkeypatch) -> None:
    monkeypatch.setenv("REPRO_SCALE", "2.0")
    assert scaled_n(100_000) == 200_000
    monkeypatch.delenv("REPRO_SCALE")
    assert scaled_n(100_000) == 100_000
