"""Tests for the error metrics (Section 4.1.2 semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExactQuantiles, InvalidParameterError
from repro.evaluation import (
    ErrorReport,
    ks_divergence,
    measure_errors,
    phi_grid,
    quantile_grid_truth,
    rank_error,
)


class TestPhiGrid:
    def test_paper_grid(self) -> None:
        grid = phi_grid(0.25)
        assert grid == [0.25, 0.5, 0.75]

    def test_capped_for_small_eps(self) -> None:
        grid = phi_grid(1e-6, max_queries=101)
        assert len(grid) == 101
        assert grid[0] == pytest.approx(1e-6)
        assert grid[-1] == pytest.approx(1 - 1e-6)

    def test_rejects_bad_eps(self) -> None:
        with pytest.raises(InvalidParameterError):
            phi_grid(0.0)
        with pytest.raises(InvalidParameterError):
            phi_grid(1.5)


class TestRankError:
    def test_inside_interval_is_zero(self) -> None:
        data = np.asarray([1, 2, 2, 2, 5])
        # value 2 occupies ranks [1, 4]
        for target in (1.0, 2.5, 4.0):
            assert rank_error(data, 2, target) == 0.0

    def test_outside_interval_distance(self) -> None:
        data = np.asarray([1, 2, 2, 2, 5])
        assert rank_error(data, 2, 0.0) == 1.0
        assert rank_error(data, 2, 4.5) == 0.5

    def test_absent_value(self) -> None:
        data = np.asarray([1, 5])
        # value 3 has empty interval at rank 1
        assert rank_error(data, 3, 1.0) == 0.0
        assert rank_error(data, 3, 2.0) == 1.0


class TestMeasureErrors:
    def test_exact_summary_has_zero_error(self, rng) -> None:
        data = rng.integers(0, 1000, size=5_000, dtype=np.int64)
        exact = ExactQuantiles(data.tolist())
        report = measure_errors(exact, np.sort(data), eps=0.01)
        assert isinstance(report, ErrorReport)
        assert report.max_error <= 1.0 / 5_000  # quantization only
        assert report.avg_error <= report.max_error

    def test_shifted_summary_measured(self, rng) -> None:
        """A summary answering from shifted data shows the shift."""
        data = np.arange(10_000, dtype=np.int64)

        class Shifted:
            def query_batch(self, phis):
                return [int(phi * 10_000) + 500 for phi in phis]

        report = measure_errors(Shifted(), data, eps=0.1)
        assert report.max_error == pytest.approx(0.05, abs=0.01)

    def test_empty_data_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            measure_errors(ExactQuantiles([1]), np.asarray([]), eps=0.1)


class TestKS:
    def test_identical_is_zero(self, rng) -> None:
        data = np.sort(rng.normal(0, 1, size=1_000))
        assert ks_divergence(data, data) == 0.0

    def test_disjoint_is_one(self) -> None:
        a = np.asarray([1.0, 2.0])
        b = np.asarray([10.0, 11.0])
        assert ks_divergence(a, b) == 1.0

    def test_empty_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            ks_divergence(np.asarray([]), np.asarray([1.0]))


def test_quantile_grid_truth() -> None:
    data = np.arange(100, dtype=np.int64)
    truth = quantile_grid_truth(data, [0.0, 0.5, 0.999])
    assert truth.tolist() == [0, 50, 99]
