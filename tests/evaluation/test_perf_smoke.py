"""Perf-smoke gate: the batch fast paths must stay fast and faithful.

Two layers of protection:

* a **live** check that batch ingest beats the scalar loop on a small
  stream (the real speedups are 2.5-8x at n=10^6, so ``batch < scalar``
  at n=50k has a wide safety margin against timer noise), and that the
  batch-built summary matches elementwise feeding per its equivalence
  class;
* a **baseline** check that the committed ``BENCH_speed.json`` artifact
  is present, well-formed, and records the >= 2x speedups the
  acceptance bar requires — regenerating it with a regressed kernel
  fails this gate.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.cash_register import GKArray, QDigest, RandomSketch

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
ARTIFACT = REPO_ROOT / "BENCH_speed.json"

N = 50_000

FACTORIES = [
    ("gk_array", lambda: GKArray(eps=0.005)),
    ("qdigest", lambda: QDigest(eps=0.01, universe_log2=16)),
    ("random", lambda: RandomSketch(eps=0.01, seed=3)),
]


@pytest.fixture(scope="module")
def stream() -> np.ndarray:
    return np.random.default_rng(7).integers(
        0, 1 << 16, size=N, dtype=np.int64
    )


@pytest.mark.parametrize(
    "factory", [f for _, f in FACTORIES], ids=[n for n, _ in FACTORIES]
)
class TestBatchBeatsScalar:
    def test_batch_ingest_is_not_slower(self, factory, stream) -> None:
        # Timed on a possibly loaded (single-core) CI box: pass on the
        # first of three interleaved attempts where batch wins, so one
        # scheduler hiccup cannot fail the gate.  The real margins are
        # 2.5-8x (BENCH_speed.json); a kernel regression loses all
        # three attempts.
        attempts = []
        for _ in range(3):
            batched = factory()
            start = time.perf_counter()
            batched.extend(stream)
            batch_s = time.perf_counter() - start

            looped = factory()
            values = stream.tolist()
            start = time.perf_counter()
            for v in values:
                looped.update(v)
            scalar_s = time.perf_counter() - start

            if batch_s < scalar_s:
                return
            attempts.append((batch_s, scalar_s))
        pytest.fail(
            "batch extend slower than the scalar loop on every attempt "
            f"(batch_s, scalar_s): {attempts}"
        )


class TestBatchStateFaithful:
    def test_gk_array_bit_identical(self, stream) -> None:
        batched, looped = GKArray(eps=0.005), GKArray(eps=0.005)
        batched.extend(stream)
        for v in stream.tolist():
            looped.update(v)
        assert batched.tuples() == looped.tuples()

    def test_random_same_seed_identical(self, stream) -> None:
        batched = RandomSketch(eps=0.01, seed=3)
        looped = RandomSketch(eps=0.01, seed=3)
        batched.extend(stream)
        for v in stream.tolist():
            looped.update(v)
        phis = [i / 20 for i in range(21)]
        assert batched.query_batch(phis) == looped.query_batch(phis)
        assert (
            batched._rng.bit_generator.state
            == looped._rng.bit_generator.state
        )

    def test_qdigest_error_equivalent(self, stream) -> None:
        sk = QDigest(eps=0.01, universe_log2=16)
        sk.extend(stream)
        sk.validate()
        sorted_data = np.sort(stream)
        for phi in (0.01, 0.25, 0.5, 0.75, 0.99):
            answer = sk.query(phi)
            lo = np.searchsorted(sorted_data, answer, "left")
            hi = np.searchsorted(sorted_data, answer, "right")
            target = phi * N
            err = 0.0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            assert err <= sk.eps * N + 1


class TestBaselineArtifact:
    def test_artifact_exists_and_is_wellformed(self) -> None:
        assert ARTIFACT.exists(), (
            "BENCH_speed.json missing at the repo root; regenerate with "
            "PYTHONPATH=src python benchmarks/bench_speed.py"
        )
        payload = json.loads(ARTIFACT.read_text())
        assert payload["schema"] == 1
        assert payload["n"] >= 1_000_000
        for name, row in payload["algorithms"].items():
            for key in (
                "scalar_update_ns_per_item",
                "batch_ns_per_item",
                "batch_speedup",
                "query_batch_us_per_quantile",
                "equivalence",
            ):
                assert key in row, f"{name} row missing {key}"

    def test_acceptance_speedups_recorded(self) -> None:
        payload = json.loads(ARTIFACT.read_text())
        for name in ("gk_array", "qdigest", "random"):
            speedup = payload["algorithms"][name]["batch_speedup"]
            assert speedup >= 2.0, (
                f"{name}: recorded batch speedup {speedup:.2f}x is below "
                f"the 2x acceptance baseline"
            )

    def test_dcs_ns_per_item_ceiling(self) -> None:
        # The hash-plane cache plus the dyadic counts-fold hold DCS
        # batch ingest under 1 µs/item (the pre-cache artifact recorded
        # 3.9 µs/item); regenerating with a kernel that rehashes per
        # batch fails this gate.
        payload = json.loads(ARTIFACT.read_text())
        row = payload["algorithms"]["dcs"]
        assert row["batch_ns_per_item"] <= 1000.0, (
            f"dcs: batch ingest at {row['batch_ns_per_item']:.0f} ns/item "
            "exceeds the 1 µs/item ceiling the hash-plane cache "
            "guarantees"
        )
        assert row["equivalence"] == "exact (update_batch)"
