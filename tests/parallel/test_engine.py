"""The sharded ingest engine: transport, merging, observability.

Worker counts stay at 2-3 and streams small: every engine test forks
real processes, and correctness (not throughput) is what is being
checked here — the scaling curve lives in
``benchmarks/bench_parallel.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    InvalidParameterError,
    UnmergeableSketchError,
)
from repro.core.snapshot import restore, snapshot
from repro.evaluation.harness import build_sketch
from repro.evaluation.metrics import measure_errors
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.parallel import (
    ChunkSlot,
    ShardPlan,
    ShardedIngestEngine,
    parallel_feed,
)
from repro.parallel.shm import attach_slots

EPS = 0.05
PHIS = [i / 10 for i in range(1, 10)]


@pytest.fixture
def stream(rng) -> np.ndarray:
    return rng.integers(0, 1 << 12, size=6_000, dtype=np.int64)


class TestChunkSlot:
    def test_roundtrip(self) -> None:
        slot = ChunkSlot(capacity=16, dtype=np.dtype(np.int64))
        try:
            data = np.arange(10, dtype=np.int64)
            assert slot.write(data) == 10
            out = slot.read(10)
            assert out.tolist() == data.tolist()
        finally:
            slot.close()
            slot.unlink()

    def test_read_is_a_detached_copy(self) -> None:
        slot = ChunkSlot(capacity=8, dtype=np.dtype(np.int64))
        try:
            slot.write(np.full(4, 7, dtype=np.int64))
            first = slot.read(4)
            slot.write(np.full(4, 9, dtype=np.int64))
            assert first.tolist() == [7, 7, 7, 7]
        finally:
            slot.close()
            slot.unlink()

    def test_attach_by_name_sees_writes(self) -> None:
        owner = ChunkSlot(capacity=8, dtype=np.dtype(np.int64))
        try:
            owner.write(np.arange(5, dtype=np.int64))
            (view,) = attach_slots(
                [owner.name], 8, np.dtype(np.int64)
            )
            assert view.read(5).tolist() == [0, 1, 2, 3, 4]
            view.close()
        finally:
            owner.close()
            owner.unlink()

    def test_oversized_write_rejected(self) -> None:
        slot = ChunkSlot(capacity=4, dtype=np.dtype(np.int64))
        try:
            with pytest.raises(InvalidParameterError):
                slot.write(np.arange(5, dtype=np.int64))
        finally:
            slot.close()
            slot.unlink()


class TestEngine:
    @pytest.mark.parametrize(
        "algorithm,universe_log2",
        [("gk_array", None), ("kll", None), ("qdigest", 12), ("dcs", 12)],
    )
    def test_sharded_error_within_eps(
        self, stream, algorithm, universe_log2
    ) -> None:
        plan = ShardPlan(seed=3, shards=2, chunk_size=512)
        merged, _ = parallel_feed(
            algorithm, stream, EPS, plan, universe_log2=universe_log2
        )
        assert merged.n == len(stream)
        report = measure_errors(merged, np.sort(stream), EPS)
        assert report.max_error <= EPS + 1e-9

    def test_deterministic_for_fixed_plan(self, stream) -> None:
        plan = ShardPlan(seed=3, shards=3, chunk_size=512)
        first, _ = parallel_feed("kll", stream, EPS, plan)
        second, _ = parallel_feed("kll", stream, EPS, plan)
        assert first.query_batch(PHIS) == second.query_batch(PHIS)

    def test_split_ingest_matches_single_ingest(self, stream) -> None:
        """Chunk-aligned ingest(a); ingest(b) is the same deal as one
        ingest(a+b) call, so the merged summary is identical."""
        plan = ShardPlan(seed=3, shards=2, chunk_size=1000)
        with ShardedIngestEngine("gk_array", EPS, plan) as engine:
            engine.ingest(stream[:3000])
            engine.ingest(stream[3000:])
            split = engine.finish()
        whole, _ = parallel_feed("gk_array", stream, EPS, plan)
        assert split.query_batch(PHIS) == whole.query_batch(PHIS)

    def test_worker_peak_words_populated(self, stream) -> None:
        plan = ShardPlan(seed=3, shards=2, chunk_size=512)
        with ShardedIngestEngine("gk_array", EPS, plan) as engine:
            engine.ingest(stream)
            engine.finish()
            assert engine.worker_peak_words > 0

    def test_unmergeable_algorithm_rejected_up_front(self) -> None:
        plan = ShardPlan(seed=3, shards=2)
        with pytest.raises(UnmergeableSketchError):
            ShardedIngestEngine("reservoir", EPS, plan)

    def test_ingest_after_finish_rejected(self, stream) -> None:
        plan = ShardPlan(seed=3, shards=2, chunk_size=512)
        with ShardedIngestEngine("gk_array", EPS, plan) as engine:
            engine.ingest(stream)
            engine.finish()
            with pytest.raises(InvalidParameterError):
                engine.ingest(stream)
            with pytest.raises(InvalidParameterError):
                engine.finish()

    def test_close_is_idempotent(self, stream) -> None:
        plan = ShardPlan(seed=3, shards=2, chunk_size=512)
        engine = ShardedIngestEngine("gk_array", EPS, plan)
        engine.ingest(stream)
        engine.finish()
        engine.close()
        engine.close()


class TestObservability:
    def test_worker_metrics_absorbed_with_labels(self, stream) -> None:
        registry = obs_metrics.enable(obs_metrics.MetricsRegistry())
        try:
            plan = ShardPlan(seed=3, shards=2, chunk_size=512)
            merged, _ = parallel_feed(
                "gk_array", stream, EPS, plan, collect_metrics=True
            )
            assert merged.n == len(stream)
            snap = registry.snapshot()

            def total(metric: str) -> float:
                return sum(
                    entry["value"] for entry in snap
                    if entry["name"] == metric and "value" in entry
                )

            assert total("parallel.chunks") == 12  # ceil(6000 / 512)
            assert total("parallel.elements") == len(stream)
            assert total("parallel.merges") == 1  # two shards, one fold
            worker_labels = {
                entry["labels"]["worker"] for entry in snap
                if entry["name"] == "parallel.ingest_ns"
                and "worker" in entry["labels"]
            }
            assert worker_labels == {0, 1}
        finally:
            obs_metrics.disable()

    def test_worker_spans_ingested_into_parent_tracer(self, stream) -> None:
        tracer = obs_trace.enable_tracing(obs_trace.Tracer())
        try:
            plan = ShardPlan(seed=3, shards=2, chunk_size=512)
            parallel_feed("gk_array", stream, EPS, plan)
            worker_chunk_spans = [
                event for event in tracer.events
                if event["name"] == "parallel.ingest_chunk"
            ]
            assert len(worker_chunk_spans) == 12
            assert {
                event["labels"]["worker"] for event in worker_chunk_spans
            } == {0, 1}
            assert any(
                event["name"] == "parallel.merge_tree"
                for event in tracer.events
            )
        finally:
            obs_trace.disable_tracing()


class TestLargeSummaryShipping:
    def test_gk_adaptive_snapshot_survives_deep_summaries(self, rng) -> None:
        """Regression: GKAdaptive's linked nodes used to recurse during
        pickling, so worker summaries past ~1000 tuples could not be
        shipped back to the parent.  __getstate__ now flattens them."""
        sketch = build_sketch("gk_adaptive", 0.001, None, seed=1)
        sketch.extend(rng.integers(0, 1 << 16, size=300_000, dtype=np.int64))
        assert sketch.tuple_count() > 400
        clone = restore(snapshot(sketch))
        clone.validate()
        assert clone.query_batch(PHIS) == sketch.query_batch(PHIS)
        clone.extend(range(1000))  # restored summary keeps ingesting
        clone.validate()
