"""Parallel ingest wired through the harness, the CLI, and the runner."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cli import run as cli_run
from repro.core.errors import InvalidParameterError
from repro.evaluation import parallel_sweep, sweep
from repro.evaluation.harness import run_experiment


@pytest.fixture
def stream(rng) -> np.ndarray:
    return rng.integers(0, 1 << 12, size=5_000, dtype=np.int64)


class TestRunExperimentParallel:
    def test_parallel_run_reports_workers_and_stays_within_eps(
        self, stream
    ) -> None:
        result = run_experiment(
            "gk_array", stream, 0.05, repeats=1, seed=9, parallel=2
        )
        assert result.extra["workers"] == 2
        assert result.extra["ingest_path"] == "parallel[2]"
        assert result.extra["sample_s"] == 0.0
        assert result.max_error <= 0.05 + 1e-9

    def test_parallel_run_is_deterministic(self, stream) -> None:
        runs = [
            run_experiment(
                "kll", stream, 0.05, repeats=2, seed=9, parallel=2
            )
            for _ in range(2)
        ]
        assert runs[0].max_error == runs[1].max_error
        assert runs[0].avg_error == runs[1].avg_error

    def test_parallel_below_one_rejected(self, stream) -> None:
        with pytest.raises(InvalidParameterError):
            run_experiment("gk_array", stream, 0.05, parallel=0)

    def test_deletions_with_parallel_rejected(self, stream) -> None:
        with pytest.raises(InvalidParameterError):
            run_experiment(
                "dcs", stream, 0.05, universe_log2=12,
                deletions=stream[:100], parallel=2,
            )


class TestCliParallel:
    def _run_json(self, args, text):
        out = io.StringIO()
        code = cli_run(args + ["--json"], stdin=io.StringIO(text), stdout=out)
        return code, json.loads(out.getvalue())

    def test_parallel_json_report(self, stream) -> None:
        text = "\n".join(str(v) for v in stream.tolist()) + "\n"
        code, payload = self._run_json(
            ["-a", "gk_array", "--eps", "0.05", "--phi", "0.5",
             "--parallel", "2", "--seed", "3"],
            text,
        )
        assert code == 0
        assert payload["workers"] == 2
        assert payload["n"] == len(stream)
        truth = float(np.quantile(stream, 0.5))
        spread = 0.05 * (stream.max() - stream.min())
        assert abs(payload["quantiles"][0]["value"] - truth) <= spread

    def test_parallel_unmergeable_algorithm_fails_cleanly(self) -> None:
        code, payload = self._run_json(
            ["-a", "reservoir", "--eps", "0.05", "--parallel", "2"],
            "1\n2\n3\n",
        )
        assert code == 2
        assert "merge" in payload["error"]

    def test_parallel_zero_rejected(self) -> None:
        code, payload = self._run_json(["--parallel", "0"], "1\n")
        assert code == 2
        assert "--parallel" in payload["error"]

    def test_parallel_empty_input_fails_cleanly(self) -> None:
        code, payload = self._run_json(["--parallel", "2"], "")
        assert code == 1
        assert "no input values" in payload["error"]


class TestParallelSweep:
    def test_matches_serial_sweep_errors_and_space(self, stream) -> None:
        kwargs = dict(
            algorithms=["gk_array", "qdigest"],
            data=stream,
            eps_values=[0.05, 0.1],
            universe_log2=12,
            repeats=1,
            seed=4,
        )
        serial = sweep(**kwargs)
        fanned = parallel_sweep(max_workers=2, **kwargs)
        assert len(fanned) == len(serial) == 4
        for left, right in zip(serial, fanned):
            assert left.algorithm == right.algorithm
            assert left.eps == right.eps
            assert left.max_error == right.max_error
            assert left.avg_error == right.avg_error
            assert left.peak_words == right.peak_words

    def test_single_config_runs_inline(self, stream) -> None:
        results = parallel_sweep(
            algorithms=["gk_array"],
            data=stream,
            eps_values=[0.05],
            repeats=1,
            seed=4,
        )
        assert len(results) == 1
        assert results[0].algorithm.lower().startswith("gk")
