"""The batched-ack flow-control contract of the sharded engine.

CI's parallel-smoke job runs this file to prove the batched-ack path is
actually exercised: workers must ack drained *slot groups* (one reply
per group), not one reply per chunk, and the probe-sized slot pools
must be deep enough that grouping can happen at all.  The counters are
worker-side (``parallel.acks`` / ``parallel.acked_slots``), absorbed
into the parent registry at ``finish()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.obs import metrics as obs_metrics
from repro.parallel.engine import ShardedIngestEngine
from repro.parallel.plan import ShardPlan
from repro.parallel.shm import MAX_SLOTS_PER_WORKER, SLOTS_PER_WORKER


def _parallel_counters(registry):
    out = {}
    for kind, name, labels, payload in obs_metrics.export_state(registry):
        if name in ("parallel.acks", "parallel.acked_slots"):
            out[name] = out.get(name, 0) + payload[0]
        if name == "parallel.chunks":
            out[name] = payload[0]
        if name == "parallel.slots_per_worker":
            out[name] = payload[0]
    return out


def _run(slots_per_worker=None, shards=2, chunk_size=4096, n=400_000):
    rng = np.random.default_rng(5)
    data = rng.integers(0, 1 << 16, size=n)
    plan = ShardPlan(seed=9, shards=shards, chunk_size=chunk_size)
    registry = obs_metrics.MetricsRegistry()
    with obs_metrics.collecting(registry):
        with ShardedIngestEngine(
            "gk_array",
            0.01,
            plan,
            collect_metrics=True,
            slots_per_worker=slots_per_worker,
        ) as engine:
            engine.ingest(data)
            merged = engine.finish()
            resolved = engine.slots_per_worker
    return merged, _parallel_counters(registry), resolved


def test_batched_ack_path_is_exercised():
    # Many small chunks through deep pools: the drain loop must group,
    # so the ack count lands strictly below the chunk count.
    merged, counters, _ = _run(slots_per_worker=MAX_SLOTS_PER_WORKER)
    assert counters["parallel.acked_slots"] == counters["parallel.chunks"]
    assert 0 < counters["parallel.acks"] < counters["parallel.chunks"], (
        "one ack per chunk: the batched-ack drain never grouped "
        f"(acks={counters['parallel.acks']}, "
        f"chunks={counters['parallel.chunks']})"
    )
    assert merged.n == 400_000


def test_every_slot_is_acked_exactly_once():
    _, counters, _ = _run(slots_per_worker=3)
    assert counters["parallel.acked_slots"] == counters["parallel.chunks"]
    assert counters["parallel.acks"] <= counters["parallel.acked_slots"]


def test_probe_sizes_pool_for_fast_kernels():
    # gk_array's batch kernel is well under the fast-kernel threshold
    # on any box, so the probe must deepen the pool beyond the classic
    # double buffer and record the choice in the gauge.
    _, counters, resolved = _run(slots_per_worker=None)
    assert resolved > SLOTS_PER_WORKER
    assert counters["parallel.slots_per_worker"] == resolved


def test_explicit_slots_per_worker_respected():
    _, counters, resolved = _run(slots_per_worker=2)
    assert resolved == 2
    assert counters["parallel.slots_per_worker"] == 2


def test_slots_per_worker_validated():
    plan = ShardPlan(seed=1, shards=1)
    with pytest.raises(InvalidParameterError):
        ShardedIngestEngine("gk_array", 0.01, plan, slots_per_worker=0)
    with pytest.raises(InvalidParameterError):
        ShardedIngestEngine(
            "gk_array", 0.01, plan,
            slots_per_worker=MAX_SLOTS_PER_WORKER + 1,
        )


def test_batching_preserves_plan_determinism():
    # Same plan, different pool depths: identical merged answers — the
    # drain groups acks, never the ingest calls.
    phis = [0.1, 0.25, 0.5, 0.75, 0.9]
    merged_deep, _, _ = _run(slots_per_worker=MAX_SLOTS_PER_WORKER)
    merged_shallow, _, _ = _run(slots_per_worker=1)
    assert merged_deep.query_batch(phis) == merged_shallow.query_batch(phis)
