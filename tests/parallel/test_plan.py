"""ShardPlan: the deterministic recipe behind every parallel run."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.parallel import DEFAULT_CHUNK_SIZE, ShardPlan


class TestValidation:
    @pytest.mark.parametrize("seed", [-1, 0.5, "7", None])
    def test_bad_seed_rejected(self, seed) -> None:
        with pytest.raises(InvalidParameterError):
            ShardPlan(seed=seed, shards=2)

    @pytest.mark.parametrize("shards", [0, -2, 1.5])
    def test_bad_shards_rejected(self, shards) -> None:
        with pytest.raises(InvalidParameterError):
            ShardPlan(seed=1, shards=shards)

    @pytest.mark.parametrize("chunk_size", [0, -1])
    def test_bad_chunk_size_rejected(self, chunk_size) -> None:
        with pytest.raises(InvalidParameterError):
            ShardPlan(seed=1, shards=2, chunk_size=chunk_size)

    def test_default_chunk_size(self) -> None:
        assert ShardPlan(seed=1, shards=2).chunk_size == DEFAULT_CHUNK_SIZE

    def test_plan_is_frozen(self) -> None:
        plan = ShardPlan(seed=1, shards=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.shards = 3


class TestSeeds:
    def test_worker_seeds_deterministic(self) -> None:
        a = ShardPlan(seed=42, shards=4)
        b = ShardPlan(seed=42, shards=4)
        assert [a.worker_seed(i) for i in range(4)] == \
            [b.worker_seed(i) for i in range(4)]

    def test_worker_seeds_distinct_across_shards(self) -> None:
        plan = ShardPlan(seed=42, shards=8)
        seeds = [plan.worker_seed(i) for i in range(8)]
        assert len(set(seeds)) == 8

    def test_worker_seeds_differ_across_master_seeds(self) -> None:
        assert ShardPlan(seed=1, shards=2).worker_seed(0) != \
            ShardPlan(seed=2, shards=2).worker_seed(0)

    def test_shared_seed_sketches_get_master_seed(self) -> None:
        plan = ShardPlan(seed=42, shards=4)
        assert all(
            plan.sketch_seed(i, shares_seed=True) == 42 for i in range(4)
        )

    def test_independent_sketch_seed_is_worker_seed(self) -> None:
        plan = ShardPlan(seed=42, shards=4)
        for i in range(4):
            assert plan.sketch_seed(i, shares_seed=False) == \
                plan.worker_seed(i)

    @pytest.mark.parametrize("shard", [-1, 4, 99])
    def test_out_of_range_shard_rejected(self, shard) -> None:
        plan = ShardPlan(seed=1, shards=4)
        with pytest.raises(InvalidParameterError):
            plan.worker_seed(shard)
        with pytest.raises(InvalidParameterError):
            plan.sketch_seed(shard, shares_seed=True)


class TestChunking:
    @given(
        n=st.integers(0, 10_000),
        shards=st.integers(1, 8),
        chunk_size=st.integers(1, 500),
    )
    def test_chunks_partition_the_stream(
        self, n, shards, chunk_size
    ) -> None:
        plan = ShardPlan(seed=1, shards=shards, chunk_size=chunk_size)
        chunks = list(plan.chunks(n))
        assert [lo for _, lo, _ in chunks] == \
            list(range(0, n, chunk_size))
        assert all(hi - lo <= chunk_size for _, lo, hi in chunks)
        assert sum(hi - lo for _, lo, hi in chunks) == n
        assert [i for i, _, _ in chunks] == list(range(len(chunks)))

    @given(
        n=st.integers(0, 10_000),
        shards=st.integers(1, 8),
        chunk_size=st.integers(1, 500),
    )
    def test_shard_sizes_sum_to_n(self, n, shards, chunk_size) -> None:
        plan = ShardPlan(seed=1, shards=shards, chunk_size=chunk_size)
        sizes = plan.shard_sizes(n)
        assert len(sizes) == shards
        assert sum(sizes) == n

    def test_round_robin_deal(self) -> None:
        plan = ShardPlan(seed=1, shards=3, chunk_size=10)
        assert [plan.shard_of_chunk(i) for i in range(7)] == \
            [0, 1, 2, 0, 1, 2, 0]

    def test_first_chunk_continues_the_deal(self) -> None:
        """ingest(a); ingest(b) must deal like ingest(a + b) when the
        first piece is chunk-aligned."""
        plan = ShardPlan(seed=1, shards=3, chunk_size=10)
        whole = [
            (plan.shard_of_chunk(i), lo, hi)
            for i, lo, hi in plan.chunks(60)
        ]
        first = [
            (plan.shard_of_chunk(i), lo, hi)
            for i, lo, hi in plan.chunks(30)
        ]
        second = [
            (plan.shard_of_chunk(i), lo + 30, hi + 30)
            for i, lo, hi in plan.chunks(30, first_chunk=3)
        ]
        assert first + second == whole

    def test_negative_chunk_index_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            ShardPlan(seed=1, shards=2).shard_of_chunk(-1)

    def test_negative_n_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            list(ShardPlan(seed=1, shards=2).chunks(-5))


class TestSeedQuality:
    def test_worker_streams_are_uncorrelated(self) -> None:
        """Spawned child seeds must give usable, distinct RNG streams."""
        plan = ShardPlan(seed=7, shards=4)
        draws = [
            np.random.default_rng(plan.worker_seed(i)).random(100)
            for i in range(4)
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])
