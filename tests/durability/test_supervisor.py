"""Supervised parallel engine: restart, resend, degrade — with real
process kills.

Every fault here is a *real* fault: the worker SIGKILLs itself at the
plan-scheduled chunk, or genuinely stalls, and the supervisor has to
notice, restart, and resend.  Streams are kept small (the CI box may
have a single core) and assertions are on outcomes — bit-identical
summaries, exact coverage accounting — not on timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.snapshot import snapshot
from repro.distributed.faults import FaultPlan
from repro.durability import SupervisorConfig, supervised_feed
from repro.parallel.engine import parallel_feed
from repro.parallel.plan import ShardPlan

EPS = 0.01
N = 8192
CHUNK = 1024


@pytest.fixture
def data():
    rng = np.random.default_rng(11)
    return rng.integers(0, 1 << 16, size=N, dtype=np.int64)


def plan(shards: int = 2) -> ShardPlan:
    return ShardPlan(seed=0, shards=shards, chunk_size=CHUNK)


def quick_supervisor(**kwargs) -> SupervisorConfig:
    defaults = dict(
        max_restarts=2,
        restart_backoff_s=0.05,
        hung_timeout_s=30.0,
        poll_interval_s=0.1,
    )
    defaults.update(kwargs)
    return SupervisorConfig(**defaults)


@pytest.mark.slow
def test_clean_run_matches_plain_engine(data, tmp_path):
    result = supervised_feed(
        "gk_array", data, EPS, plan(), tmp_path,
        supervisor=quick_supervisor(),
    )
    baseline, _seconds = parallel_feed("gk_array", data, EPS, plan())
    assert result.summary is not None
    assert snapshot(result.summary) == snapshot(baseline)
    assert result.coverage == 1.0
    assert result.effective_eps == EPS
    assert result.elements_merged == result.elements_total == N
    assert sum(result.restarts) == 0


@pytest.mark.slow
def test_killed_worker_is_restarted_and_result_identical(data, tmp_path):
    faults = FaultPlan(seed=3, kill_worker_at={1: 1})
    result = supervised_feed(
        "gk_array", data, EPS, plan(), tmp_path,
        faults=faults, supervisor=quick_supervisor(),
    )
    baseline, _seconds = parallel_feed("gk_array", data, EPS, plan())
    assert result.summary is not None
    assert snapshot(result.summary) == snapshot(baseline)
    assert result.coverage == 1.0
    assert result.restarts[1] >= 1
    assert result.resent_chunks >= 1


@pytest.mark.slow
def test_stalled_worker_is_detected_and_killed(data, tmp_path):
    faults = FaultPlan(seed=4, stall_worker={0: 30.0})
    result = supervised_feed(
        "gk_array", data, EPS, plan(), tmp_path,
        faults=faults,
        supervisor=quick_supervisor(hung_timeout_s=1.5),
    )
    baseline, _seconds = parallel_feed("gk_array", data, EPS, plan())
    assert result.summary is not None
    assert snapshot(result.summary) == snapshot(baseline)
    assert result.hung_detected >= 1
    assert result.restarts[0] >= 1


@pytest.mark.slow
def test_exhausted_budget_degrades_with_honest_accounting(data, tmp_path):
    # Shard 0 dies at its first chunk on *every* incarnation; after the
    # budget the supervisor abandons it and salvages its durable store.
    faults = FaultPlan(
        seed=5, kill_worker_at={0: 0}, repeat_worker_faults=True
    )
    result = supervised_feed(
        "gk_array", data, EPS, plan(), tmp_path,
        faults=faults,
        supervisor=quick_supervisor(max_restarts=1),
    )
    assert result.summary is not None
    assert result.abandoned_shards == (0,)
    assert result.restarts[0] == 1
    assert result.elements_merged < result.elements_total
    assert result.coverage == result.elements_merged / result.elements_total
    expected = result.coverage * EPS + (1.0 - result.coverage)
    assert result.effective_eps == pytest.approx(expected)
    assert result.effective_eps > EPS
