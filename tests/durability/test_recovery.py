"""End-to-end recovery proofs for the durable ingest stack.

The load-bearing claims from the durability design:

* **Zero-fault equivalence** — a durable run over any registered
  algorithm is bit-identical (same snapshot bytes) to a plain in-memory
  feed of the same batches.
* **Deterministic recovery** — kill the process after batch *k*, tear
  the WAL tail, corrupt the newest checkpoint: for deterministic
  sketches the recovered-and-resumed summary is still bit-identical to
  an uninterrupted run; for randomized sketches it stays within the
  error budget.
* **Crash windows** — every interleaving the checkpoint/prune protocol
  allows (checkpoint saved but prune interrupted, crash right on a
  checkpoint boundary leaving an empty WAL tail, recovery running
  twice) converges to the same state, exactly once per batch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import DurabilityError
from repro.core.registry import algorithms
from repro.core.snapshot import snapshot
from repro.distributed.faults import FaultPlan
from repro.durability import (
    DurabilityConfig,
    DurableIngest,
    chaos_durable_run,
    durable_run,
)
from repro.durability.ingest import _apply_batch
from repro.evaluation.harness import build_sketch

EPS = 0.05
SEED = 7
UNIVERSE_LOG2 = 12
BATCH = 256

#: Algorithms whose update path draws no random bits: recovery must be
#: bit-identical, not merely error-equivalent.
DETERMINISTIC = {
    "biased_gk",
    "gk_adaptive",
    "gk_array",
    "gk_theory",
    "qdigest",
    "sliding_window",
}

#: Fixed-universe algorithms that need universe_log2.
NEEDS_UNIVERSE = {"qdigest", "dcm", "dcs", "post", "rss"}

#: Algorithms whose quantile error is not plain rank error over the
#: whole stream (windowed / biased guarantees); for these the
#: bit-identical check is the whole proof.
SKIP_ERROR_CHECK = {"sliding_window", "biased_gk"}


def make_data(n: int = 6000) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    return rng.integers(0, 1 << UNIVERSE_LOG2, size=n, dtype=np.int64)


def universe_for(name: str):
    return UNIVERSE_LOG2 if name in NEEDS_UNIVERSE else None


def plain_feed(name: str, data: np.ndarray):
    """The in-memory twin: same batches, same kernel dispatch."""
    sketch = build_sketch(name, EPS, universe_for(name), seed=SEED)
    for lo in range(0, len(data), BATCH):
        _apply_batch(sketch, data[lo: lo + BATCH])
    return sketch


def max_rank_error(sketch, sorted_data: np.ndarray) -> float:
    n = len(sorted_data)
    worst = 0.0
    for i in range(19):
        phi = (i + 1) / 20
        value = sketch.query(phi)
        lo = float(np.searchsorted(sorted_data, value, "left"))
        hi = float(np.searchsorted(sorted_data, value, "right"))
        target = phi * n
        if lo <= target <= hi:
            continue
        worst = max(worst, min(abs(target - lo), abs(target - hi)) / n)
    return worst


# ---------------------------------------------------------------------------
# Zero-fault equivalence: durable == in-memory, for the whole registry.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", algorithms())
def test_zero_fault_durable_run_is_bit_identical(name, tmp_path):
    data = make_data(3000)
    durable = durable_run(
        tmp_path / "store", name, EPS, data,
        batch_size=BATCH, universe_log2=universe_for(name), seed=SEED,
    )
    assert snapshot(durable) == snapshot(plain_feed(name, data))


# ---------------------------------------------------------------------------
# The deterministic-recovery proof: kill + torn WAL + corrupt checkpoint.
# ---------------------------------------------------------------------------


def chaos_config(directory) -> DurabilityConfig:
    return DurabilityConfig(directory=directory, checkpoint_interval=5)


@pytest.mark.parametrize("name", algorithms())
def test_chaos_recovery_matches_uninterrupted(name, tmp_path):
    # Kill at batch 13: two checkpoints (covering seqs 4 and 9) are on
    # disk, so corrupting the newest one still leaves a valid fallback
    # anchor with its WAL tail intact.  (A corrupt *sole* checkpoint is
    # unrecoverable data loss by construction — keep_checkpoints only
    # protects once that many checkpoints exist.)
    data = make_data()
    faults = FaultPlan(
        seed=5,
        kill_worker_at={0: 13},
        truncate_wal={0: 80},
        corrupt_checkpoint=(0,),
    )
    directory = tmp_path / "store"
    summary, report = chaos_durable_run(
        directory, name, EPS, data, faults,
        batch_size=BATCH, universe_log2=universe_for(name), seed=SEED,
        config=chaos_config(directory),
    )
    assert report.killed_at_batch == 13
    assert report.recovery is not None and report.recovery.recovered
    # The torn tail dropped whole frames only: resumption restarted at
    # a batch boundary at or before the kill point.
    assert report.resumed_from_batch is not None
    assert report.resumed_from_batch <= 13
    if name in DETERMINISTIC:
        assert snapshot(summary) == snapshot(plain_feed(name, data))
    if name not in SKIP_ERROR_CHECK:
        assert max_rank_error(summary, np.sort(data)) <= EPS


@pytest.mark.parametrize("kill_at", [0, 1, 13, 23])
def test_kill_at_any_batch_is_bit_identical(kill_at, tmp_path):
    data = make_data()
    baseline = snapshot(plain_feed("gk_array", data))
    faults = FaultPlan(seed=kill_at, kill_worker_at={0: kill_at})
    directory = tmp_path / f"store-{kill_at}"
    summary, report = chaos_durable_run(
        directory, "gk_array", EPS, data, faults,
        batch_size=BATCH, seed=SEED, config=chaos_config(directory),
    )
    assert snapshot(summary) == baseline
    assert report.killed_at_batch == kill_at
    # Exactly-once: nothing was resumed from before the durable mark.
    assert report.resumed_from_batch == kill_at


def test_corrupt_checkpoint_falls_back_and_replays_more(tmp_path):
    data = make_data()
    directory = tmp_path / "store"
    faults = FaultPlan(
        seed=3, kill_worker_at={0: 17}, corrupt_checkpoint=(0,)
    )
    summary, report = chaos_durable_run(
        directory, "gk_array", EPS, data, faults,
        batch_size=BATCH, seed=SEED, config=chaos_config(directory),
    )
    assert report.storage.corrupted_checkpoint is not None
    assert report.recovery.corrupt_checkpoints_skipped == 1
    # Fallback checkpoint is older, so the replayed tail is longer than
    # one interval but correctness is unharmed.
    assert snapshot(summary) == snapshot(plain_feed("gk_array", data))


# ---------------------------------------------------------------------------
# Crash windows the checkpoint/prune protocol must absorb.
# ---------------------------------------------------------------------------


def store_for(tmp_path, **config_kwargs) -> DurableIngest:
    config = DurabilityConfig(directory=tmp_path / "store", **config_kwargs)
    return DurableIngest(config, "gk_array", EPS, seed=SEED)


def batches_of(data: np.ndarray) -> list:
    return [data[lo: lo + BATCH] for lo in range(0, len(data), BATCH)]


def test_crash_on_checkpoint_boundary_leaves_empty_tail(tmp_path):
    data = make_data()
    batches = batches_of(data)
    store = store_for(tmp_path, checkpoint_interval=1000)
    for batch in batches[:10]:
        store.ingest(batch)
    store.checkpoint()  # prunes the WAL completely
    store.crash()
    reopened = store_for(tmp_path, checkpoint_interval=1000)
    assert reopened.recovery.recovered
    assert reopened.recovery.replayed_batches == 0
    # Sequence numbering survived the full prune: the next batch gets
    # the next ordinal, not zero.
    assert reopened.wal.next_seq == 10
    for batch in batches[10:]:
        reopened.ingest(batch)
    assert snapshot(reopened.finish()) == snapshot(
        plain_feed("gk_array", data)
    )


def test_checkpoint_saved_but_prune_interrupted(tmp_path):
    data = make_data()
    batches = batches_of(data)
    store = store_for(tmp_path, checkpoint_interval=1000)
    for batch in batches[:10]:
        store.ingest(batch)
    # A checkpoint that crashed between save and prune: the covered WAL
    # segments are still on disk.
    store.checkpoints.save(store.sketch, store.wal.last_seq)
    store.crash()
    assert sorted((tmp_path / "store" / "wal").glob("wal-*.seg"))
    reopened = store_for(tmp_path, checkpoint_interval=1000)
    # Covered frames are skipped by sequence number, not replayed twice.
    assert reopened.recovery.replayed_batches == 0
    for batch in batches[10:]:
        reopened.ingest(batch)
    assert snapshot(reopened.finish()) == snapshot(
        plain_feed("gk_array", data)
    )


def test_double_recovery_is_idempotent(tmp_path):
    data = make_data()
    batches = batches_of(data)
    store = store_for(tmp_path, checkpoint_interval=4)
    for batch in batches[:11]:
        store.ingest(batch)
    store.crash()
    first = store_for(tmp_path, checkpoint_interval=4)
    state_a = snapshot(first.sketch)
    replayed_a = first.recovery.replayed_batches
    first.close()  # close without checkpoint: tail stays replayable
    second = store_for(tmp_path, checkpoint_interval=4)
    assert snapshot(second.sketch) == state_a
    assert second.recovery.replayed_batches == replayed_a
    second.close()


def test_manifest_mismatch_refuses_to_open(tmp_path):
    store = store_for(tmp_path)
    store.ingest(np.arange(10, dtype=np.int64))
    store.close()
    with pytest.raises(DurabilityError, match="different spec"):
        DurableIngest(tmp_path / "store", "kll", EPS, seed=SEED)
    with pytest.raises(DurabilityError, match="different spec"):
        DurableIngest(tmp_path / "store", "gk_array", EPS / 2, seed=SEED)


# ---------------------------------------------------------------------------
# Property: durable round-trip over arbitrary streams and kill points.
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(
        st.integers(0, (1 << UNIVERSE_LOG2) - 1), min_size=1, max_size=900
    ),
    kill_at=st.integers(0, 8),
)
def test_property_recovery_roundtrip(tmp_path_factory, values, kill_at):
    data = np.array(values, dtype=np.int64)
    directory = tmp_path_factory.mktemp("chaos") / "store"
    faults = FaultPlan(seed=1, kill_worker_at={0: kill_at})
    summary, _report = chaos_durable_run(
        directory, "gk_array", EPS, data, faults,
        batch_size=128, seed=SEED,
        config=DurabilityConfig(directory=directory, checkpoint_interval=3),
    )
    sketch = build_sketch("gk_array", EPS, seed=SEED)
    for lo in range(0, len(data), 128):
        _apply_batch(sketch, data[lo: lo + 128])
    assert snapshot(summary) == snapshot(sketch)
