"""Write-ahead log: framing, rotation, torn-tail repair, pruning.

The WAL's one promise is that a frame is atomic — replay yields whole
batches or nothing, never a prefix — and that reopening a directory
after any crash-shaped damage to the *final* segment loses only the
unacknowledged tail.  These tests drive every edge of that promise,
including the crash windows ISSUE-ed for the recovery state machine:
an empty tail, a torn tail, corruption mid-log, and sequence numbering
across a full prune.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import DurabilityError, InvalidParameterError
from repro.durability.wal import (
    _FRAME,
    _SEG_HEADER,
    DEFAULT_SEGMENT_BYTES,
    WriteAheadLog,
)


def batches_of(log: WriteAheadLog, after_seq: int = -1) -> list:
    return [(seq, batch.tolist()) for seq, batch in log.replay(after_seq)]


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        assert log.append(np.array([1, 2, 3])) == 0
        assert log.append(np.array([4])) == 1
        assert batches_of(log) == [(0, [1, 2, 3]), (1, [4])]
        log.close()

    def test_replay_skips_covered_batches_whole(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        for i in range(5):
            log.append(np.array([i, i]))
        assert batches_of(log, after_seq=2) == [(3, [3, 3]), (4, [4, 4])]

    def test_reopen_resumes_numbering(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(np.array([7]))
        log.close()
        log = WriteAheadLog(tmp_path)
        assert log.next_seq == 1
        assert log.append(np.array([8])) == 1
        assert batches_of(log) == [(0, [7]), (1, [8])]

    def test_closed_log_refuses_appends(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.close()
        with pytest.raises(DurabilityError):
            log.append(np.array([1]))

    def test_dtype_mismatch_on_reopen_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path, dtype=np.int64)
        log.append(np.array([1]))
        log.close()
        with pytest.raises(DurabilityError, match="dtype"):
            WriteAheadLog(tmp_path, dtype=np.float64)

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(tmp_path, fsync="sometimes")


class TestRotationAndPrune:
    def test_small_segments_rotate(self, tmp_path):
        log = WriteAheadLog(tmp_path, segment_bytes=64)
        for i in range(6):
            log.append(np.arange(4) + i)
        log.close()
        segments = sorted(tmp_path.glob("wal-*.seg"))
        assert len(segments) > 1
        reopened = WriteAheadLog(tmp_path, segment_bytes=64)
        assert [seq for seq, _ in reopened.replay()] == list(range(6))

    def test_prune_through_drops_covered_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path, segment_bytes=64)
        for i in range(6):
            log.append(np.arange(4) + i)
        log.rotate()
        before = len(sorted(tmp_path.glob("wal-*.seg")))
        removed = log.prune_through(2)
        assert removed >= 1
        assert len(sorted(tmp_path.glob("wal-*.seg"))) == before - removed
        # Everything past the covered point is still replayable.
        assert [seq for seq, _ in log.replay(2)] == [3, 4, 5]

    def test_ensure_next_seq_survives_full_prune(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        for i in range(3):
            log.append(np.array([i]))
        log.rotate()
        log.prune_through(2)
        log.close()
        # Fresh open of a fully pruned directory starts at zero ...
        log = WriteAheadLog(tmp_path)
        assert log.next_seq == 0
        # ... until recovery raises the floor from the checkpoint seq.
        log.ensure_next_seq(3)
        assert log.append(np.array([9])) == 3


class TestTornTail:
    def _torn_log(self, tmp_path, cut: int) -> WriteAheadLog:
        log = WriteAheadLog(tmp_path, fsync="never")
        for i in range(3):
            log.append(np.array([i, i, i]))
        log.drop()
        segment = sorted(tmp_path.glob("wal-*.seg"))[-1]
        size = segment.stat().st_size
        with open(segment, "rb+") as fh:
            fh.truncate(size - cut)
        return WriteAheadLog(tmp_path, fsync="never")

    def test_partial_frame_truncated_to_last_intact(self, tmp_path):
        log = self._torn_log(tmp_path, cut=5)
        assert log.repaired_tails == 1
        # The torn batch is dropped whole — replay never lands mid-batch.
        assert [seq for seq, _ in log.replay()] == [0, 1]
        assert log.next_seq == 2

    def test_torn_tail_is_appendable_again(self, tmp_path):
        log = self._torn_log(tmp_path, cut=5)
        assert log.append(np.array([5, 5, 5])) == 2
        assert [b for _s, b in batches_of(log)] == [
            [0, 0, 0], [1, 1, 1], [5, 5, 5]
        ]

    def test_empty_tail_segment_is_clean(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(np.array([1]))
        log.rotate()
        # Open a fresh segment with a header but no frames, then "crash".
        log._open_active()
        log.drop()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.repaired_tails == 0
        assert [seq for seq, _ in reopened.replay()] == [0]

    def test_midlog_corruption_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path, segment_bytes=64)
        for i in range(6):
            log.append(np.arange(4) + i)
        log.close()
        segments = sorted(tmp_path.glob("wal-*.seg"))
        assert len(segments) > 2
        first = segments[0]
        blob = bytearray(first.read_bytes())
        blob[-1] ^= 0xFF
        first.write_bytes(bytes(blob))
        with pytest.raises(DurabilityError, match="mid-log"):
            WriteAheadLog(tmp_path, segment_bytes=64)

    def test_header_only_damage_is_not_a_tail(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(np.array([1]))
        log.close()
        segment = sorted(tmp_path.glob("wal-*.seg"))[0]
        with open(segment, "rb+") as fh:
            fh.truncate(_SEG_HEADER.size - 1)
        with pytest.raises(DurabilityError, match="header"):
            WriteAheadLog(tmp_path)


class TestFrameLayout:
    def test_frame_and_header_sizes_are_stable(self):
        # The on-disk format is a compatibility surface.
        assert _SEG_HEADER.size == 8
        assert _FRAME.size == 16
        assert DEFAULT_SEGMENT_BYTES == 1 << 20


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=40),
        min_size=1,
        max_size=12,
    ),
    segment_bytes=st.sampled_from([64, 256, DEFAULT_SEGMENT_BYTES]),
)
def test_property_roundtrip_any_batching(tmp_path_factory, data, segment_bytes):
    directory = tmp_path_factory.mktemp("wal")
    log = WriteAheadLog(directory, segment_bytes=segment_bytes)
    for batch in data:
        log.append(np.array(batch, dtype=np.int64))
    replayed = [batch.tolist() for _seq, batch in log.replay()]
    assert replayed == data
    log.close()
    reopened = WriteAheadLog(directory, segment_bytes=segment_bytes)
    assert [b.tolist() for _s, b in reopened.replay()] == data
