"""Checkpoint manager: atomic writes, corrupt-file fallback, pruning.

The regression that matters most here: ``load_latest`` must hand back
the *exact* state that was checkpointed.  Some ``validate()``
implementations normalize state as a side effect (GK flushes its
buffer), so the invariant sweep has to run on a throwaway restore —
``test_loaded_state_is_pristine`` pins that down at the byte level.
"""

from __future__ import annotations

from repro.core.snapshot import snapshot
from repro.durability.checkpoint import CheckpointManager
from repro.evaluation.harness import build_sketch


def gk_with_buffered_tail(n: int = 500):
    """A GKArray sketch whose buffer is deliberately non-empty."""
    sketch = build_sketch("gk_array", 0.01)
    sketch.extend(range(n))
    return sketch


class TestSaveLoad:
    def test_roundtrip_carries_wal_seq(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(gk_with_buffered_tail(), wal_seq=17)
        loaded = manager.load_latest()
        assert loaded is not None
        assert loaded.wal_seq == 17
        assert loaded.summary.n == 500

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_empty_log_checkpoint_allowed(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(build_sketch("gk_array", 0.01), wal_seq=-1)
        loaded = manager.load_latest()
        assert loaded is not None and loaded.wal_seq == -1

    def test_no_tmp_file_left_behind(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(gk_with_buffered_tail(), wal_seq=0)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_loaded_state_is_pristine(self, tmp_path):
        # GKArray.validate() flushes its insertion buffer; a load that
        # handed back the validated object would diverge from the live
        # sketch on the very next insert.  The loaded summary must be
        # byte-for-byte the state that was saved.
        sketch = gk_with_buffered_tail()
        saved_bytes = snapshot(sketch)
        manager = CheckpointManager(tmp_path)
        manager.save(sketch, wal_seq=3)
        loaded = manager.load_latest(validate=True)
        assert loaded is not None
        assert snapshot(loaded.summary) == saved_bytes


class TestCorruptFallback:
    def _save_two(self, tmp_path) -> CheckpointManager:
        manager = CheckpointManager(tmp_path)
        manager.save(gk_with_buffered_tail(100), wal_seq=4)
        manager.save(gk_with_buffered_tail(200), wal_seq=9)
        return manager

    def test_corrupt_newest_falls_back(self, tmp_path):
        manager = self._save_two(tmp_path)
        newest = manager.paths()[-1]
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        newest.write_bytes(bytes(blob))
        loaded = manager.load_latest()
        assert loaded is not None
        assert loaded.wal_seq == 4
        assert manager.corrupt_skipped == 1

    def test_all_corrupt_loads_none(self, tmp_path):
        manager = self._save_two(tmp_path)
        for path in manager.paths():
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
        assert manager.load_latest() is None
        assert manager.corrupt_skipped == 2


class TestPrune:
    def test_prune_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for seq in (1, 3, 5, 7):
            manager.save(gk_with_buffered_tail(50), wal_seq=seq)
        removed = manager.prune()
        assert removed == 2
        loaded = manager.load_latest()
        assert loaded is not None and loaded.wal_seq == 7
        assert len(manager.paths()) == 2

    def test_interrupted_prune_is_harmless(self, tmp_path):
        # An interrupted prune leaves extra *older* checkpoints behind;
        # load_latest never prefers them.
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(gk_with_buffered_tail(50), wal_seq=2)
        manager.save(gk_with_buffered_tail(80), wal_seq=6)
        # "Interrupted": no prune ran at all.
        loaded = manager.load_latest()
        assert loaded is not None and loaded.wal_seq == 6
