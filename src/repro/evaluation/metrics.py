"""Error metrics for quantile summaries (Section 4.1.2).

The paper extracts the ``phi``-quantiles for ``phi = eps, 2 eps, ...,
1 - eps``, computes each returned element's true rank from the data, and
measures the normalized distance from ``phi * n``:

* the **maximum** over the grid is the Kolmogorov–Smirnov divergence
  between the true CDF and the summary's CDF;
* the **average** tracks the total-variation distance.

Duplicate elements are resolved in the algorithm's favor: an element's
rank is the interval [#smaller, #smaller-or-equal], and the error is the
distance from ``phi * n`` to the nearer endpoint (zero if inside).
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Sequence

import numpy as np

from repro.core.base import SupportsQuantileQueries
from repro.core.errors import InvalidParameterError


@dataclasses.dataclass(frozen=True)
class ErrorReport:
    """Observed rank errors of a summary against ground truth.

    Attributes:
        max_error: worst normalized rank error (KS divergence).
        avg_error: mean normalized rank error.
        errors: the per-phi normalized errors.
        phis: the quantile grid used.
    """

    max_error: float
    avg_error: float
    errors: List[float]
    phis: List[float]


def phi_grid(eps: float, max_queries: int = 999) -> List[float]:
    """The paper's quantile grid ``eps, 2 eps, ..., 1 - eps``.

    For very small ``eps`` the grid is capped at ``max_queries`` evenly
    spaced points — the measured max/avg barely move beyond ~1000 probes,
    while evaluation cost grows linearly.
    """
    if not (0 < eps < 1):
        raise InvalidParameterError(f"eps must be in (0, 1), got {eps!r}")
    count = int(1.0 / eps) - 1
    if count < 1:
        count = 1
    if count > max_queries:
        return list(np.linspace(eps, 1.0 - eps, max_queries))
    return [i * eps for i in range(1, count + 1)]


def rank_error(
    sorted_data: np.ndarray, value: Any, target_rank: float
) -> float:
    """Distance from ``target_rank`` to the rank interval of ``value``.

    ``sorted_data`` must be sorted ascending.  Returns an absolute (not
    normalized) rank distance, 0 when ``target_rank`` falls inside the
    interval [#smaller, #smaller-or-equal].
    """
    lo = float(np.searchsorted(sorted_data, value, "left"))
    hi = float(np.searchsorted(sorted_data, value, "right"))
    if lo <= target_rank <= hi:
        return 0.0
    return min(abs(target_rank - lo), abs(target_rank - hi))


def measure_errors(
    sketch: SupportsQuantileQueries,
    sorted_data: np.ndarray,
    eps: float,
    max_queries: int = 999,
) -> ErrorReport:
    """Evaluate a summary's quantiles against the sorted ground truth.

    Args:
        sketch: anything with ``query_batch(phis)`` (all library
            summaries and post-processed snapshots qualify).
        sorted_data: the exact remaining multiset, sorted ascending.
        eps: determines the quantile grid.
        max_queries: cap on the grid size (see :func:`phi_grid`).
    """
    n = len(sorted_data)
    if n == 0:
        raise InvalidParameterError("cannot measure errors on empty data")
    phis = phi_grid(eps, max_queries)
    answers = sketch.query_batch(phis)
    errors = [
        rank_error(sorted_data, answer, phi * n) / n
        for phi, answer in zip(phis, answers)
    ]
    return ErrorReport(
        max_error=max(errors),
        avg_error=float(np.mean(errors)),
        errors=errors,
        phis=list(phis),
    )


def ks_divergence(
    sorted_a: np.ndarray, sorted_b: np.ndarray
) -> float:
    """Kolmogorov–Smirnov divergence between two empirical distributions.

    General-purpose helper (e.g. for comparing a synthetic data set's
    shape against a reference); not used in the per-summary error path.
    """
    if len(sorted_a) == 0 or len(sorted_b) == 0:
        raise InvalidParameterError("KS divergence needs non-empty samples")
    grid = np.union1d(sorted_a, sorted_b)
    cdf_a = np.searchsorted(sorted_a, grid, "right") / len(sorted_a)
    cdf_b = np.searchsorted(sorted_b, grid, "right") / len(sorted_b)
    return float(np.abs(cdf_a - cdf_b).max())


def quantile_grid_truth(
    sorted_data: np.ndarray, phis: Sequence[float]
) -> np.ndarray:
    """Exact quantile values for a grid (plotting/debugging helper)."""
    n = len(sorted_data)
    idx = np.minimum(n - 1, (np.asarray(phis) * n).astype(np.int64))
    return sorted_data[idx]
