"""Space accounting (Section 4.1.2).

"We report space usage in bytes, where every element from the stream,
counter, or pointer consumes 4 bytes.  [...]  For algorithms whose space
usage changes over time, we measured the maximum space usage."

Every summary in the library implements ``size_words()`` under that
convention; this module adds the *maximum-over-time* tracking, which needs
periodic sampling during the stream.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.base import WORD_BYTES
from repro.core.errors import InvalidParameterError


class _SupportsSizeWords(Protocol):
    def size_words(self) -> int: ...


class PeakSpaceTracker:
    """Tracks the maximum ``size_words()`` of a summary over a stream.

    Sampling every update would dominate runtime for cheap summaries, so
    the tracker samples every ``interval`` updates (and whenever asked
    explicitly).  GK-style summaries only grow between removals, so peaks
    between samples are bounded by ``interval`` extra tuples; the default
    interval keeps that slack well under measurement noise.
    """

    def __init__(
        self, sketch: _SupportsSizeWords, interval: int = 256
    ) -> None:
        if interval < 1:
            raise InvalidParameterError(
                f"interval must be >= 1, got {interval!r}"
            )
        self._sketch = sketch
        self._interval = interval
        self._since = 0
        self.peak_words = sketch.size_words()

    def tick(self, count: int = 1) -> None:
        """Note that ``count`` updates happened; sample if due."""
        self._since += count
        if self._since >= self._interval:
            self.sample()

    def sample(self) -> int:
        """Force a sample; returns the current size in words."""
        self._since = 0
        words = self._sketch.size_words()
        if words > self.peak_words:
            self.peak_words = words
        return words

    @property
    def peak_bytes(self) -> int:
        return self.peak_words * WORD_BYTES


def bytes_to_words(size_bytes: int) -> int:
    """Convert a byte budget to 4-byte words (floor)."""
    if size_bytes < 0:
        raise InvalidParameterError(
            f"size_bytes must be >= 0, got {size_bytes!r}"
        )
    return size_bytes // WORD_BYTES
