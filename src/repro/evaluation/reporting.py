"""Plain-text reporting for benchmark output.

Benchmarks print the same rows/series the paper's figures plot: one table
per exhibit, curves keyed by algorithm.  Everything is monospace ASCII so
results read cleanly in CI logs and ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.evaluation.harness import RunResult
from repro.evaluation.runner import by_algorithm


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render rows as a boxed monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e6:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def results_table(
    results: Sequence[RunResult], title: str = ""
) -> str:
    """The standard five-measurement table for a list of runs."""
    headers = [
        "algorithm", "eps", "n", "max_err", "avg_err",
        "space_KB", "us/update",
    ]
    rows = [
        [
            r.algorithm,
            r.eps,
            r.n,
            r.max_error,
            r.avg_error,
            r.peak_kb,
            r.update_time_us,
        ]
        for r in results
    ]
    return format_table(headers, rows, title)


def tradeoff_series(
    results: Sequence[RunResult], x: str, y: str, title: str = ""
) -> str:
    """Per-algorithm (x, y) series — the paper's figures as text.

    ``x`` / ``y`` name RunResult attributes or properties, e.g.
    ``tradeoff_series(rs, "avg_error", "peak_kb")`` is Fig. 5d.
    """
    lines = [title] if title else []
    for name, curve in by_algorithm(results).items():
        pts = ", ".join(
            f"({_fmt(getattr(r, x))}, {_fmt(getattr(r, y))})" for r in curve
        )
        lines.append(f"  {name:>12}: {pts}")
    return "\n".join(lines)


def matrix_table(
    row_label: str,
    row_values: Sequence,
    col_label: str,
    col_values: Sequence,
    cells: Dict,
    title: str = "",
    scale: float = 1.0,
    fmt: str = "{:.3f}",
) -> str:
    """A 2-D matrix table (used by the Table 3/4 style exhibits).

    ``cells`` maps ``(row_value, col_value)`` to a number; ``scale``
    multiplies each cell before formatting (the paper prints errors as
    multiples of 1e-4).
    """
    headers = [f"{row_label}\\{col_label}"] + [_fmt(c) for c in col_values]
    rows: List[List] = []
    for rv in row_values:
        row: List = [_fmt(rv)]
        for cv in col_values:
            value = cells.get((rv, cv))
            row.append("-" if value is None else fmt.format(value * scale))
        rows.append(row)
    return format_table(headers, rows, title)
