"""Measurement harness: error metrics, space accounting, sweeps, reports."""

from repro.evaluation.analysis import (
    DistributionSummary,
    cdf,
    compare,
    describe,
    ks_distance,
    pdf_histogram,
    qq_points,
)
from repro.evaluation.context import git_sha, machine_context
from repro.evaluation.harness import RunResult, build_sketch, feed_stream, run_experiment
from repro.evaluation.metrics import (
    ErrorReport,
    ks_divergence,
    measure_errors,
    phi_grid,
    quantile_grid_truth,
    rank_error,
)
from repro.evaluation.plotting import plot_results, text_plot
from repro.evaluation.reporting import (
    format_table,
    matrix_table,
    results_table,
    tradeoff_series,
)
from repro.evaluation.runner import (
    BASE_N,
    by_algorithm,
    parallel_sweep,
    scaled_n,
    sweep,
)
from repro.evaluation.space import PeakSpaceTracker, bytes_to_words

__all__ = [
    "BASE_N",
    "DistributionSummary",
    "cdf",
    "compare",
    "describe",
    "ks_distance",
    "pdf_histogram",
    "qq_points",
    "plot_results",
    "text_plot",
    "ErrorReport",
    "PeakSpaceTracker",
    "RunResult",
    "build_sketch",
    "by_algorithm",
    "bytes_to_words",
    "feed_stream",
    "format_table",
    "git_sha",
    "ks_divergence",
    "machine_context",
    "matrix_table",
    "measure_errors",
    "phi_grid",
    "quantile_grid_truth",
    "rank_error",
    "results_table",
    "parallel_sweep",
    "run_experiment",
    "scaled_n",
    "sweep",
    "tradeoff_series",
]
