"""Terminal plots for benchmark exhibits.

The paper's figures are log-log tradeoff curves; the benchmark scripts
print their numeric series, and this module renders them as monospace
scatter charts so a figure is recognizable at a glance in CI logs and in
``benchmarks/results/*.txt``.  No plotting dependency — pure text.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.core.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.evaluation.harness import RunResult

#: Marker characters assigned to series in insertion order.
MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise InvalidParameterError(
                "log-scale axis requires positive values"
            )
        return math.log10(value)
    return float(value)


def _axis_ticks(lo: float, hi: float, log: bool, count: int = 4) -> List[str]:
    ticks = []
    for i in range(count):
        t = lo + (hi - lo) * i / (count - 1)
        value = 10**t if log else t
        ticks.append(f"{value:.3g}")
    return ticks


def text_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_log: bool = True,
    y_log: bool = True,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII scatter chart.

    Args:
        series: mapping of series name to points; each series gets a
            marker from :data:`MARKERS` (shown in the legend).
        width, height: plot area in characters.
        x_log, y_log: log10 axes (the paper's figures are mostly log-log).
    """
    if not series or all(len(pts) == 0 for pts in series.values()):
        raise InvalidParameterError("nothing to plot")
    if width < 16 or height < 4:
        raise InvalidParameterError("plot area too small")

    points = []
    for name, pts in series.items():
        for x, y in pts:
            points.append((_transform(x, x_log), _transform(y, y_log)))
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = MARKERS[idx % len(MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            tx = _transform(x, x_log)
            ty = _transform(y, y_log)
            col = round((tx - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((ty - y_lo) / (y_hi - y_lo) * (height - 1))
            cell = grid[height - 1 - row][col]
            # Overlapping series show as '?' so collisions are visible.
            grid[height - 1 - row][col] = marker if cell == " " else "?"

    lines = []
    if title:
        lines.append(title)
    y_ticks = _axis_ticks(y_lo, y_hi, y_log, count=3)
    tick_rows = {0: y_ticks[2], height // 2: y_ticks[1], height - 1: y_ticks[0]}
    label_width = max(len(t) for t in tick_rows.values())
    for r, row in enumerate(grid):
        label = tick_rows.get(r, "").rjust(label_width)
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_ticks = _axis_ticks(x_lo, x_hi, x_log, count=4)
    axis_line = " " * (label_width + 2)
    slot = width // (len(x_ticks) - 1)
    for i, t in enumerate(x_ticks):
        pos = label_width + 2 + i * slot - (0 if i == 0 else len(t) // 2)
        if pos + len(t) > len(axis_line):
            axis_line = axis_line.ljust(pos + len(t))
        axis_line = axis_line[:pos] + t + axis_line[pos + len(t):]
    lines.append(axis_line.rstrip())
    scale = (
        f"[x: {x_label}{' (log)' if x_log else ''}, "
        f"y: {y_label}{' (log)' if y_log else ''}]   "
    )
    lines.append(scale + "   ".join(legend))
    return "\n".join(lines)


def plot_results(
    results: Sequence["RunResult"],
    x: str,
    y: str,
    title: str = "",
    x_log: bool = True,
    y_log: bool = True,
) -> str:
    """Plot per-algorithm curves from harness RunResults (like the
    paper's figures: one marker per algorithm)."""
    from repro.evaluation.runner import by_algorithm

    series: Dict[str, List[Tuple[float, float]]] = {}
    for name, curve in by_algorithm(results).items():
        points = [(getattr(r, x), getattr(r, y)) for r in curve]
        # Log axes cannot place zeros (e.g. an algorithm that answered
        # exactly); drop those points rather than fail the whole chart.
        if x_log:
            points = [p for p in points if p[0] > 0]
        if y_log:
            points = [p for p in points if p[1] > 0]
        if points:
            series[name] = points
    return text_plot(
        series, title=title, x_label=x, y_label=y, x_log=x_log, y_log=y_log
    )
