"""Parameter sweeps over the measurement harness.

Every figure in the paper is a sweep: eps values along one axis, one
curve per algorithm, measured on a fixed stream.  ``sweep`` runs the
cross-product and returns a flat result list that the reporting helpers
(and the benchmark scripts) turn into the paper's tables and series.

The global scale knob: streams in the paper run to 10^8-10^10 elements on
C++; pure Python is ~100x slower per element, so benchmark scripts size
their streams via :func:`scaled_n`, honoring the ``REPRO_SCALE``
environment variable (default 1.0; set 10 for a long, closer-to-paper
run).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.evaluation.harness import RunResult, run_experiment

#: Default stream length for benchmark scripts before scaling.
BASE_N = 200_000


def scaled_n(base: int = BASE_N) -> int:
    """Benchmark stream length after applying ``REPRO_SCALE``."""
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    return max(1_000, int(base * scale))


def sweep(
    algorithms: Sequence[str],
    data: np.ndarray,
    eps_values: Iterable[float],
    universe_log2: Optional[int] = None,
    repeats: int = 3,
    seed: int = 0,
    per_algorithm_kwargs: Optional[Dict[str, Dict]] = None,
    **common_kwargs: Any,
) -> List[RunResult]:
    """Run every algorithm at every eps on the same stream.

    Args:
        algorithms: registry names; append ``"+post"`` to a DCS-family
            name to evaluate it through the OLS snapshot (e.g.
            ``"dcs+post"``).
        data: the insertion stream.
        eps_values: error parameters to sweep.
        universe_log2: for fixed-universe algorithms.
        repeats: randomized-algorithm repetitions per point.
        seed: base seed.
        per_algorithm_kwargs: optional extra constructor kwargs per name
            (keyed by the name *including* any ``+post`` suffix).
        **common_kwargs: forwarded to every run.

    Returns:
        One :class:`RunResult` per (algorithm, eps), in sweep order.
    """
    per_algorithm_kwargs = per_algorithm_kwargs or {}
    results: List[RunResult] = []
    for name in algorithms:
        post = name.endswith("+post")
        base_name = name[: -len("+post")] if post else name
        extra = dict(per_algorithm_kwargs.get(name, {}))
        for eps in eps_values:
            results.append(
                run_experiment(
                    base_name,
                    data,
                    eps,
                    universe_log2=universe_log2,
                    repeats=repeats,
                    seed=seed,
                    post_process=post,
                    **extra,
                    **common_kwargs,
                )
            )
    return results


def _sweep_config(payload: Dict[str, Any]) -> RunResult:
    """Run one (algorithm, eps) cell; module-level so process pools can
    pickle it."""
    name = payload.pop("name")
    post = name.endswith("+post")
    base_name = name[: -len("+post")] if post else name
    return run_experiment(base_name, post_process=post, **payload)


def parallel_sweep(
    algorithms: Sequence[str],
    data: np.ndarray,
    eps_values: Iterable[float],
    universe_log2: Optional[int] = None,
    repeats: int = 3,
    seed: int = 0,
    per_algorithm_kwargs: Optional[Dict[str, Dict]] = None,
    max_workers: Optional[int] = None,
    **common_kwargs: Any,
) -> List[RunResult]:
    """:func:`sweep`, fanned across a process pool.

    Every (algorithm, eps) cell is an independent :func:`run_experiment`
    call, so the cross-product parallelizes embarrassingly: each cell
    runs in its own process and the result list comes back in exactly
    :func:`sweep`'s order (``pool.map`` preserves it).  Seeds are
    per-cell constants, so a parallel sweep reports the same errors and
    spaces as the serial sweep — only wall-clock timing fields differ.

    Args:
        max_workers: process-pool size (``None`` = one per core).  The
            stream is pickled once per cell; keep cells coarse.

    Other arguments match :func:`sweep`.
    """
    per_algorithm_kwargs = per_algorithm_kwargs or {}
    configs: List[Dict[str, Any]] = []
    for name in algorithms:
        extra = dict(per_algorithm_kwargs.get(name, {}))
        for eps in eps_values:
            configs.append(
                dict(
                    name=name,
                    data=data,
                    eps=eps,
                    universe_log2=universe_log2,
                    repeats=repeats,
                    seed=seed,
                    **extra,
                    **common_kwargs,
                )
            )
    if len(configs) <= 1 or max_workers == 1:
        return [_sweep_config(config) for config in configs]
    import concurrent.futures
    import multiprocessing as mp

    method = (
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=max_workers, mp_context=mp.get_context(method)
    ) as pool:
        return list(pool.map(_sweep_config, configs))


def by_algorithm(results: Sequence[RunResult]) -> Dict[str, List[RunResult]]:
    """Group sweep results into per-algorithm curves (sweep order kept)."""
    curves: Dict[str, List[RunResult]] = {}
    for result in results:
        curves.setdefault(result.algorithm, []).append(result)
    return curves
