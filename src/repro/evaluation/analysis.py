"""Distribution analytics on top of quantile summaries.

The paper's introduction motivates quantiles as *the* nonparametric
distribution description: they give the CDF, the CDF gives the PDF, and
comparing distributions via quantiles yields quantile-quantile plots and
the Kolmogorov–Smirnov divergence.  This module turns any summary in the
library into those artifacts:

* :func:`cdf` — a step-function CDF approximation (value grid + levels);
* :func:`pdf_histogram` — an equi-probable histogram (density per bin);
* :func:`qq_points` — Q-Q plot coordinates between two summaries;
* :func:`ks_distance` — KS divergence between two summaries, computed
  from their quantile grids without touching raw data.

Everything works on the ``quantiles(phis)`` surface, so exact baselines,
streaming summaries, and post-processed snapshots are all accepted.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.base import SupportsQuantileQueries
from repro.core.errors import InvalidParameterError


def _grid(resolution: int) -> List[float]:
    if resolution < 2:
        raise InvalidParameterError(
            f"resolution must be >= 2, got {resolution!r}"
        )
    return [i / (resolution + 1) for i in range(1, resolution + 1)]


def cdf(
    sketch: SupportsQuantileQueries, resolution: int = 100
) -> Tuple[np.ndarray, np.ndarray]:
    """Approximate CDF of the summarized stream.

    Returns ``(values, probabilities)``: at ``values[i]`` the CDF is
    approximately ``probabilities[i]``.  Values are non-decreasing, so
    the pair plots directly as a step function.
    """
    phis = _grid(resolution)
    values = np.asarray(sketch.query_batch(phis), dtype=np.float64)
    values = np.maximum.accumulate(values)  # enforce monotone steps
    return values, np.asarray(phis)


def pdf_histogram(
    sketch: SupportsQuantileQueries, bins: int = 20
) -> Tuple[np.ndarray, np.ndarray]:
    """Equi-probable histogram: ``bins`` buckets of equal probability mass.

    Returns ``(edges, densities)`` with ``len(edges) == bins + 1``;
    ``densities[i]`` is probability mass / width over
    ``[edges[i], edges[i+1])``.  Equi-probable bins are the natural
    histogram for a quantile summary — narrow where the data is dense.
    """
    if bins < 1:
        raise InvalidParameterError(f"bins must be >= 1, got {bins!r}")
    phis = [i / bins for i in range(bins + 1)]
    phis[0], phis[-1] = 0.0, 1.0
    edges = np.asarray(sketch.query_batch(phis), dtype=np.float64)
    edges = np.maximum.accumulate(edges)
    widths = np.diff(edges)
    mass = 1.0 / bins
    densities = np.where(widths > 0, mass / np.where(widths > 0, widths, 1),
                         0.0)
    return edges, densities


def qq_points(
    sketch_a: SupportsQuantileQueries,
    sketch_b: SupportsQuantileQueries,
    resolution: int = 50,
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantile-quantile plot coordinates between two summaries.

    Point ``i`` is ``(a's phi_i-quantile, b's phi_i-quantile)``; identical
    distributions hug the diagonal.
    """
    phis = _grid(resolution)
    a = np.asarray(sketch_a.query_batch(phis), dtype=np.float64)
    b = np.asarray(sketch_b.query_batch(phis), dtype=np.float64)
    return a, b


def ks_distance(
    sketch_a: SupportsQuantileQueries,
    sketch_b: SupportsQuantileQueries,
    resolution: int = 200,
) -> float:
    """Kolmogorov–Smirnov divergence between two summarized streams.

    Evaluates both empirical CDFs on the union of their quantile grids
    via the summaries' ``rank`` estimates.  Accuracy is bounded by the
    summaries' eps plus the grid resolution.
    """
    phis = _grid(resolution)
    probes = np.union1d(
        np.asarray(sketch_a.query_batch(phis), dtype=np.float64),
        np.asarray(sketch_b.query_batch(phis), dtype=np.float64),
    )
    n_a = max(1, sketch_a.n)
    n_b = max(1, sketch_b.n)
    worst = 0.0
    for probe in probes:
        fa = min(1.0, max(0.0, sketch_a.rank(probe) / n_a))
        fb = min(1.0, max(0.0, sketch_b.rank(probe) / n_b))
        worst = max(worst, abs(fa - fb))
    return worst


@dataclasses.dataclass(frozen=True)
class DistributionSummary:
    """A compact descriptive-statistics card computed from a summary."""

    n: int
    median: float
    iqr: float
    p01: float
    p99: float
    skew_proxy: float  #: (p90 - p50) / (p50 - p10) - 1; 0 for symmetric


def describe(sketch: SupportsQuantileQueries) -> DistributionSummary:
    """Descriptive statistics from one pass over the summary."""
    phis = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
    p01, p10, p25, p50, p75, p90, p99 = (
        float(v) for v in sketch.query_batch(phis)
    )
    upper = p90 - p50
    lower = p50 - p10
    skew = (upper / lower - 1.0) if lower > 0 else 0.0
    return DistributionSummary(
        n=sketch.n,
        median=p50,
        iqr=p75 - p25,
        p01=p01,
        p99=p99,
        skew_proxy=skew,
    )


def compare(
    sketch_a: SupportsQuantileQueries,
    sketch_b: SupportsQuantileQueries,
    resolution: int = 200,
) -> Dict[str, Any]:
    """One-call comparison report between two summarized streams."""
    return {
        "ks_distance": ks_distance(sketch_a, sketch_b, resolution),
        "a": describe(sketch_a),
        "b": describe(sketch_b),
        "median_shift": float(sketch_b.query(0.5)) - float(
            sketch_a.query(0.5)
        ),
    }


__all__: Sequence[str] = [
    "DistributionSummary",
    "cdf",
    "compare",
    "describe",
    "ks_distance",
    "pdf_histogram",
    "qq_points",
]
