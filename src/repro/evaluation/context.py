"""Machine and build context for benchmark artifacts.

A benchmark number without its machine is noise: the paper's speed
tables are per-machine, and the committed ``BENCH_*.json`` artifacts are
regenerated on whatever box runs them.  :func:`machine_context` captures
the facts needed to read a number honestly — CPU count (the ceiling on
any parallel speedup), Python version and implementation, platform, and
the git commit the run was built from.

The wall-clock ``timestamp`` is a *parameter*: library code never reads
the clock (replint REP001); benchmark scripts — exempt from the rule —
pass ``time.time()`` in themselves.
"""

from __future__ import annotations

import os
import pathlib
import platform
import subprocess
from typing import Dict, Optional


def git_sha(cwd: Optional[pathlib.Path] = None) -> Optional[str]:
    """The current git commit hash, or None outside a work tree."""
    if cwd is None:
        cwd = pathlib.Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def machine_context(
    timestamp: Optional[float] = None,
) -> Dict[str, object]:
    """JSON-ready description of the machine and build behind a run.

    Args:
        timestamp: wall-clock seconds since the epoch, supplied by the
            caller (benchmark scripts pass ``time.time()``); ``None``
            when the artifact should stay timestamp-free.
    """
    return {
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": git_sha(),
        "timestamp": timestamp,
    }
