"""The measurement harness: run one algorithm over one stream and record
the paper's five measurements (Section 4.1.2).

For every (algorithm, stream, eps) the harness reports:

1. the error parameter ``eps`` handed to the algorithm,
2. observed **maximum** rank error (KS divergence),
3. observed **average** rank error,
4. **update time** per element (wall clock),
5. **space** — peak words over the stream, 4 bytes each.

Streams are fed in chunks so peak space can be sampled between chunks and
batch-update fast paths can be used where they exist.  Randomized
algorithms are run ``repeats`` times with derived seeds and their error
measurements averaged, as in the paper (which uses 100 repetitions; the
default here is smaller because pure Python pays ~100x the update cost).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.base import QuantileSketch, TurnstileSketch
from repro.core.errors import InvalidParameterError
from repro.core.registry import get_algorithm
from repro.evaluation.metrics import ErrorReport, measure_errors
from repro.evaluation.space import PeakSpaceTracker
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

#: Constructor parameter names understood by fixed-universe algorithms.
_UNIVERSE_PARAM = "universe_log2"


@dataclasses.dataclass(frozen=True)
class RunResult:
    """One harness run: algorithm x stream x eps -> five measurements."""

    algorithm: str
    eps: float
    n: int
    update_time_us: float  #: mean wall-clock microseconds per element
    peak_words: int
    max_error: float
    avg_error: float
    repeats: int
    extra: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def peak_bytes(self) -> int:
        return self.peak_words * 4

    @property
    def peak_kb(self) -> float:
        return self.peak_bytes / 1024.0


def _needs_universe(cls: type) -> bool:
    import inspect

    return _UNIVERSE_PARAM in inspect.signature(cls.__init__).parameters


def _accepts_seed(cls: type) -> bool:
    import inspect

    return "seed" in inspect.signature(cls.__init__).parameters


def build_sketch(
    algorithm: str,
    eps: float,
    universe_log2: Optional[int] = None,
    seed: Optional[int] = None,
    **kwargs: Any,
) -> QuantileSketch:
    """Instantiate a registered algorithm with only the kwargs it needs."""
    cls = get_algorithm(algorithm)
    params: Dict[str, Any] = dict(kwargs)
    params["eps"] = eps
    if _needs_universe(cls):
        if universe_log2 is None:
            raise InvalidParameterError(
                f"{algorithm} is fixed-universe: pass universe_log2"
            )
        params[_UNIVERSE_PARAM] = universe_log2
    if _accepts_seed(cls):
        params["seed"] = seed
    return cls(**params)


def apply_batch(sketch: QuantileSketch, batch: np.ndarray) -> None:
    """Feed one ndarray batch through the same kernel dispatch
    :func:`feed_stream` uses for its chunks.

    Turnstile sketches take the vectorized ``update_batch`` path,
    sketches with a batch ``extend`` override receive the array
    directly, and scalar-only sketches get plain Python elements.  The
    durable ingest store and the serving tier both apply batches through
    this function, so a WAL replay or a live-ingest flush lands in a
    state bit-identical to an offline :func:`feed_stream` run for
    deterministic sketches (error-equivalent for randomized ones).
    """
    if isinstance(sketch, TurnstileSketch):
        sketch.update_batch(batch)
    elif type(sketch).extend is not QuantileSketch.extend:
        sketch.extend(batch)
    else:
        sketch.extend(batch.tolist())


def feed_stream(
    sketch: QuantileSketch,
    data: np.ndarray,
    deletions: Optional[np.ndarray] = None,
    chunk: int = 4096,
    timings: Optional[Dict[str, Any]] = None,
    batch_size: Optional[int] = None,
) -> Tuple[float, int]:
    """Feed a stream (and optional trailing deletions) through a sketch.

    Returns ``(update_seconds, peak_words)``.  Uses the vectorized batch
    path for turnstile sketches and chunked ``extend`` otherwise, sampling
    peak space between chunks.  Sketches that override ``extend`` receive
    each chunk as a numpy array (their batch fast path); sketches on the
    default update-loop ``extend`` receive plain Python scalars, exactly
    as before.  ``batch_size`` overrides the chunk length (the knob for
    ingest-batching experiments; ``chunk`` is kept as the historical
    name).

    ``update_seconds`` covers only the sketch updates: space sampling
    between chunks is timed separately, so the meter's own cost no longer
    inflates the per-element update time.  Pass a dict as ``timings`` to
    receive the breakdown (``update_s``, ``sample_s``) plus the
    ``ingest_path`` actually taken (``update_batch`` for turnstile
    sketches, ``extend`` for batch fast paths, ``update-loop`` for the
    scalar fallback).
    """
    if batch_size is not None:
        if batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be >= 1, got {batch_size!r}"
            )
        chunk = batch_size
    tracker = PeakSpaceTracker(sketch)
    is_turnstile = isinstance(sketch, TurnstileSketch)
    # Turnstile sketches expose update_batch beyond the base interface.
    batch_target: Any = sketch
    has_batch_extend = type(sketch).extend is not QuantileSketch.extend
    if is_turnstile:
        ingest_path = "update_batch"
    elif has_batch_extend:
        ingest_path = "extend"
    else:
        ingest_path = "update-loop"
    rec = obs_metrics.recorder()
    update_s = 0.0
    sample_s = 0.0

    def feed_part(part: np.ndarray, delta: Optional[int] = None) -> None:
        nonlocal update_s, sample_s
        start = time.perf_counter()
        if delta is not None:
            batch_target.update_batch(part, delta)
        elif is_turnstile:
            batch_target.update_batch(part)
        elif has_batch_extend:
            sketch.extend(part)
        else:
            sketch.extend(part.tolist())
        mid = time.perf_counter()
        tracker.sample()
        done = time.perf_counter()
        update_s += mid - start
        sample_s += done - mid
        if rec.enabled:
            chunk_ns = 1e9 * (mid - start)
            rec.observe(
                "evaluation.chunk_update_ns", chunk_ns, algo=sketch.name
            )
            # Dogfooded: the same duration into a KLL summary, so the
            # exported p99 is a true quantile, not a bucket midpoint.
            rec.summary(
                "latency.chunk_update_ns", algo=sketch.name
            ).observe(chunk_ns)

    with span("evaluation.feed_stream", algo=sketch.name, n=len(data)):
        for lo in range(0, len(data), chunk):
            feed_part(data[lo : lo + chunk])
        if deletions is not None and len(deletions):
            if not is_turnstile:
                raise InvalidParameterError(
                    f"{sketch.name} cannot process deletions"
                )
            for lo in range(0, len(deletions), chunk):
                feed_part(deletions[lo : lo + chunk], -1)
        start = time.perf_counter()
        tracker.sample()
        sample_s += time.perf_counter() - start
    if rec.enabled:
        total = len(data) + (len(deletions) if deletions is not None else 0)
        rec.inc("evaluation.updates", total, algo=sketch.name)
    if timings is not None:
        timings["update_s"] = update_s
        timings["sample_s"] = sample_s
        timings["ingest_path"] = ingest_path
        timings["batch_size"] = float(chunk)
    return update_s, tracker.peak_words


def _feed_durable(
    store: Any,
    data: np.ndarray,
    chunk: int,
    timings: Dict[str, Any],
) -> Tuple[float, int]:
    """Durable analogue of :func:`feed_stream`: same chunking, same batch
    kernels, but every chunk goes through the WAL first.

    Returns ``(update_seconds, peak_words)``.  ``update_seconds``
    includes the WAL append — the durability overhead is exactly what a
    durable run is asked to measure.
    """
    sketch = store.sketch
    tracker = PeakSpaceTracker(sketch)
    rec = obs_metrics.recorder()
    update_s = 0.0
    sample_s = 0.0
    with span("evaluation.feed_stream", algo=sketch.name, n=len(data)):
        for lo in range(0, len(data), chunk):
            start = time.perf_counter()
            store.ingest(data[lo : lo + chunk])
            mid = time.perf_counter()
            tracker.sample()
            done = time.perf_counter()
            update_s += mid - start
            sample_s += done - mid
            if rec.enabled:
                chunk_ns = 1e9 * (mid - start)
                rec.observe(
                    "evaluation.chunk_update_ns", chunk_ns,
                    algo=sketch.name,
                )
                rec.summary(
                    "latency.chunk_update_ns", algo=sketch.name
                ).observe(chunk_ns)
        start = time.perf_counter()
        tracker.sample()
        sample_s += time.perf_counter() - start
    if rec.enabled:
        rec.inc("evaluation.updates", len(data), algo=sketch.name)
    timings["update_s"] = update_s
    timings["sample_s"] = sample_s
    timings["ingest_path"] = "durable"
    timings["batch_size"] = float(chunk)
    return update_s, tracker.peak_words


def run_experiment(
    algorithm: str,
    data: np.ndarray,
    eps: float,
    universe_log2: Optional[int] = None,
    deletions: Optional[np.ndarray] = None,
    repeats: int = 3,
    seed: int = 0,
    max_queries: int = 499,
    post_process: bool = False,
    collect_metrics: bool = False,
    batch_size: Optional[int] = None,
    parallel: Optional[int] = None,
    durable: Optional[Any] = None,
    telemetry_port: Optional[int] = None,
    flight_dir: Optional[Any] = None,
    **kwargs: Any,
) -> RunResult:
    """Run one full measurement: build, stream, and evaluate.

    Args:
        algorithm: registry name ("gk_array", "random", "dcs", ...).
        data: insertion stream (int64 values).
        eps: error parameter for the algorithm and the phi grid.
        universe_log2: required for fixed-universe algorithms.
        deletions: optional trailing deletion stream (turnstile only);
            ground truth becomes the remaining multiset.
        repeats: times to repeat with different seeds (errors averaged,
            times/space taken from the first run).  Deterministic
            algorithms always run once.
        seed: base seed; repeat ``i`` uses ``seed + 1000 * i``.
        max_queries: cap on the phi grid (see metrics.phi_grid).
        post_process: evaluate through the OLS snapshot (DCS only).
        collect_metrics: enable the process-wide metrics recorder for
            this run (it stays enabled afterwards so the caller can
            export; see :mod:`repro.obs`).
        batch_size: ingest chunk length handed to :func:`feed_stream`
            (``None`` keeps its default; with ``parallel`` it becomes
            the shard plan's chunk size).
        parallel: shard the stream across this many worker processes
            (:class:`repro.parallel.engine.ShardedIngestEngine`) and
            evaluate the *merged* summary.  Requires a mergeable
            algorithm and no deletions; ``None`` runs serially.
        durable: a :class:`repro.durability.DurabilityConfig` or store
            directory.  Serial runs feed through a crash-recoverable
            :class:`~repro.durability.ingest.DurableIngest` store (WAL +
            checkpoints; same chunking and batch kernels, so a zero-fault
            durable run is bit-identical to a non-durable one); with
            ``parallel`` the sharded run is driven by the self-healing
            :class:`~repro.durability.supervisor.SupervisedIngestEngine`.
            Each repeat gets its own ``run-<i>`` subdirectory (repeats
            use different seeds, and a store is pinned to one spec).
            Insertion-only.
        telemetry_port: serve live telemetry for the duration of the
            run: a :class:`repro.obs.TelemetryServer` on this port (0
            picks a free one; the bound port lands in
            ``RunResult.extra["telemetry_port"]``).  Implies
            ``collect_metrics``.
        flight_dir: install a flight recorder dumping JSONL post-mortems
            into this directory when the run degrades (supervisor
            restarts, torn WAL tails, ...).  It stays installed after
            the run, like the metrics recorder, so late events are
            still captured.
        **kwargs: forwarded to the algorithm constructor (width, depth,
            eta, ...).

    The per-phase wall-clock breakdown of the first repeat (``build_s``,
    ``update_s``, ``sample_s``, ``query_s``) lands in ``RunResult.extra``,
    alongside the ``ingest_path`` feed_stream actually took
    (``update_batch`` / ``extend`` / ``update-loop``).
    """
    if flight_dir is not None:
        from repro.obs.events import enable_flight

        enable_flight(flight_dir)
    server = None
    if telemetry_port is not None:
        from repro.obs.server import TelemetryServer

        # A server without a collecting registry would expose nothing.
        collect_metrics = True
        server = TelemetryServer(port=telemetry_port).start()
    try:
        if collect_metrics:
            obs_metrics.enable()
        if parallel is not None:
            if parallel < 1:
                raise InvalidParameterError(
                    f"parallel must be >= 1, got {parallel!r}"
                )
            if deletions is not None and len(deletions):
                raise InvalidParameterError(
                    "parallel ingest supports insertion-only streams; feed "
                    "deletion workloads serially"
                )
        durable_cfg = None
        if durable is not None:
            from repro.durability.ingest import DurabilityConfig

            durable_cfg = DurabilityConfig.coerce(durable)
            if deletions is not None and len(deletions):
                raise InvalidParameterError(
                    "durable ingest supports insertion-only streams: WAL "
                    "frames carry insertion batches"
                )
        if deletions is not None and len(deletions):
            counts: Dict[int, int] = {}
            for v in data.tolist():
                counts[v] = counts.get(v, 0) + 1
            for v in deletions.tolist():
                counts[v] = counts.get(v, 0) - 1
                if counts[v] < 0:
                    raise InvalidParameterError(
                        "deletions must form a sub-multiset of the insertions"
                    )
            remaining = [v for v, c in counts.items() for _ in range(c)]
            sorted_truth = np.sort(np.asarray(remaining, dtype=data.dtype))
        else:
            sorted_truth = np.sort(data)

        cls = get_algorithm(algorithm)
        effective_repeats = repeats if not cls.deterministic else 1
        post_eta = kwargs.pop("eta", 0.1) if post_process else None

        max_errors = []
        avg_errors = []
        elapsed = 0.0
        peak = 0
        phases: Dict[str, float] = {}
        extra: Dict[str, object] = {}
        durable_extra: Dict[str, object] = {}
        for i in range(effective_repeats):
            timings: Dict[str, Any] = {}
            repeat_durable = None
            if durable_cfg is not None:
                from pathlib import Path

                from repro.durability.ingest import DurabilityConfig

                repeat_durable = DurabilityConfig(
                    directory=Path(durable_cfg.directory) / f"run-{i:02d}",
                    checkpoint_interval=durable_cfg.checkpoint_interval,
                    keep_checkpoints=durable_cfg.keep_checkpoints,
                    fsync=durable_cfg.fsync,
                    segment_bytes=durable_cfg.segment_bytes,
                    validate_restore=durable_cfg.validate_restore,
                )
            if parallel is not None and repeat_durable is not None:
                from repro.durability.supervisor import SupervisedIngestEngine
                from repro.parallel.plan import DEFAULT_CHUNK_SIZE, ShardPlan

                plan = ShardPlan(
                    seed=seed + 1000 * i,
                    shards=parallel,
                    chunk_size=(
                        batch_size if batch_size is not None
                        else DEFAULT_CHUNK_SIZE
                    ),
                )
                build_start = time.perf_counter()
                with SupervisedIngestEngine(
                    algorithm, eps, plan, repeat_durable,
                    universe_log2=universe_log2,
                    collect_metrics=collect_metrics,
                    dtype=data.dtype,
                    **kwargs,
                ) as engine:
                    build_s = time.perf_counter() - build_start
                    feed_start = time.perf_counter()
                    engine.ingest(data)
                    supervised = engine.finish()
                    run_elapsed = time.perf_counter() - feed_start
                if supervised.summary is None:
                    raise InvalidParameterError(
                        "supervised run lost every shard; nothing to evaluate"
                    )
                sketch = supervised.summary
                run_peak = sketch.size_words()
                timings.update(
                    update_s=run_elapsed,
                    sample_s=0.0,
                    ingest_path=f"supervised[{parallel}]",
                )
                if i == 0:
                    durable_extra["coverage"] = supervised.coverage
                    durable_extra["effective_eps"] = supervised.effective_eps
            elif parallel is not None:
                from repro.parallel.engine import ShardedIngestEngine
                from repro.parallel.plan import DEFAULT_CHUNK_SIZE, ShardPlan

                plan = ShardPlan(
                    seed=seed + 1000 * i,
                    shards=parallel,
                    chunk_size=(
                        batch_size if batch_size is not None
                        else DEFAULT_CHUNK_SIZE
                    ),
                )
                build_start = time.perf_counter()
                with ShardedIngestEngine(
                    algorithm, eps, plan,
                    universe_log2=universe_log2,
                    collect_metrics=collect_metrics,
                    dtype=data.dtype,
                    **kwargs,
                ) as engine:
                    build_s = time.perf_counter() - build_start
                    feed_start = time.perf_counter()
                    engine.ingest(data)
                    sketch = engine.finish()
                    run_elapsed = time.perf_counter() - feed_start
                run_peak = engine.worker_peak_words
                timings.update(
                    update_s=run_elapsed,
                    sample_s=0.0,
                    ingest_path=f"parallel[{parallel}]",
                )
            elif repeat_durable is not None:
                from repro.durability.ingest import DurableIngest

                build_start = time.perf_counter()
                store = DurableIngest(
                    repeat_durable, algorithm, eps,
                    universe_log2=universe_log2,
                    seed=seed + 1000 * i,
                    dtype=data.dtype,
                    **kwargs,
                )
                build_s = time.perf_counter() - build_start
                run_elapsed, run_peak = _feed_durable(
                    store, data,
                    batch_size if batch_size is not None else 4096,
                    timings,
                )
                sketch = store.finish()
                if i == 0:
                    durable_extra["durable"] = {
                        "fsync": repeat_durable.fsync,
                        "checkpoint_interval":
                            repeat_durable.checkpoint_interval,
                        "recovered": store.recovery.recovered,
                        "replayed_batches": store.recovery.replayed_batches,
                        "wal_appends": store.wal.batches(),
                    }
            else:
                build_start = time.perf_counter()
                sketch = build_sketch(
                    algorithm, eps, universe_log2, seed + 1000 * i, **kwargs
                )
                build_s = time.perf_counter() - build_start
                run_elapsed, run_peak = feed_stream(
                    sketch, data, deletions, timings=timings,
                    batch_size=batch_size,
                )
            # The OLS snapshot lives beyond the base interface (DCS only).
            target: Any = sketch
            if post_process:
                target = target.post_processed(eta=post_eta)
            query_start = time.perf_counter()
            with span("evaluation.measure_errors", algo=sketch.name):
                report: ErrorReport = measure_errors(
                    target, sorted_truth, eps, max_queries
                )
            query_s = time.perf_counter() - query_start
            if i == 0:
                elapsed, peak = run_elapsed, run_peak
                phases = {
                    "build_s": build_s,
                    "update_s": float(timings["update_s"]),
                    "sample_s": float(timings["sample_s"]),
                    "query_s": query_s,
                }
                extra = {**phases, "ingest_path": timings["ingest_path"]}
                if parallel is not None:
                    extra["workers"] = parallel
                extra.update(durable_extra)
            max_errors.append(report.max_error)
            avg_errors.append(report.avg_error)

        if server is not None:
            extra["telemetry_port"] = server.port
        n_effective = len(sorted_truth)
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("evaluation.runs", 1, algo=algorithm)
            rec.set("evaluation.stream.n", len(data))
            for phase_name, seconds in phases.items():
                rec.observe(
                    "evaluation.phase_ns",
                    1e9 * seconds,
                    phase=phase_name[:-2],
                    algo=algorithm,
                )
        return RunResult(
            algorithm=algorithm + ("+post" if post_process else ""),
            eps=eps,
            n=n_effective,
            update_time_us=1e6 * elapsed / max(1, len(data)),
            peak_words=peak,
            max_error=float(np.mean(max_errors)),
            avg_error=float(np.mean(avg_errors)),
            repeats=effective_repeats,
            extra=extra,
        )
    finally:
        if server is not None:
            server.stop()


