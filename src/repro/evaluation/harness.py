"""The measurement harness: run one algorithm over one stream and record
the paper's five measurements (Section 4.1.2).

For every (algorithm, stream, eps) the harness reports:

1. the error parameter ``eps`` handed to the algorithm,
2. observed **maximum** rank error (KS divergence),
3. observed **average** rank error,
4. **update time** per element (wall clock),
5. **space** — peak words over the stream, 4 bytes each.

Streams are fed in chunks so peak space can be sampled between chunks and
batch-update fast paths can be used where they exist.  Randomized
algorithms are run ``repeats`` times with derived seeds and their error
measurements averaged, as in the paper (which uses 100 repetitions; the
default here is smaller because pure Python pays ~100x the update cost).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional

import numpy as np

from repro.core.base import QuantileSketch, TurnstileSketch
from repro.core.errors import InvalidParameterError
from repro.core.registry import get_algorithm
from repro.evaluation.metrics import ErrorReport, measure_errors
from repro.evaluation.space import PeakSpaceTracker

#: Constructor parameter names understood by fixed-universe algorithms.
_UNIVERSE_PARAM = "universe_log2"


@dataclasses.dataclass(frozen=True)
class RunResult:
    """One harness run: algorithm x stream x eps -> five measurements."""

    algorithm: str
    eps: float
    n: int
    update_time_us: float  #: mean wall-clock microseconds per element
    peak_words: int
    max_error: float
    avg_error: float
    repeats: int
    extra: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def peak_bytes(self) -> int:
        return self.peak_words * 4

    @property
    def peak_kb(self) -> float:
        return self.peak_bytes / 1024.0


def _needs_universe(cls) -> bool:
    import inspect

    return _UNIVERSE_PARAM in inspect.signature(cls.__init__).parameters


def _accepts_seed(cls) -> bool:
    import inspect

    return "seed" in inspect.signature(cls.__init__).parameters


def build_sketch(
    algorithm: str,
    eps: float,
    universe_log2: Optional[int] = None,
    seed: Optional[int] = None,
    **kwargs,
) -> QuantileSketch:
    """Instantiate a registered algorithm with only the kwargs it needs."""
    cls = get_algorithm(algorithm)
    params = dict(kwargs)
    params["eps"] = eps
    if _needs_universe(cls):
        if universe_log2 is None:
            raise InvalidParameterError(
                f"{algorithm} is fixed-universe: pass universe_log2"
            )
        params[_UNIVERSE_PARAM] = universe_log2
    if _accepts_seed(cls):
        params["seed"] = seed
    return cls(**params)


def feed_stream(
    sketch: QuantileSketch,
    data: np.ndarray,
    deletions: Optional[np.ndarray] = None,
    chunk: int = 4096,
) -> tuple:
    """Feed a stream (and optional trailing deletions) through a sketch.

    Returns ``(seconds, peak_words)``.  Uses the vectorized batch path for
    turnstile sketches and chunked ``extend`` otherwise, sampling peak
    space between chunks.
    """
    tracker = PeakSpaceTracker(sketch)
    is_turnstile = isinstance(sketch, TurnstileSketch)
    start = time.perf_counter()
    for lo in range(0, len(data), chunk):
        part = data[lo : lo + chunk]
        if is_turnstile:
            sketch.update_batch(part)
        else:
            sketch.extend(part.tolist())
        tracker.sample()
    if deletions is not None and len(deletions):
        if not is_turnstile:
            raise InvalidParameterError(
                f"{sketch.name} cannot process deletions"
            )
        for lo in range(0, len(deletions), chunk):
            sketch.update_batch(deletions[lo : lo + chunk], -1)
            tracker.sample()
    elapsed = time.perf_counter() - start
    tracker.sample()
    return elapsed, tracker.peak_words


def run_experiment(
    algorithm: str,
    data: np.ndarray,
    eps: float,
    universe_log2: Optional[int] = None,
    deletions: Optional[np.ndarray] = None,
    repeats: int = 3,
    seed: int = 0,
    max_queries: int = 499,
    post_process: bool = False,
    **kwargs,
) -> RunResult:
    """Run one full measurement: build, stream, and evaluate.

    Args:
        algorithm: registry name ("gk_array", "random", "dcs", ...).
        data: insertion stream (int64 values).
        eps: error parameter for the algorithm and the phi grid.
        universe_log2: required for fixed-universe algorithms.
        deletions: optional trailing deletion stream (turnstile only);
            ground truth becomes the remaining multiset.
        repeats: times to repeat with different seeds (errors averaged,
            times/space taken from the first run).  Deterministic
            algorithms always run once.
        seed: base seed; repeat ``i`` uses ``seed + 1000 * i``.
        max_queries: cap on the phi grid (see metrics.phi_grid).
        post_process: evaluate through the OLS snapshot (DCS only).
        **kwargs: forwarded to the algorithm constructor (width, depth,
            eta, ...).
    """
    if deletions is not None and len(deletions):
        counts: Dict[int, int] = {}
        for v in data.tolist():
            counts[v] = counts.get(v, 0) + 1
        for v in deletions.tolist():
            counts[v] = counts.get(v, 0) - 1
            if counts[v] < 0:
                raise InvalidParameterError(
                    "deletions must form a sub-multiset of the insertions"
                )
        remaining = [v for v, c in counts.items() for _ in range(c)]
        sorted_truth = np.sort(np.asarray(remaining, dtype=data.dtype))
    else:
        sorted_truth = np.sort(data)

    cls = get_algorithm(algorithm)
    effective_repeats = repeats if not cls.deterministic else 1
    post_eta = kwargs.pop("eta", 0.1) if post_process else None

    max_errors = []
    avg_errors = []
    elapsed = peak = None
    for i in range(effective_repeats):
        sketch = build_sketch(
            algorithm, eps, universe_log2, seed + 1000 * i, **kwargs
        )
        run_elapsed, run_peak = feed_stream(sketch, data, deletions)
        if elapsed is None:
            elapsed, peak = run_elapsed, run_peak
        target = sketch
        if post_process:
            target = sketch.post_processed(eta=post_eta)
        report: ErrorReport = measure_errors(
            target, sorted_truth, eps, max_queries
        )
        max_errors.append(report.max_error)
        avg_errors.append(report.avg_error)

    n_effective = len(sorted_truth)
    return RunResult(
        algorithm=algorithm + ("+post" if post_process else ""),
        eps=eps,
        n=n_effective,
        update_time_us=1e6 * elapsed / max(1, len(data)),
        peak_words=peak,
        max_error=float(np.mean(max_errors)),
        avg_error=float(np.mean(avg_errors)),
        repeats=effective_repeats,
    )


