"""Deterministic shard plans for multi-core ingest.

A :class:`ShardPlan` fixes, up front, everything that makes a parallel
run reproducible: the master ``seed``, the number of ``shards``
(workers), and the ``chunk_size`` in which the stream is cut.  Chunks
are dealt to shards round-robin, so for a fixed plan every element of
the stream lands on the same worker on every run, and every worker's
random coins are a pure function of the plan:

* ``worker_seed(shard)`` spawns an independent child seed per shard via
  :class:`numpy.random.SeedSequence` — statistically independent streams
  for randomized comparison-based sketches (Random, MRL99, KLL, ...).
* ``sketch_seed(shard, shares_seed)`` additionally honors the
  registry's ``merge_shares_seed`` capability: linear turnstile sketches
  (DCM/DCS/RSS) only merge when every shard drew *identical* hash
  functions, so for those every shard gets the plan's master seed.

Nothing here touches wall clocks or global RNG state — the replint
REP006 rule holds worker entry points to exactly this discipline.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError

#: Default chunk length (elements) cut from the input stream; 64K int64
#: elements is 512 KiB per slot — large enough to amortize queue hops,
#: small enough that double-buffering two slots per worker stays cheap.
DEFAULT_CHUNK_SIZE = 65536


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Deterministic recipe for splitting one stream across workers.

    Args:
        seed: master seed; every per-shard seed derives from it.
        shards: number of workers the stream is dealt across.
        chunk_size: elements per chunk (chunks are dealt round-robin).
    """

    seed: int
    shards: int
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or self.seed < 0:
            raise InvalidParameterError(
                f"seed must be a non-negative int, got {self.seed!r}"
            )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise InvalidParameterError(
                f"shards must be an int >= 1, got {self.shards!r}"
            )
        if not isinstance(self.chunk_size, int) or self.chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be an int >= 1, got {self.chunk_size!r}"
            )

    def _check_shard(self, shard: int) -> None:
        if not (0 <= shard < self.shards):
            raise InvalidParameterError(
                f"shard {shard!r} outside [0, {self.shards})"
            )

    def worker_seed(self, shard: int) -> int:
        """Independent derived seed for ``shard`` (SeedSequence spawn)."""
        self._check_shard(shard)
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(shard,))
        return int(seq.generate_state(1, dtype=np.uint64)[0])

    def sketch_seed(self, shard: int, shares_seed: bool) -> int:
        """The seed the shard's sketch is built from.

        ``shares_seed=True`` (linear sketches whose merge requires
        identical hash functions) returns the master seed for every
        shard; otherwise each shard gets its independent
        :meth:`worker_seed`.
        """
        if shares_seed:
            self._check_shard(shard)
            return self.seed
        return self.worker_seed(shard)

    def shard_of_chunk(self, chunk_index: int) -> int:
        """Which shard chunk ``chunk_index`` is dealt to (round-robin)."""
        if chunk_index < 0:
            raise InvalidParameterError(
                f"chunk_index must be >= 0, got {chunk_index!r}"
            )
        return chunk_index % self.shards

    def chunks(self, n: int, first_chunk: int = 0) -> Iterator[
        Tuple[int, int, int]
    ]:
        """Yield ``(chunk_index, lo, hi)`` slices covering ``[0, n)``.

        ``first_chunk`` offsets the global chunk numbering so repeated
        :meth:`~repro.parallel.engine.ShardedIngestEngine.ingest` calls
        continue the same round-robin deal.
        """
        if n < 0:
            raise InvalidParameterError(f"n must be >= 0, got {n!r}")
        index = first_chunk
        for lo in range(0, n, self.chunk_size):
            yield index, lo, min(n, lo + self.chunk_size)
            index += 1

    def shard_sizes(self, n: int) -> List[int]:
        """Elements each shard receives from an ``n``-element stream."""
        sizes = [0] * self.shards
        for index, lo, hi in self.chunks(n):
            sizes[self.shard_of_chunk(index)] += hi - lo
        return sizes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardPlan(seed={self.seed}, shards={self.shards}, "
            f"chunk_size={self.chunk_size})"
        )
