"""Multi-core sharded ingest: shard plans, shared-memory chunk
transport, persistent worker processes, and merge-tree aggregation.

Quick start::

    from repro.parallel import ShardPlan, parallel_feed

    plan = ShardPlan(seed=42, shards=4)
    summary, seconds = parallel_feed("gk_array", data, eps=0.001, plan=plan)
    summary.query(0.5)

The merged summary answers within the same ``eps`` the shards ran at —
see :mod:`repro.parallel.engine` for the mechanics and
:mod:`repro.cash_register.gk_batch` for the GK merge argument.
"""

from repro.parallel.engine import ShardedIngestEngine, parallel_feed
from repro.parallel.plan import DEFAULT_CHUNK_SIZE, ShardPlan
from repro.parallel.shm import SLOTS_PER_WORKER, ChunkSlot

__all__ = [
    "ChunkSlot",
    "DEFAULT_CHUNK_SIZE",
    "SLOTS_PER_WORKER",
    "ShardPlan",
    "ShardedIngestEngine",
    "parallel_feed",
]
