"""The multi-core sharded ingest engine.

One stream, ``K`` persistent worker processes, one merged summary:

1. The parent cuts the stream into :class:`~repro.parallel.plan.ShardPlan`
   chunks and deals them round-robin into per-worker shared-memory slots
   (:mod:`repro.parallel.shm`) — the hot path moves bytes with two
   ``ndarray`` copies and never pickles element data.
2. Each worker owns one sketch, seeded from the plan
   (``plan.sketch_seed``), and ingests its chunks through the batch
   kernels (``extend`` / ``update_batch``).  Workers persist for the
   whole stream; they are built once, not per chunk.
3. ``finish()`` ships each worker's summary back as a checksummed
   snapshot envelope, re-registers worker metrics/spans in the parent,
   and folds the ``K`` summaries with a binary merge tree into one
   summary whose error bound is the same ``eps`` the shards ran at
   (see :mod:`repro.cash_register.gk_batch` for the GK argument; linear
   sketches merge by counter addition; weighted-sample sketches by
   collapse).

Determinism: for a fixed ``(algorithm, data, ShardPlan)`` the merged
summary is identical run to run — chunk dealing, worker seeds, and the
merge-tree order are all pure functions of the plan.  Workers that
crash or hang raise :class:`~repro.core.errors.ParallelIngestError` in
the parent rather than deadlocking the session.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.base import QuantileSketch, TurnstileSketch
from repro.core.errors import (
    InvalidParameterError,
    ParallelIngestError,
    UnmergeableSketchError,
)
from repro.core.registry import merge_shares_seed, supports_merge
from repro.core.snapshot import restore, snapshot
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.parallel.plan import ShardPlan
from repro.parallel.shm import (
    MAX_SLOTS_PER_WORKER,
    SLOTS_PER_WORKER,
    attach_slots,
    create_slot_pool,
)

#: Seconds the parent waits on worker replies before declaring it dead.
_REPLY_TIMEOUT_S = 120.0

#: Elements fed to the one-shot kernel-speed probe that sizes slot pools.
_PROBE_ELEMENTS = 4096

#: Probe thresholds (ns/item) for slot-pool depth.  Cheap kernels drain
#: chunks faster than ack round trips restock the pool, so they get deep
#: pools; kernels slower than ~1 µs/item can't outrun double buffering.
_FAST_KERNEL_NS = 250.0
_MEDIUM_KERNEL_NS = 1000.0


def _start_method() -> str:
    """Prefer fork (fast, Linux default); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _shard_worker(
    worker_id: int,
    plan: ShardPlan,
    spec: Dict[str, Any],
    slot_names: List[str],
    dtype_str: str,
    task_queue: Any,
    reply_queue: Any,
    collect_metrics: bool,
    collect_spans: bool,
) -> None:
    """Worker entry point: one sketch, fed from shared-memory slots.

    Every random draw in the worker flows from the plan: the sketch seed
    is ``plan.sketch_seed(worker_id, shares_seed)`` (REP006).  Messages
    on ``task_queue`` are ``("chunk", slot, count)``, ``("finish",)``,
    or ``("stop",)``; replies are ``("ack", worker, [slots])`` — one ack
    per *drained group*, not per chunk — sent after every drained chunk
    is copied out of shared memory (so the parent refills the whole
    group while the sketch ingests), ``("result", worker, blob, metrics,
    spans)``, and ``("error", worker, traceback)``.

    The drain keeps chunk ingest order identical to send order (chunks
    are copied out and ingested in queue order, one ``update_batch`` /
    ``extend`` call per chunk), so the merged result stays a pure
    function of the plan regardless of how the drain groups land.
    """
    # Imported here, not at module top, to keep the worker's fork-time
    # surface identical to the parent's (spawn re-imports this module).
    import queue as queue_module

    from repro.evaluation.harness import build_sketch

    registry = None
    tracer = None
    try:
        if collect_metrics:
            registry = obs_metrics.enable(obs_metrics.MetricsRegistry())
        if collect_spans:
            tracer = obs_trace.enable_tracing(obs_trace.Tracer())
        seed = plan.sketch_seed(worker_id, spec["shares_seed"])
        sketch = build_sketch(
            spec["algorithm"],
            spec["eps"],
            spec["universe_log2"],
            seed,
            **spec["kwargs"],
        )
        is_turnstile = isinstance(sketch, TurnstileSketch)
        slots = attach_slots(
            slot_names, plan.chunk_size, np.dtype(dtype_str)
        )
        rec = obs_metrics.recorder()
        pending: List[Any] = []
        while True:
            message = pending.pop() if pending else task_queue.get()
            kind = message[0]
            if kind == "chunk":
                # Drain whatever else already sits in the queue (bounded
                # by the slot-pool depth), copy every drained chunk out,
                # then free the whole slot group with a single ack.
                group = [message]
                while len(group) < len(slots) and not pending:
                    try:
                        extra = task_queue.get_nowait()
                    except queue_module.Empty:
                        break
                    if extra[0] == "chunk":
                        group.append(extra)
                    else:
                        pending.append(extra)
                chunks = [
                    (count, slots[slot].read(count))
                    for _, slot, count in group
                ]
                reply_queue.put(
                    ("ack", worker_id, [slot for _, slot, _ in group])
                )
                if rec.enabled:
                    rec.inc("parallel.acks", 1)
                    rec.inc("parallel.acked_slots", len(group))
                for count, values in chunks:
                    start = time.perf_counter_ns()
                    with obs_trace.span(
                        "parallel.ingest_chunk", algo=sketch.name, n=count
                    ):
                        if is_turnstile:
                            sketch.update_batch(values)
                        else:
                            sketch.extend(values)
                    if rec.enabled:
                        elapsed = time.perf_counter_ns() - start
                        rec.observe(
                            "parallel.ingest_ns", elapsed, algo=sketch.name
                        )
                        rec.summary(
                            "latency.ingest_chunk_ns", algo=sketch.name
                        ).observe(elapsed)
            elif kind == "finish":
                blob = snapshot(sketch)
                metrics_state = (
                    obs_metrics.export_state(registry)
                    if registry is not None
                    else []
                )
                # Ship the anchored batch (not the raw event list) so the
                # parent can re-base worker spans onto its timeline.
                span_batch = (
                    tracer.export_batch() if tracer is not None else None
                )
                reply_queue.put(
                    ("result", worker_id, blob, metrics_state, span_batch)
                )
            elif kind == "stop":
                break
            else:  # pragma: no cover - protocol bug guard
                raise InvalidParameterError(
                    f"unknown worker message {message!r}"
                )
        for slot in slots:
            slot.close()
    except Exception:  # pragma: no cover - exercised via crash tests
        reply_queue.put(("error", worker_id, traceback.format_exc()))


class ShardedIngestEngine:
    """Feed one stream through ``K`` worker processes and merge.

    Args:
        algorithm: registry name; must support merging
            (:func:`repro.core.registry.mergeable_algorithms`).
        eps: error parameter for every shard *and* the merged summary.
        plan: the :class:`ShardPlan` fixing shard count, chunking, and
            every seed.
        universe_log2: for fixed-universe algorithms.
        collect_metrics: run a metrics registry in every worker and
            absorb each into the parent recorder (labeled ``worker=i``)
            at ``finish()``.  Worker spans are shipped the same way when
            the parent has tracing enabled.
        dtype: element dtype of the stream (slots are sized for it).
        slots_per_worker: shared-memory slots per worker.  ``None``
            (default) sizes the pool from a one-shot ns/item probe of
            the ingest kernel at first :meth:`ingest`: fast kernels get
            :data:`~repro.parallel.shm.MAX_SLOTS_PER_WORKER` slots so
            refill overlaps ingest deeply enough that they stop
            stalling on ack round trips; slow kernels keep the classic
            double buffer.
        **kwargs: forwarded to the algorithm constructor.

    Use as a context manager, or call :meth:`close` — slots are
    shared-memory segments that must be unlinked.
    """

    def __init__(
        self,
        algorithm: str,
        eps: float,
        plan: ShardPlan,
        universe_log2: Optional[int] = None,
        collect_metrics: bool = False,
        dtype: Any = np.int64,
        slots_per_worker: Optional[int] = None,
        **kwargs: Any,
    ) -> None:
        if not supports_merge(algorithm):
            raise UnmergeableSketchError(
                f"{algorithm} cannot shard: it defines no merge operation "
                "(see repro.core.registry.mergeable_algorithms())"
            )
        if slots_per_worker is not None and not (
            1 <= slots_per_worker <= MAX_SLOTS_PER_WORKER
        ):
            raise InvalidParameterError(
                f"slots_per_worker must be in [1, {MAX_SLOTS_PER_WORKER}], "
                f"got {slots_per_worker!r}"
            )
        self.algorithm = algorithm
        self.eps = eps
        self.plan = plan
        self._spec: Dict[str, Any] = {
            "algorithm": algorithm,
            "eps": eps,
            "universe_log2": universe_log2,
            "kwargs": dict(kwargs),
            "shares_seed": merge_shares_seed(algorithm),
        }
        self._dtype = np.dtype(dtype)
        self._collect_metrics = collect_metrics
        #: Resolved at :meth:`_start` (probe) when constructed as None.
        self.slots_per_worker = slots_per_worker
        self._ctx = mp.get_context(_start_method())
        self._workers: List[Any] = []
        self._task_queues: List[Any] = []
        self._reply_queue: Optional[Any] = None
        self._slots: List[List[Any]] = []
        self._free: List[List[int]] = []
        self._chunk_counter = 0
        self._elements = 0
        #: Combined ``size_words()`` of the worker summaries as restored
        #: at :meth:`finish` — the live-summary footprint of the run.
        self.worker_peak_words = 0
        self._finished = False
        self._closed = False
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def _probe_slots_per_worker(self, data: np.ndarray) -> int:
        """Size the slot pools from a measured ns/item kernel probe.

        Builds a throwaway sketch (metrics paused, so the probe's
        updates never pollute the run's counters) and times one batch.
        Pool depth never affects the merged result — only how deeply
        refill overlaps ingest — so a timing-derived value preserves
        the plan-determinism contract.
        """
        sample = data[: min(_PROBE_ELEMENTS, len(data))]
        if not len(sample):
            return SLOTS_PER_WORKER
        from repro.evaluation.harness import build_sketch

        with obs_metrics.paused():
            probe = build_sketch(
                self._spec["algorithm"],
                self._spec["eps"],
                self._spec["universe_log2"],
                self.plan.seed,
                **self._spec["kwargs"],
            )
            start = time.perf_counter_ns()
            if isinstance(probe, TurnstileSketch):
                probe.update_batch(sample)
            else:
                probe.extend(sample)
            ns_per_item = (time.perf_counter_ns() - start) / len(sample)
        if ns_per_item < _FAST_KERNEL_NS:
            return MAX_SLOTS_PER_WORKER
        if ns_per_item < _MEDIUM_KERNEL_NS:
            return 4
        return SLOTS_PER_WORKER

    def _start(self, data: Optional[np.ndarray] = None) -> None:
        if self._started:
            return
        if self.slots_per_worker is None:
            self.slots_per_worker = (
                self._probe_slots_per_worker(data)
                if data is not None
                else SLOTS_PER_WORKER
            )
        collect_spans = obs_trace.tracer() is not None
        self._slots = create_slot_pool(
            self.plan.shards, self.slots_per_worker, self.plan.chunk_size,
            self._dtype,
        )
        self._reply_queue = self._ctx.Queue()
        for worker_id in range(self.plan.shards):
            task_queue = self._ctx.Queue()
            process = self._ctx.Process(
                target=_shard_worker,
                args=(
                    worker_id,
                    self.plan,
                    self._spec,
                    [slot.name for slot in self._slots[worker_id]],
                    self._dtype.str,
                    task_queue,
                    self._reply_queue,
                    self._collect_metrics,
                    collect_spans,
                ),
                daemon=True,
            )
            process.start()
            self._workers.append(process)
            self._task_queues.append(task_queue)
            self._free.append(list(range(self.slots_per_worker)))
        self._started = True
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("parallel.workers", self.plan.shards)
            rec.set("parallel.slots_per_worker", self.slots_per_worker)
            rec.set("telemetry.engine.up", 1)
            for worker_id in range(self.plan.shards):
                rec.set("telemetry.shard.alive", 1, worker=worker_id)

    def __enter__(self) -> "ShardedIngestEngine":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # -- reply handling -------------------------------------------------

    def _next_reply(self) -> Any:
        """One reply from any worker, or raise if a worker died."""
        import queue as queue_module

        try:
            reply = self._reply_queue.get(timeout=_REPLY_TIMEOUT_S)
        except queue_module.Empty:
            dead = [
                i for i, p in enumerate(self._workers) if not p.is_alive()
            ]
            raise ParallelIngestError(
                f"no worker reply within {_REPLY_TIMEOUT_S:.0f}s; "
                f"dead workers: {dead or 'none'}"
            ) from None
        if reply[0] == "error":
            raise ParallelIngestError(
                f"worker {reply[1]} failed:\n{reply[2]}"
            )
        return reply

    def _absorb_ack(self, reply: Any) -> None:
        """Return an acked slot group to its worker's free pool."""
        if reply[0] != "ack":  # pragma: no cover - protocol guard
            raise ParallelIngestError(
                f"unexpected reply {reply[0]!r} while waiting for acks"
            )
        self._free[reply[1]].extend(reply[2])

    def _drain_acks(self) -> None:
        """Absorb every already-arrived ack without blocking.

        Called opportunistically during the deal so free lists restock
        as soon as workers drain, keeping the parent's slot writes
        overlapped with worker ingest instead of bursting at stalls.
        """
        import queue as queue_module

        while True:
            try:
                reply = self._reply_queue.get_nowait()
            except queue_module.Empty:
                return
            if reply[0] == "error":
                raise ParallelIngestError(
                    f"worker {reply[1]} failed:\n{reply[2]}"
                )
            self._absorb_ack(reply)

    def _take_free_slot(self, worker_id: int) -> int:
        """A free slot for ``worker_id``, draining acks until one shows."""
        while not self._free[worker_id]:
            self._absorb_ack(self._next_reply())
        return self._free[worker_id].pop()

    # -- ingest ---------------------------------------------------------

    def ingest(self, data: np.ndarray) -> None:
        """Deal a stream (or a piece of one) across the workers.

        May be called repeatedly; the round-robin chunk deal continues
        where the previous call stopped, so ``ingest(a); ingest(b)`` is
        the same deal as ``ingest(concat(a, b))`` when ``len(a)`` is a
        multiple of the chunk size.
        """
        if self._finished:
            raise InvalidParameterError(
                "engine already finished; build a new one to ingest more"
            )
        data = np.asarray(data, dtype=self._dtype)
        self._start(data)
        rec = obs_metrics.recorder()
        chunks = 0
        for index, lo, hi in self.plan.chunks(
            len(data), first_chunk=self._chunk_counter
        ):
            worker_id = self.plan.shard_of_chunk(index)
            self._drain_acks()
            slot = self._take_free_slot(worker_id)
            count = self._slots[worker_id][slot].write(data[lo:hi])
            self._task_queues[worker_id].put(("chunk", slot, count))
            chunks += 1
        self._chunk_counter += chunks
        self._elements += len(data)
        if rec.enabled:
            rec.inc("parallel.chunks", chunks, algo=self.algorithm)
            rec.inc("parallel.elements", len(data), algo=self.algorithm)

    # -- finish ---------------------------------------------------------

    def finish(self) -> QuantileSketch:
        """Collect every worker's summary and merge to one.

        Returns the merged summary (error bound ``eps`` over the union
        stream).  Worker metrics and spans, when collected, are absorbed
        into the parent's recorder/tracer labeled ``worker=<shard>``.
        """
        if self._finished:
            raise InvalidParameterError("engine already finished")
        self._start()
        self._finished = True
        for task_queue in self._task_queues:
            task_queue.put(("finish",))
        blobs: Dict[int, bytes] = {}
        rec = obs_metrics.recorder()
        parent_tracer = obs_trace.tracer()
        while len(blobs) < self.plan.shards:
            reply = self._next_reply()
            if reply[0] == "ack":
                self._free[reply[1]].extend(reply[2])
                continue
            _, worker_id, blob, metrics_state, span_batch = reply
            blobs[worker_id] = blob
            if metrics_state and isinstance(
                rec, obs_metrics.MetricsRegistry
            ):
                obs_metrics.absorb_state(
                    rec, metrics_state, worker=worker_id
                )
            if span_batch and parent_tracer is not None:
                parent_tracer.ingest(span_batch, worker=worker_id)
        sketches = [restore(blobs[i]) for i in range(self.plan.shards)]
        self.worker_peak_words = sum(s.size_words() for s in sketches)
        with obs_trace.span(
            "parallel.merge_tree", algo=self.algorithm,
            shards=self.plan.shards,
        ):
            while len(sketches) > 1:
                merged: List[QuantileSketch] = []
                for i in range(0, len(sketches) - 1, 2):
                    start = time.perf_counter_ns()
                    sketches[i].merge(sketches[i + 1])
                    if rec.enabled:
                        rec.inc("parallel.merges", 1, algo=self.algorithm)
                        rec.observe(
                            "parallel.merge_ns",
                            time.perf_counter_ns() - start,
                            algo=self.algorithm,
                        )
                    merged.append(sketches[i])
                if len(sketches) % 2:
                    merged.append(sketches[-1])
                sketches = merged
        result = sketches[0]
        result.validate()
        return result

    def close(self) -> None:
        """Stop workers and release the shared-memory slots."""
        if self._closed:
            return
        self._closed = True
        rec = obs_metrics.recorder()
        if rec.enabled and self._started:
            rec.set("telemetry.engine.up", 0)
            for worker_id in range(self.plan.shards):
                rec.set("telemetry.shard.alive", 0, worker=worker_id)
        for task_queue in self._task_queues:
            try:
                task_queue.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover
                pass
        for process in self._workers:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()  # replint: disable=REP007
                process.join(timeout=5.0)
        for pool in self._slots:
            for slot in pool:
                slot.close()
                slot.unlink()


def parallel_feed(
    algorithm: str,
    data: np.ndarray,
    eps: float,
    plan: ShardPlan,
    universe_log2: Optional[int] = None,
    collect_metrics: bool = False,
    **kwargs: Any,
) -> tuple:
    """One-shot convenience: shard ``data``, merge, return the summary.

    Returns ``(summary, seconds)`` where ``seconds`` is the wall-clock
    time of ingest plus merge (the parallel analogue of the harness's
    update phase).
    """
    with ShardedIngestEngine(
        algorithm,
        eps,
        plan,
        universe_log2=universe_log2,
        collect_metrics=collect_metrics,
        dtype=np.asarray(data).dtype,
        **kwargs,
    ) as engine:
        start = time.perf_counter()
        engine.ingest(data)
        merged = engine.finish()
        elapsed = time.perf_counter() - start
    return merged, elapsed
