"""Shared-memory chunk buffers: the zero-pickle ingest hot path.

The sharded ingest engine moves stream chunks from the parent to its
workers through fixed-size :class:`multiprocessing.shared_memory`
segments.  The parent writes a chunk into a free slot with one
``ndarray`` copy; the worker reads it back with one copy and
acknowledges the slot.  The only objects crossing a queue are tiny
``("chunk", slot, count)`` tuples — no element data is ever pickled.

Each worker owns a small pool of slots (:data:`SLOTS_PER_WORKER`) so the
parent can refill one slot while the worker ingests another (double
buffering).  Slot segments are created by the parent, attached by name
in the worker, and unlinked by the parent on close; :class:`ChunkSlot`
is a thin RAII-ish wrapper over one segment.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List, Optional, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError

#: Default slots per worker; two gives classic double buffering (parent
#: fills slot B while the worker drains slot A).  The engine deepens the
#: pool for fast kernels based on a measured ns/item probe.
SLOTS_PER_WORKER = 2

#: Ceiling for probe-sized pools: deep enough that a cheap ``extend``
#: kernel never starves between ack round trips, small enough that the
#: shared-memory footprint stays ``O(workers * chunk_size)``.
MAX_SLOTS_PER_WORKER = 8


class ChunkSlot:
    """One fixed-capacity shared-memory chunk buffer.

    Args:
        capacity: maximum elements the slot holds.
        dtype: element dtype (fixed for the slot's lifetime).
        name: attach to an existing segment with this name; ``None``
            creates a fresh segment.
    """

    def __init__(
        self, capacity: int, dtype: np.dtype, name: Optional[str] = None
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"capacity must be >= 1, got {capacity!r}"
            )
        self.capacity = capacity
        self.dtype = np.dtype(dtype)
        nbytes = self.capacity * self.dtype.itemsize
        if name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
        self._view = np.ndarray(
            (capacity,), dtype=self.dtype, buffer=self._shm.buf
        )

    @property
    def name(self) -> str:
        """The segment name (pass to a worker to attach)."""
        return self._shm.name

    def write(self, values: np.ndarray) -> int:
        """Copy ``values`` into the slot; returns the element count."""
        count = len(values)
        if count > self.capacity:
            raise InvalidParameterError(
                f"chunk of {count} elements exceeds slot capacity "
                f"{self.capacity}"
            )
        self._view[:count] = values
        return count

    def read(self, count: int) -> np.ndarray:
        """Copy the first ``count`` elements out of the slot.

        The copy detaches the returned array from the shared segment so
        the slot can be acknowledged (and refilled by the parent) before
        the elements are ingested.
        """
        if not (0 <= count <= self.capacity):
            raise InvalidParameterError(
                f"count {count!r} outside slot capacity {self.capacity}"
            )
        return np.array(self._view[:count], copy=True)

    def close(self) -> None:
        """Detach from the segment (both sides)."""
        del self._view
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator side only)."""
        if self._owner:
            self._shm.unlink()


def create_slot_pool(
    workers: int, slots_per_worker: int, capacity: int, dtype: np.dtype
) -> List[List[ChunkSlot]]:
    """Create ``workers`` pools of fresh slots (parent side)."""
    return [
        [ChunkSlot(capacity, dtype) for _ in range(slots_per_worker)]
        for _ in range(workers)
    ]


def attach_slots(
    names: Sequence[str], capacity: int, dtype: np.dtype
) -> List[ChunkSlot]:
    """Attach to existing slots by name (worker side)."""
    return [ChunkSlot(capacity, dtype, name=name) for name in names]
