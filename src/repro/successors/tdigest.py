"""t-digest — Dunning's centroid sketch, the other industrial successor.

Where the paper's algorithms bound *rank* error uniformly, the t-digest
(Dunning & Ertl) targets *relative* accuracy at the tails: it clusters
values into centroids whose maximum weight shrinks near ``q = 0`` and
``q = 1`` under a scale function, so p99.9 estimates stay sharp while
the middle of the distribution is summarized coarsely.  It returns
interpolated values (not stream elements), trading the comparison-model
contract for smoothness — a design point the paper's taxonomy (Section
1.1) excludes, which is exactly why it is interesting to compare.

This is the *merging* t-digest: incoming points buffer, and a flush
merge-sorts buffer plus centroids and re-clusters greedily under the
``k1`` scale function ``k(q) = (delta / 2 pi) asin(2q - 1)`` — a cluster
may absorb the next point only while its k-size stays below 1.

Accuracy is empirical (no worst-case rank bound — the known t-digest
caveat); the bench against the paper's winners shows where it shines
(extreme tails, tiny memory) and where GK/Random beat it (uniform rank
guarantees).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.base import (
    MergeableSketch,
    QuantileSketch,
    reject_nan,
    validate_phi,
)
from repro.core.errors import (
    CorruptSummaryError,
    EmptySummaryError,
    InvalidParameterError,
    MergeError,
)
from repro.core.registry import register
from repro.core.snapshot import snapshottable


def _k1(q: float, delta: float) -> float:
    """The k1 scale function: tail-emphasizing cluster sizing."""
    q = min(1.0, max(0.0, q))
    return (delta / (2.0 * math.pi)) * math.asin(2.0 * q - 1.0)


def _cluster(
    merged: List[Tuple[float, int]], delta: float
) -> List[Tuple[float, int]]:
    """Greedy left-to-right re-clustering under the k1 scale function.

    ``merged`` is a sorted list of (mean, count) pairs; adjacent pairs
    coalesce while the open cluster's k-size stays below 1.
    """
    total = sum(count for _mean, count in merged)
    out: List[Tuple[float, int]] = []
    cum = 0  # weight before the open cluster
    open_mean, open_count = merged[0]
    k_lo = _k1(0.0, delta)
    for mean, count in merged[1:]:
        q_hi = (cum + open_count + count) / total
        if _k1(q_hi, delta) - k_lo < 1.0:
            open_mean = (
                open_mean * open_count + mean * count
            ) / (open_count + count)
            open_count += count
        else:
            out.append((open_mean, open_count))
            cum += open_count
            k_lo = _k1(cum / total, delta)
            open_mean, open_count = mean, count
    out.append((open_mean, open_count))
    return out


@snapshottable("tdigest")
@register("tdigest")
class TDigest(QuantileSketch, MergeableSketch):
    """Merging t-digest.

    Args:
        delta: compression parameter; ~``delta`` centroids are kept and
            mid-distribution rank error is roughly ``1 / delta``.
        eps: registry-uniform alternative to ``delta``: when ``delta`` is
            not given, ``delta = max(10, 2 / eps)`` targets a comparable
            mid-distribution rank error.
        buffer_size: points accumulated between merges (default
            ``10 * delta``).
    """

    name = "TDigest"
    deterministic = False  # centroid layout depends on arrival order
    comparison_based = False  # interpolates: may return unseen values
    mergeable = True

    def __init__(
        self,
        delta: Optional[float] = None,
        eps: Optional[float] = None,
        buffer_size: Optional[int] = None,
    ) -> None:
        if delta is None:
            delta = 100.0 if eps is None else max(10.0, 2.0 / eps)
        if delta < 10:
            raise InvalidParameterError(f"delta must be >= 10, got {delta!r}")
        self.delta = float(delta)
        self.buffer_size = buffer_size or int(10 * delta)
        self._centroids: List[Tuple[float, int]] = []  # (mean, count)
        self._buffer: List[float] = []
        self._n = 0
        self._min = math.inf
        self._max = -math.inf

    @property
    def n(self) -> int:
        return self._n

    def update(self, value) -> None:
        value = float(value)
        reject_nan(value)
        self._buffer.append(value)
        self._n += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._buffer) >= self.buffer_size:
            self._flush()

    def extend(self, values) -> None:
        for value in values:
            self.update(value)

    def _flush(self) -> None:
        """Merge buffered points and existing centroids, re-clustering
        greedily under the scale function."""
        if not self._buffer:
            return
        incoming = [(float(v), 1) for v in self._buffer]
        merged = sorted(self._centroids + incoming)
        self._buffer = []
        self._centroids = _cluster(merged, self.delta)

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------

    def rank(self, value) -> float:
        """Interpolated rank estimate of ``value``."""
        self._flush()
        value = float(value)
        if not self._centroids or value <= self._min:
            return 0.0
        if value > self._max:
            return float(self._n)
        cum = 0.0
        prev_mean, prev_count = None, 0
        for mean, count in self._centroids:
            if value < mean:
                if prev_mean is None:
                    # Between the minimum and the first centroid.
                    span = mean - self._min
                    frac = (value - self._min) / span if span > 0 else 0.0
                    return frac * count / 2.0
                span = mean - prev_mean
                frac = (value - prev_mean) / span if span > 0 else 1.0
                return cum - prev_count / 2.0 + frac * (
                    prev_count + count
                ) / 2.0
            cum += count
            prev_mean, prev_count = mean, count
        # Between the last centroid and the maximum.
        span = self._max - prev_mean
        frac = (value - prev_mean) / span if span > 0 else 1.0
        return cum - prev_count / 2.0 + frac * prev_count / 2.0 + 0.0

    def query(self, phi: float) -> float:
        """Interpolated ``phi``-quantile (may not be a stream element)."""
        validate_phi(phi)
        self._flush()
        if self._n <= 0:
            raise EmptySummaryError("TDigest: cannot query empty summary")
        target = phi * self._n
        cum = 0.0
        prev_mean: Optional[float] = None
        prev_mid = 0.0
        for mean, count in self._centroids:
            mid = cum + count / 2.0
            if target < mid:
                if prev_mean is None:
                    span = mean - self._min
                    return self._min + span * (target / mid if mid else 0)
                frac = (target - prev_mid) / (mid - prev_mid)
                return prev_mean + frac * (mean - prev_mean)
            cum += count
            prev_mean, prev_mid = mean, mid
        span = self._max - (prev_mean if prev_mean is not None else self._min)
        denom = self._n - prev_mid
        frac = (target - prev_mid) / denom if denom > 0 else 1.0
        base = prev_mean if prev_mean is not None else self._min
        return base + span * min(1.0, max(0.0, frac))

    def merge(self, other: "TDigest") -> None:
        """Fold another t-digest (same delta) into this one."""
        if not isinstance(other, TDigest):
            raise MergeError(f"cannot merge TDigest with {type(other)!r}")
        if other.delta != self.delta:
            raise MergeError("cannot merge t-digests with different delta")
        other._flush()
        self._flush()
        combined = sorted(self._centroids + other._centroids)
        if combined:
            self._centroids = _cluster(combined, self.delta)
        self._n += other._n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        other._centroids = []
        other._buffer = []
        other._n = 0

    def centroid_count(self) -> int:
        """Number of live centroids."""
        self._flush()
        return len(self._centroids)

    def validate(self) -> "TDigest":
        """Check the digest's structural invariants; return ``self``.

        Verified: the element count is a non-negative integer, centroid
        means are non-decreasing with positive integer counts, centroid
        counts plus buffered points account for exactly ``n``, and the
        tracked min/max bracket every centroid mean when non-empty.
        Called by :func:`repro.core.snapshot.restore`.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(
                f"TDigest: bad element count {self._n!r}"
            )
        total = 0
        prev_mean = None
        for i, (mean, count) in enumerate(self._centroids):
            if not isinstance(count, int) or count < 1:
                raise CorruptSummaryError(
                    f"TDigest: centroid {i} has count={count!r} < 1"
                )
            if prev_mean is not None and mean < prev_mean:
                raise CorruptSummaryError(
                    f"TDigest: centroid {i} means out of order"
                )
            prev_mean = mean
            total += count
        if total + len(self._buffer) != self._n:
            raise CorruptSummaryError(
                f"TDigest: centroids + buffer account for "
                f"{total + len(self._buffer)} points, expected n={self._n}"
            )
        if self._centroids:
            means = [m for m, _c in self._centroids]
            if means[0] < self._min or means[-1] > self._max:
                raise CorruptSummaryError(
                    "TDigest: centroid means escape the [min, max] bracket"
                )
        return self

    def size_words(self) -> int:
        """Two words per centroid plus the buffer capacity."""
        return 2 * len(self._centroids) + self.buffer_size

    def _require_nonempty(self) -> None:
        if self._n <= 0:
            raise EmptySummaryError("TDigest: cannot query empty summary")
