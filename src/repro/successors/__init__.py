"""Successor and prototype algorithms: the lineage this paper feeds.

KLL (Karnin-Lang-Liberty) descends directly from the paper's ``Random``;
t-digest is the industrial cousin that trades the comparison-model
contract for tail-relative accuracy; SampledGK is a prototype of the
Felber-Ostrovsky flavor, included (as the paper included theirs) to show
why it was excluded.
"""

from repro.successors.kll import KLL
from repro.successors.sampled_gk import SampledGK
from repro.successors.tdigest import TDigest

__all__ = ["KLL", "SampledGK", "TDigest"]
