"""SampledGK — a sample-then-summarize prototype in the spirit of
Felber and Ostrovsky [11].

The paper mentions the FO ``O((1/eps) log(1/eps))``-word randomized
summary, notes its "very substantially large" hidden constant, and
reports that *their own prototype* confirmed it uncompetitive — then
drops it from the study.  We reproduce that judgment call with a
prototype of the same flavor: FO's core engine is running deterministic
(GK-like) summaries over Bernoulli samples whose rate decays as the
stream grows, so the summary size depends only on ``eps``.

Design (an honest simplification, documented as such):

* maintain a GK summary (GKArray, ``eps/3``) over *sampled* elements;
* the sampling rate starts at 1 and halves whenever the expected sample
  size would exceed ``cap = c / eps**2`` (the classic sample bound [28]
  that makes an ``eps/3``-accurate summary of the sample an
  ``eps``-accurate summary of the stream w.h.p.);
* halving the rate retroactively thins the *current summary* by
  rebuilding it from a coin-filtered pass over its stored tuples —
  an O(summary) operation, amortized over the doubling schedule;
* ranks scale by ``1 / rate``.

The point of including it: the bench shows exactly what the paper found
— the ``1/eps**2`` sample cap makes it strictly dominated by ``Random``
at practical ``eps``, because sampling alone already costs more than
Random's entire budget.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cash_register.gk_array import GKArray
from repro.core.base import (
    QuantileSketch,
    reject_nan,
    validate_eps,
    validate_phi,
)
from repro.core.errors import CorruptSummaryError, InvalidParameterError
from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.sketches.hashing import make_rng


@snapshottable("sampled_gk")
@register("sampled_gk")
class SampledGK(QuantileSketch):
    """GK over a decaying Bernoulli sample (FO-flavored prototype).

    Args:
        eps: target rank error for the full stream.
        seed: sampling randomness.
        sample_factor: ``c`` in the sample cap ``c / eps**2`` (smaller is
            cheaper and riskier; default 2.0 keeps the constant-probability
            guarantee empirically intact on the paper's workloads).
    """

    name = "SampledGK"
    deterministic = False
    comparison_based = True

    def __init__(
        self,
        eps: float,
        seed: Optional[int] = None,
        sample_factor: float = 2.0,
    ) -> None:
        self.eps = validate_eps(eps)
        if sample_factor <= 0:
            raise InvalidParameterError(
                f"sample_factor must be positive, got {sample_factor!r}"
            )
        self._rng = make_rng(seed)
        self.cap = max(64, math.ceil(sample_factor / self.eps**2))
        self._summary = GKArray(eps=self.eps / 3.0)
        self._rate_log2 = 0  # sampling probability is 2**-rate_log2
        self._n = 0

    @property
    def n(self) -> int:
        return self._n

    @property
    def sampling_rate(self) -> float:
        return 2.0**-self._rate_log2

    def update(self, value) -> None:
        reject_nan(value)
        self._n += 1
        if self._rate_log2 == 0 or int(
            self._rng.integers(0, 1 << self._rate_log2)
        ) == 0:
            self._summary.update(value)
        if self._summary.n > self.cap:
            self._halve()

    def extend(self, values) -> None:
        for value in values:
            self.update(value)

    def _halve(self) -> None:
        """Halve the sampling rate, thinning the current summary.

        Rebuilds the GK summary from its stored tuples, keeping each
        tuple's value with probability proportional to its ``g`` weight
        under a fair coin per represented element — the cheap (and
        slightly lossy) retro-thinning that keeps this a prototype
        rather than the full FO machinery.
        """
        self._rate_log2 += 1
        old = self._summary
        old._prepare_query()
        rebuilt = GKArray(eps=self.eps / 3.0)
        for value, g, _delta in zip(old._values, old._gs, old._deltas):
            keep = int(self._rng.binomial(g, 0.5))
            for _ in range(keep):
                rebuilt.update(value)
        self._summary = rebuilt

    def rank(self, value) -> float:
        return self._summary.rank(value) * (1 << self._rate_log2)

    def query(self, phi: float):
        validate_phi(phi)
        self._require_nonempty()
        return self._summary.query(phi)

    def query_batch(self, phis) -> list:
        for phi in phis:
            validate_phi(phi)
        self._require_nonempty()
        return self._summary.query_batch(phis)

    def validate(self) -> "SampledGK":
        """Check the prototype's structural invariants; return ``self``.

        Verified: the element count is a non-negative integer at least
        as large as the sample the inner summary covers, the sampling
        rate exponent is a non-negative integer, and the inner GK
        summary passes its own :meth:`~GKArray.validate` (band/gap
        invariants).  Called by :func:`repro.core.snapshot.restore`.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(
                f"SampledGK: bad element count {self._n!r}"
            )
        if not isinstance(self._rate_log2, int) or self._rate_log2 < 0:
            raise CorruptSummaryError(
                f"SampledGK: bad rate exponent {self._rate_log2!r}"
            )
        if self._summary.n > self._n:
            raise CorruptSummaryError(
                f"SampledGK: inner summary covers {self._summary.n} "
                f"samples from a stream of only {self._n}"
            )
        self._summary.validate()
        return self

    def size_words(self) -> int:
        """Summary words plus rate/counter bookkeeping."""
        return self._summary.size_words() + 2
