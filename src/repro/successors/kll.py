"""KLL — the Karnin–Lang–Liberty sketch (FOCS 2016), the direct
successor of this paper's ``Random`` algorithm.

The experimental study's ``Random`` (and the mergeable-summary line it
simplifies) is the ancestor: KLL keeps the same primitive — a sorted
buffer compacted by keeping odd or even positions with a coin — but lets
buffer capacities *shrink geometrically* with height instead of staying
uniform.  Elements at level ``h`` weigh ``2**h``; the top few compactors
hold ``~k`` elements, lower ones ``k * c**depth`` (``c = 2/3`` in the
paper), and the total space is ``O(k)`` versus Random's ``b * s`` —
yielding the first ``O((1/eps) sqrt(log(1/eps)))``-ish space with the
same coin-flip machinery.  Including it here closes the historical loop
the calibration literature draws from this paper to the DataSketches
implementations.

This is a faithful single-sketch KLL (no sampler level): geometric
capacities with a floor of 2, lazy compaction of the lowest over-full
level, weighted rank estimation, and mergeability by compactor-wise
concatenation followed by re-compaction.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.base import (
    MergeableSketch,
    QuantileSketch,
    reject_nan,
    to_element_array,
    validate_eps,
    validate_phi,
)
from repro.core.errors import (
    CorruptSummaryError,
    InvalidParameterError,
    MergeError,
)
from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.core.weighted import weighted_query_batch
from repro.sketches.hashing import make_rng


@snapshottable("kll")
@register("kll")
class KLL(QuantileSketch, MergeableSketch):
    """KLL quantile sketch with geometric compactor capacities.

    Args:
        eps: target rank error; sets ``k = ceil(2 / eps)`` (the constant
            comes from the empirical error ``~ 2 / k`` of the c=2/3
            configuration, validated in the test suite).
        k: override the top-compactor capacity directly.
        c: capacity decay per level below the top (paper value 2/3).
        seed: compaction-coin randomness.
    """

    name = "KLL"
    deterministic = False
    comparison_based = True
    mergeable = True

    def __init__(
        self,
        eps: float = 0.01,
        k: Optional[int] = None,
        c: float = 2.0 / 3.0,
        seed: Optional[int] = None,
    ) -> None:
        self.eps = validate_eps(eps)
        if not (0.5 <= c < 1.0):
            raise InvalidParameterError(f"c must be in [0.5, 1), got {c!r}")
        self.k = k if k is not None else max(8, math.ceil(2.0 / self.eps))
        self.c = c
        self._rng = make_rng(seed)
        self._compactors: List[List] = [[]]
        self._n = 0

    # ------------------------------------------------------------------
    # update path
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    def _capacity(self, level: int) -> int:
        """Capacity of the compactor at ``level`` (0 = raw elements)."""
        depth = len(self._compactors) - 1 - level
        return max(2, math.ceil(self.k * (self.c**depth)))

    def _total_capacity(self) -> int:
        return sum(
            self._capacity(level) for level in range(len(self._compactors))
        )

    def update(self, value) -> None:
        reject_nan(value)
        self._compactors[0].append(value)
        self._n += 1
        if sum(len(comp) for comp in self._compactors) > \
                self._total_capacity():
            self._compact()

    def extend(self, values) -> None:
        """Bulk insert: fill the bottom compactor in chunks.

        Elements land in chunks sized to the remaining total-capacity
        headroom, so compactions fire at exactly the same element
        boundaries (and consume the same coin draws) as elementwise
        feeding — same-seed runs produce bit-identical sketches.
        """
        arr = to_element_array(values)
        if arr.dtype == object:
            for value in arr.tolist():
                self.update(value)
            return
        if arr.dtype.kind == "f" and np.isnan(arr).any():
            from repro.core.errors import InvalidParameterError

            raise InvalidParameterError(
                "NaN cannot be ranked; filter NaNs before summarizing"
            )
        i = 0
        m = len(arr)
        while i < m:
            held = sum(len(comp) for comp in self._compactors)
            room = self._total_capacity() - held + 1  # compact at cap + 1
            take = min(max(1, room), m - i)
            self._compactors[0].extend(arr[i : i + take].tolist())
            self._n += take
            i += take
            if sum(len(comp) for comp in self._compactors) > \
                    self._total_capacity():
                self._compact()

    def _compact(self) -> None:
        """Compact the lowest level exceeding its capacity."""
        for level, comp in enumerate(self._compactors):
            if len(comp) > self._capacity(level):
                break
        else:
            return
        if level + 1 == len(self._compactors):
            self._compactors.append([])
        comp.sort()
        start = int(self._rng.integers(0, 2))
        promoted = comp[start::2]
        self._compactors[level + 1].extend(promoted)
        self._compactors[level] = []

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------

    def _parts(self):
        out = []
        for level, comp in enumerate(self._compactors):
            if comp:
                out.append((np.sort(to_element_array(comp)), 1 << level))
        return out

    def rank(self, value) -> float:
        total = 0.0
        for items, weight in self._parts():
            total += weight * float(np.searchsorted(items, value, "left"))
        return total

    def query(self, phi: float):
        """Scalar reference path: the full argmin over the snapshot."""
        validate_phi(phi)
        self._require_nonempty()
        parts = self._parts()
        values = np.concatenate([items for items, _ in parts])
        weights = np.concatenate(
            [np.full(len(items), w, dtype=np.float64) for items, w in parts]
        )
        order = np.argsort(values, kind="mergesort")
        values = values[order]
        cum = np.concatenate([[0.0], np.cumsum(weights[order])[:-1]])
        return values[int(np.argmin(np.abs(cum - phi * self._n)))]

    def query_batch(self, phis) -> list:
        """Vectorized multi-quantile extraction over the weighted
        compactor snapshot (bit-identical to looping :meth:`query`)."""
        self._require_nonempty()
        return weighted_query_batch(self._parts(), self._n, phis)

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------

    def merge(self, other: "KLL") -> None:
        """Fold another KLL (same k and c) into this one."""
        if not isinstance(other, KLL):
            raise MergeError(f"cannot merge KLL with {type(other)!r}")
        if (self.k, self.c) != (other.k, other.c):
            raise MergeError("cannot merge KLL sketches with different "
                             "parameters")
        while len(self._compactors) < len(other._compactors):
            self._compactors.append([])
        for level, comp in enumerate(other._compactors):
            self._compactors[level].extend(comp)
        self._n += other._n
        other._compactors = [[]]
        other._n = 0
        while sum(len(c) for c in self._compactors) > \
                self._total_capacity():
            self._compact()

    def compactor_sizes(self) -> List[int]:
        """Current per-level buffer sizes (introspection)."""
        return [len(comp) for comp in self._compactors]

    def validate(self) -> "KLL":
        """Check the sketch's structural invariants; return ``self``.

        Verified: the element count is a non-negative integer, at least
        one compactor exists, an empty sketch holds no elements, and a
        non-empty sketch holds at least one.  The weighted element total
        is *not* compared against ``n``: compacting an odd-sized buffer
        promotes ``ceil(m/2)`` elements at double weight, so the
        represented weight legitimately drifts around ``n`` by design.
        Called by :func:`repro.core.snapshot.restore`.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(f"KLL: bad element count {self._n!r}")
        if not self._compactors:
            raise CorruptSummaryError("KLL: no compactors")
        held = sum(len(comp) for comp in self._compactors)
        if self._n == 0 and held != 0:
            raise CorruptSummaryError("KLL: empty sketch holds elements")
        if self._n > 0 and held == 0:
            raise CorruptSummaryError(
                f"KLL: n={self._n} but every compactor is empty"
            )
        return self

    def size_words(self) -> int:
        """Allocated capacity across compactors (elements, one word)."""
        return self._total_capacity()
