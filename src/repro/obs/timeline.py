"""Chrome-trace / Perfetto export of tracing spans.

``chrome://tracing`` (or https://ui.perfetto.dev) renders the Trace
Event Format: a JSON object with a ``traceEvents`` list of complete
(``"ph": "X"``) events carrying microsecond ``ts``/``dur`` plus
``pid``/``tid`` rows.  This module converts a
:class:`~repro.obs.trace.Tracer`'s events into that format so a
parallel or supervised run can be *seen*: parent spans on the main
row, each worker's spans on its own row, aligned on one timeline.

Alignment works because worker span batches ship a wall-clock anchor
(:meth:`Tracer.export_batch`): ``Tracer.ingest`` re-bases worker
``start_ns`` offsets onto the parent tracer's origin, so by the time
events reach this module they already share a time base.  Rows are
derived per event: the source ``pid`` (stamped by ``ingest``) names the
process, and the ``worker`` label (when present) gives each shard a
distinct ``tid`` row even under the fork start method, where every
worker would otherwise collapse onto the parent's thread.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.trace import Tracer

#: tid of the recording (parent) tracer's own spans.
MAIN_TID = 0


def _row_of(tracer: Tracer, event: Dict[str, Any]) -> tuple:
    """(pid, tid, row name) for one span event."""
    pid = int(event.get("pid", tracer.pid))
    labels = event.get("labels") or {}
    worker = labels.get("worker")
    if worker is None:
        return pid, MAIN_TID, "main"
    try:
        tid = int(worker) + 1
    except (TypeError, ValueError):
        # Stable fallback row for non-integer worker labels (crc32 is
        # deterministic across processes, unlike str hash()).
        import zlib

        tid = 1 + (zlib.crc32(str(worker).encode()) % 1_000_000)
    return pid, tid, f"worker {worker}"


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's spans as a Trace Event Format document (a dict).

    Each span becomes a complete event (``ph: "X"``); ``ts``/``dur``
    are microseconds relative to the tracer's origin.  Metadata events
    name the process and one thread row per (pid, tid) actually seen,
    so the viewer shows "main" / "worker 0" / "worker 1" instead of
    bare ids.  The document also records ``dropped_spans`` so a
    truncated trace is visibly incomplete.
    """
    trace_events: List[Dict[str, Any]] = []
    rows: Dict[tuple, str] = {}
    for event in tracer.events:
        pid, tid, row_name = _row_of(tracer, event)
        rows.setdefault((pid, tid), row_name)
        labels = dict(event.get("labels") or {})
        args: Dict[str, Any] = {"depth": event.get("depth", 0)}
        args.update(labels)
        trace_events.append(
            {
                "name": event.get("name", "span"),
                "cat": str(event.get("name", "span")).split(".", 1)[0],
                "ph": "X",
                "ts": int(event.get("start_ns", 0)) / 1000.0,
                "dur": int(event.get("duration_ns", 0)) / 1000.0,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    metadata: List[Dict[str, Any]] = []
    pids = sorted({pid for pid, _tid in rows})
    for pid in pids:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": "repro" if pid == tracer.pid else "repro worker"
                },
            }
        )
    for (pid, tid), row_name in sorted(rows.items()):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": row_name},
            }
        )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "origin_unix_ns": tracer.origin_unix_ns,
            "dropped_spans": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: Tracer, path) -> int:
    """Write the Chrome-trace JSON to ``path``; returns the span count.

    Load the file in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    document = to_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    return len(tracer.events)
