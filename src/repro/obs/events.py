"""Structured event log with a bounded flight-recorder ring.

Metrics aggregate, spans time — neither answers "*what happened*, in
order, just before the run degraded?".  This module keeps a bounded
ring of structured events (a ``deque`` — old events age out, recent
history survives) and, when a *degrade* event lands (supervisor
restart/abandon/hang, WAL torn-tail repair, checkpoint fallback, chaos
storage damage), dumps the whole ring as a JSONL post-mortem artifact.
Every degraded run leaves evidence; a clean run writes nothing.

Like the metrics recorder and tracer, the flight recorder is a
process-wide singleton that costs one ``None`` check when disabled:

    from repro.obs import events as obs_events

    obs_events.enable_flight("artifacts/flight")   # dump dir optional
    obs_events.record_event("supervisor.restart", worker=3, reason="died")

Event kinds follow the metric naming convention
(``<subsystem>.<what>``); the set of degrade kinds that trigger a dump
is :data:`DEGRADE_KINDS`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from repro.core.errors import InvalidParameterError

#: Event kinds that mean the run degraded: each one triggers a flight
#: dump (when a dump directory is configured) so the ring around the
#: moment of damage is preserved.
DEGRADE_KINDS = frozenset(
    {
        "supervisor.restart",
        "supervisor.abandon",
        "supervisor.hung",
        "wal.torn_tail",
        "checkpoint.fallback",
        "chaos.storage_fault",
    }
)


class EventLog:
    """A bounded ring of structured events.

    Args:
        max_events: ring capacity; the oldest events age out (counted in
            :attr:`evicted`) so a long run keeps recent history in
            constant memory.
        clock: unix-seconds clock, injectable for tests.  Timestamps are
            observational (post-mortems need real time); they feed no
            algorithm.
    """

    def __init__(self, max_events: int = 4096, clock=None) -> None:
        if max_events < 1:
            raise InvalidParameterError(
                f"max_events must be >= 1, got {max_events!r}"
            )
        self.max_events = max_events
        self._clock = clock if clock is not None else time.time  # replint: disable=REP001
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=max_events)
        self.seq = 0
        self.evicted = 0
        # The /flight endpoint reads the ring from the telemetry server
        # thread while engine/daemon threads emit; the lock makes each
        # emit and each read atomic (iterating a deque that another
        # thread is appending to raises RuntimeError).
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the stored record."""
        event: Dict[str, Any] = {
            "seq": self.seq,
            "unix_s": round(float(self._clock()), 6),
            "kind": kind,
        }
        event.update(fields)
        with self._lock:
            event["seq"] = self.seq
            if len(self._ring) == self.max_events:
                self.evicted += 1
            self._ring.append(event)
            self.seq += 1
        return event

    def events(self, tail: Optional[int] = None) -> List[Dict[str, Any]]:
        """The ring's contents oldest-first (last ``tail`` when given)."""
        with self._lock:
            items = list(self._ring)
        if tail is not None:
            items = items[-tail:]
        return items

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest first."""
        with self._lock:
            events = list(self._ring)
        return "\n".join(json.dumps(event) for event in events)

    def __len__(self) -> int:
        return len(self._ring)


class FlightRecorder:
    """An :class:`EventLog` that dumps itself when the run degrades.

    Args:
        directory: where dump files go; ``None`` records the ring but
            never writes (the ``/flight`` endpoint can still read it).
        max_events: ring capacity.
        degrade_kinds: event kinds that trigger a dump.
        clock: forwarded to the :class:`EventLog`.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_events: int = 4096,
        degrade_kinds: frozenset = DEGRADE_KINDS,
        clock=None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.degrade_kinds = degrade_kinds
        self.log = EventLog(max_events=max_events, clock=clock)
        self.dumps = 0
        #: Paths of the dump files written so far, in order.
        self.dump_paths: List[Path] = []

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; degrade kinds also dump the ring."""
        from repro.obs import metrics as obs_metrics

        evicted_before = self.log.evicted
        event = self.log.emit(kind, **fields)
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("flight.events", 1)
            if self.log.evicted > evicted_before:
                rec.inc("flight.dropped", self.log.evicted - evicted_before)
        if kind in self.degrade_kinds and self.directory is not None:
            self.dump(reason=kind)
        return event

    def dump(self, reason: str = "manual") -> Optional[Path]:
        """Write the ring as JSONL into the dump directory."""
        if self.directory is None:
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        safe = reason.replace("/", "_").replace(".", "-")
        path = self.directory / f"flight-{self.dumps:03d}-{safe}.jsonl"
        text = self.log.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        self.dumps += 1
        self.dump_paths.append(path)
        from repro.obs import metrics as obs_metrics

        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("flight.dumps", 1)
        return path


_flight: Optional[FlightRecorder] = None


def flight() -> Optional[FlightRecorder]:
    """The active flight recorder, or None when disabled."""
    return _flight


def enable_flight(
    directory: Optional[Union[str, Path]] = None,
    max_events: int = 4096,
    instance: Optional[FlightRecorder] = None,
) -> FlightRecorder:
    """Install (and return) the process-wide flight recorder.

    Pass ``instance`` to install a pre-built recorder (tests); otherwise
    a fresh one is created with ``directory``/``max_events``.
    """
    global _flight
    if instance is not None:
        if not isinstance(instance, FlightRecorder):
            raise InvalidParameterError(
                f"expected a FlightRecorder, got {type(instance).__name__}"
            )
        _flight = instance
    else:
        _flight = FlightRecorder(directory=directory, max_events=max_events)
    return _flight


def disable_flight() -> None:
    """Uninstall the flight recorder: events revert to no-ops."""
    global _flight
    _flight = None


def record_event(kind: str, **fields: Any) -> None:
    """Record a structured event into the active flight recorder.

    A no-op (one module-global ``None`` check) when no recorder is
    installed — instrumented call sites need no guard of their own.
    """
    active = _flight
    if active is not None:
        active.record(kind, **fields)
