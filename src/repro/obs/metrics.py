"""A process-local metrics registry: counters, gauges, histograms.

The paper's whole contribution is *measurement*, yet end-of-run
aggregates cannot explain behaviour dominated by rare expensive
operations — a GKArray flush, a q-digest COMPRESS, a burst of
retransmissions.  This module provides the substrate every subsystem
records into:

* :class:`Counter` — a monotonically increasing total (events, words).
* :class:`Gauge` — a point-in-time value (live tuples, simulated clock).
* :class:`Histogram` — a distribution over fixed log-scale (power-of-2)
  buckets, no dependencies, O(1) per observation.

Instruments are addressed by ``name`` plus optional ``labels`` (kwargs);
the same ``(name, labels)`` pair always returns the same instrument.
Names follow ``<subsystem>.<component>.<metric>`` with the subsystem
matching the package that emits it (``cash_register``, ``sketches``,
``distributed``, ``evaluation``), and duration histograms end in a unit
suffix (``_ns``).

Instrumentation must cost nothing when nobody is looking.  The module
keeps one process-wide recorder, defaulting to :data:`NULL_RECORDER`
whose methods are all no-ops — a call site pays one global lookup and
one no-op method call, and call sites on hot paths additionally guard on
``recorder().enabled`` so they skip even argument construction.  Enable
collection with :func:`enable` (or the :func:`collecting` context
manager) and read the active recorder back with :func:`recorder`.
"""

from __future__ import annotations

import bisect
import contextlib
import math
import threading
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import InvalidParameterError

LabelItems = Tuple[Tuple[str, object], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount!r})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount


class Histogram:
    """A distribution over fixed log-scale buckets.

    Bucket ``i`` counts observations ``v <= 2**i`` (the first bucket
    catches everything at or below 1, an overflow bucket everything above
    ``2**40``).  Powers of two keep the mapping a single ``bisect`` with
    no per-histogram configuration, and 41 buckets span a nanosecond to
    ~18 minutes — wide enough for any duration or size this library
    observes.
    """

    kind = "histogram"
    #: Upper bounds of the regular buckets: 2**0 .. 2**40.
    BOUNDS: Tuple[float, ...] = tuple(float(1 << i) for i in range(41))

    __slots__ = ("name", "labels", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.buckets: List[int] = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value) -> None:
        """Record one observation (any real number; <= 1 lands in the
        first bucket, > 2**40 in the overflow bucket)."""
        value = float(value)
        self.buckets[bisect.bisect_left(self.BOUNDS, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the buckets (geometric bucket
        midpoint, clamped to the observed min/max)."""
        if not (0.0 <= q <= 1.0):
            raise InvalidParameterError(f"q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        for i, c in enumerate(self.buckets):
            cum += c
            if cum >= target and c:
                hi = self.BOUNDS[i] if i < len(self.BOUNDS) else self.max
                lo = self.BOUNDS[i - 1] if i > 0 else min(self.min, hi)
                mid = math.sqrt(max(lo, 1e-12) * max(hi, 1e-12))
                return min(max(mid, self.min), self.max)
        return self.max


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


def _kind_class(kind: str) -> type:
    """Instrument class for a ``DEFAULT_INSTRUMENTS`` kind string.

    ``"summary"`` resolves lazily: :mod:`repro.obs.latency` imports this
    module (and the KLL sketch), so the import must not run at module
    load time.
    """
    if kind == "summary":
        from repro.obs.latency import Summary

        return Summary
    return _KINDS[kind]


class MetricsRegistry:
    """Process-local store of instruments, keyed by name + labels.

    ``counter``/``gauge``/``histogram`` get-or-create; asking for an
    existing name with a different kind raises (one name, one kind — the
    Prometheus rule).  The convenience one-liners ``inc``/``set``/
    ``observe`` are what instrumented code calls.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}
        self._kind_of: Dict[str, type] = {}
        # Guards *structural* mutation only — instrument creation,
        # clear(), and whole-registry iteration.  The telemetry server
        # thread scrapes while the engine/daemon threads record; without
        # this, a scrape racing a first-touch `inc` can observe the
        # instruments dict mid-resize.  The hot path (recording into an
        # existing instrument) takes no lock: the dict read is atomic
        # under the GIL and instruments mutate only their own state.
        self._lock = threading.Lock()

    def _get(self, cls: type, name: str, labels: Dict[str, object]):
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(key)
                if inst is None:
                    seen = self._kind_of.get(name)
                    if seen is not None and seen is not cls:
                        raise InvalidParameterError(
                            f"metric {name!r} already registered as "
                            f"{seen.kind}, requested as {cls.kind}"
                        )
                    self._kind_of[name] = cls
                    inst = cls(name, key[1])
                    self._instruments[key] = inst
        if type(inst) is not cls:
            raise InvalidParameterError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"requested as {cls.kind}"
            )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def summary(self, name: str, **labels):
        """Get-or-create a KLL-backed latency summary (see
        :mod:`repro.obs.latency`)."""
        return self._get(_kind_class("summary"), name, labels)

    def inc(self, name: str, amount=1, **labels) -> None:
        self._get(Counter, name, labels).inc(amount)

    def set(self, name: str, value, **labels) -> None:
        self._get(Gauge, name, labels).set(value)

    def observe(self, name: str, value, **labels) -> None:
        self._get(Histogram, name, labels).observe(value)

    def get(self, name: str, **labels):
        """The instrument at ``(name, labels)``, or None if never touched."""
        return self._instruments.get((name, _label_key(labels)))

    def instruments(self) -> Iterator[object]:
        """All instruments, sorted by (name, labels) for stable export.

        Snapshots the key set under the lock so a scrape from the
        telemetry thread never iterates a dict another thread is
        growing.
        """
        with self._lock:
            items = sorted(
                self._instruments.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
            )
        for _key, inst in items:
            yield inst

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready dump of every instrument (see also obs.export)."""
        out: List[Dict[str, object]] = []
        for inst in self.instruments():
            entry: Dict[str, object] = {
                "name": inst.name,
                "kind": inst.kind,
                "labels": dict(inst.labels),
            }
            if isinstance(inst, Histogram):
                entry.update(
                    count=inst.count,
                    sum=inst.total,
                    mean=inst.mean,
                    min=inst.min if inst.count else 0.0,
                    max=inst.max if inst.count else 0.0,
                    p50=inst.quantile(0.5),
                    p99=inst.quantile(0.99),
                )
            elif inst.kind == "summary":
                entry.update(
                    count=inst.count,
                    sum=inst.total,
                    mean=inst.mean,
                    p50=inst.quantile(0.5),
                    p90=inst.quantile(0.9),
                    p99=inst.quantile(0.99),
                    p999=inst.quantile(0.999),
                )
            else:
                entry["value"] = inst.value
            out.append(entry)
        return out

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._kind_of.clear()

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """Accepts every mutation and does nothing."""

    kind = "null"
    name = ""
    labels: LabelItems = ()
    value = 0

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Instrumented call sites either call straight through (rare paths) or
    check :attr:`enabled` first (hot paths); both cost a dict lookup and
    at most one no-op call.
    """

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def summary(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount=1, **labels) -> None:
        pass

    def set(self, name: str, value, **labels) -> None:
        pass

    def observe(self, name: str, value, **labels) -> None:
        pass

    def get(self, name: str, **labels) -> None:
        return None

    def snapshot(self) -> List[Dict[str, object]]:
        return []


#: The process-wide default recorder; all instrumentation is a no-op
#: until :func:`enable` swaps in a real :class:`MetricsRegistry`.
NULL_RECORDER = NullRecorder()

_recorder = NULL_RECORDER


def recorder():
    """The active recorder: a :class:`MetricsRegistry` when collection is
    enabled, :data:`NULL_RECORDER` otherwise."""
    return _recorder


#: Instrument families declared up front on :func:`enable` so exports
#: never have holes: a run that exercises no distributed code still
#: reports the distributed families at zero (the Prometheus convention).
DEFAULT_INSTRUMENTS: Tuple[Tuple[str, str], ...] = (
    ("counter", "cash_register.buffer_flush"),
    ("counter", "cash_register.buffer_seal"),
    ("counter", "cash_register.collapse"),
    ("counter", "cash_register.compactions"),
    ("counter", "cash_register.compress"),
    ("counter", "cash_register.pruned_tuples"),
    ("gauge", "cash_register.buffers"),
    ("gauge", "cash_register.tuples"),
    ("histogram", "cash_register.flush_ns"),
    ("histogram", "cash_register.compress_ns"),
    ("counter", "sketches.hash_evals"),
    ("counter", "sketches.row_updates"),
    ("counter", "sketches.rank_evals"),
    ("histogram", "sketches.query_ns"),
    ("counter", "distributed.net.words_sent"),
    ("counter", "distributed.net.messages_sent"),
    ("counter", "distributed.net.retransmitted_words"),
    ("counter", "distributed.net.retransmissions"),
    ("counter", "distributed.net.acks_sent"),
    ("counter", "distributed.net.drops"),
    ("counter", "distributed.net.duplicates_suppressed"),
    ("counter", "distributed.net.corruptions_detected"),
    ("counter", "distributed.net.backoff_wait_s"),
    ("gauge", "distributed.net.sites"),
    ("gauge", "distributed.net.sim_clock_s"),
    ("histogram", "distributed.net.transmit_attempts"),
    ("counter", "distributed.monitoring.sync.words"),
    ("counter", "distributed.monitoring.sync.messages"),
    ("counter", "distributed.monitoring.sync.rounds"),
    ("gauge", "distributed.monitoring.known_n"),
    ("counter", "parallel.chunks"),
    ("counter", "parallel.elements"),
    ("counter", "parallel.merges"),
    ("counter", "parallel.acks"),
    ("counter", "parallel.acked_slots"),
    ("gauge", "parallel.workers"),
    ("gauge", "parallel.slots_per_worker"),
    ("histogram", "parallel.ingest_ns"),
    ("histogram", "parallel.merge_ns"),
    ("counter", "hashplan.cache.hits"),
    ("counter", "hashplan.cache.misses"),
    ("counter", "hashplan.cache.evictions"),
    ("counter", "evaluation.updates"),
    ("counter", "evaluation.runs"),
    ("gauge", "evaluation.stream.n"),
    ("histogram", "evaluation.phase_ns"),
    ("histogram", "evaluation.chunk_update_ns"),
    ("counter", "durability.wal.appends"),
    ("counter", "durability.wal.bytes"),
    ("counter", "durability.wal.fsyncs"),
    ("counter", "durability.wal.rotations"),
    ("counter", "durability.wal.torn_tails"),
    ("counter", "durability.wal.pruned_segments"),
    ("counter", "durability.wal.replayed_batches"),
    ("histogram", "durability.wal.append_ns"),
    ("counter", "durability.checkpoint.saved"),
    ("counter", "durability.checkpoint.corrupt_skipped"),
    ("counter", "durability.checkpoint.pruned"),
    ("histogram", "durability.checkpoint.save_ns"),
    ("counter", "durability.recoveries"),
    ("histogram", "durability.recovery_ns"),
    ("counter", "durability.supervisor.restarts"),
    ("counter", "durability.supervisor.abandoned"),
    ("counter", "durability.supervisor.resent_chunks"),
    ("counter", "durability.supervisor.hung_detected"),
    ("gauge", "telemetry.engine.up"),
    ("gauge", "telemetry.server.up"),
    ("counter", "telemetry.server.requests"),
    ("counter", "telemetry.server.errors"),
    ("gauge", "telemetry.shard.alive"),
    ("gauge", "telemetry.shard.abandoned"),
    ("gauge", "telemetry.shard.restarts_remaining"),
    ("gauge", "telemetry.shard.high_water_seq"),
    ("counter", "flight.events"),
    ("counter", "flight.dropped"),
    ("counter", "flight.dumps"),
    ("gauge", "serve.up"),
    ("gauge", "serve.sketches"),
    ("gauge", "serve.epoch"),
    ("counter", "serve.requests"),
    ("counter", "serve.errors"),
    ("counter", "serve.queries"),
    ("counter", "serve.ingested"),
    ("counter", "serve.flushes"),
    ("counter", "serve.snapshots"),
    ("counter", "serve.restores"),
    ("counter", "serve.cache.hits"),
    ("counter", "serve.cache.misses"),
    ("counter", "serve.cache.coalesced"),
    ("counter", "serve.cache.stale_retries"),
    ("counter", "serve.cache.invalidations"),
    ("counter", "serve.cache.evictions"),
    ("gauge", "serve.cache.entries"),
    ("histogram", "serve.flush_ns"),
    ("summary", "latency.chunk_update_ns"),
    ("summary", "latency.ingest_chunk_ns"),
    ("summary", "latency.wal_append_ns"),
    ("summary", "latency.telemetry.request_ns"),
    ("summary", "latency.serve.request_ns"),
    ("summary", "latency.serve.query_ns"),
)


def preregister_defaults(registry: MetricsRegistry) -> None:
    """Create the known instrument families (unlabeled series) at zero."""
    for kind, name in DEFAULT_INSTRUMENTS:
        registry._get(_kind_class(kind), name, {})


#: Compact picklable instrument dump: (kind, name, labels, payload).
InstrumentState = Tuple[str, str, Dict[str, object], Tuple]


def export_state(
    registry: MetricsRegistry, skip_idle: bool = True
) -> List[InstrumentState]:
    """Dump a registry into compact picklable tuples.

    The sharded ingest engine ships each worker's registry back to the
    parent this way (queues carry tuples, never instrument objects).
    ``skip_idle`` drops untouched instruments — preregistered families
    sitting at zero — so the payload only carries real activity.
    """
    out: List[InstrumentState] = []
    for inst in registry.instruments():
        labels = dict(inst.labels)
        payload: Tuple
        if isinstance(inst, Histogram):
            if skip_idle and inst.count == 0:
                continue
            payload = (
                list(inst.buckets), inst.count, inst.total, inst.min,
                inst.max,
            )
        elif inst.kind == "summary":
            if skip_idle and inst.count == 0:
                continue
            payload = inst.export()
        else:
            if skip_idle and inst.value == 0:
                continue
            payload = (inst.value,)
        out.append((inst.kind, inst.name, labels, payload))
    return out


def absorb_state(
    registry: MetricsRegistry,
    state: List[InstrumentState],
    **extra_labels: object,
) -> None:
    """Re-register exported instruments into ``registry``.

    Each incoming series keeps its name and labels plus ``extra_labels``
    (the parent tags worker registries with ``worker=<shard>``), so
    per-worker series stay distinguishable in exports.  Counters and
    histograms *add* into any existing series; gauges overwrite (last
    write wins, as for any gauge).
    """
    for kind, name, labels, payload in state:
        merged = dict(labels)
        merged.update(extra_labels)
        if kind == Counter.kind:
            registry.counter(name, **merged).inc(payload[0])
        elif kind == Gauge.kind:
            registry.gauge(name, **merged).set(payload[0])
        elif kind == Histogram.kind:
            hist = registry.histogram(name, **merged)
            buckets, count, total, low, high = payload
            for i, bucket_count in enumerate(buckets):
                hist.buckets[i] += bucket_count
            hist.count += count
            hist.total += total
            if low < hist.min:
                hist.min = low
            if high > hist.max:
                hist.max = high
        elif kind == "summary":
            registry.summary(name, **merged).absorb(payload)
        else:
            raise InvalidParameterError(
                f"unknown instrument kind {kind!r} in exported state"
            )


def enable(
    registry: Optional[MetricsRegistry] = None, preregister: bool = True
) -> MetricsRegistry:
    """Start collecting into ``registry`` (a fresh one, or the already
    active one, when None) and return it."""
    global _recorder
    if registry is None:
        registry = (
            _recorder
            if isinstance(_recorder, MetricsRegistry)
            else MetricsRegistry()
        )
    elif not isinstance(registry, MetricsRegistry):
        raise InvalidParameterError(
            f"expected a MetricsRegistry, got {type(registry).__name__}"
        )
    if preregister:
        preregister_defaults(registry)
    _recorder = registry
    return registry


def disable() -> None:
    """Stop collecting: instrumentation reverts to no-ops."""
    global _recorder
    _recorder = NULL_RECORDER


@contextlib.contextmanager
def paused():
    """Context manager: suspend collection within the block.

    For calibration probes (e.g. the parallel engine's slot-sizing
    ns/item measurement) whose sketch updates must not pollute the
    run's counters; the previous recorder is restored on exit.
    """
    global _recorder
    previous = _recorder
    _recorder = NULL_RECORDER
    try:
        yield
    finally:
        _recorder = previous


@contextlib.contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None, preregister: bool = True
):
    """Context manager: enable collection, restore the previous recorder
    on exit, yield the registry."""
    global _recorder
    previous = _recorder
    reg = enable(registry, preregister)
    try:
        yield reg
    finally:
        _recorder = previous
