"""Dogfooded latency quantiles: a ``Summary`` instrument backed by the
repo's own KLL sketch.

The log-bucket :class:`~repro.obs.metrics.Histogram` answers quantile
queries with geometric bucket midpoints — fine for dashboards, but a
power-of-two grid puts "p99" anywhere within a 2x band.  The whole
point of the paper's sketches is doing better in small space, so the
telemetry plane records hot-path durations into the repository's own
:class:`~repro.successors.kll.KLL` summaries and exports *true*
p50/p90/p99/p999 as Prometheus ``summary`` quantiles.

:class:`Summary` is a fourth instrument kind next to Counter/Gauge/
Histogram: addressed by ``(name, labels)`` through
``MetricsRegistry.summary(name, **labels)``, preregistered via
``DEFAULT_INSTRUMENTS`` (kind ``"summary"``), shipped across processes
by ``export_state``/``absorb_state`` (worker summaries are *merged*
into the parent's through ``KLL.merge`` — the same mergeability the
sharded engine relies on), and rendered by
:func:`repro.obs.export.to_prometheus` as ``name{quantile="0.99"}`` /
``name_sum`` / ``name_count`` series.

The sketch is seeded deterministically (the instrument measures, it
never decides), so same-run telemetry is reproducible bit for bit.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.core.errors import InvalidParameterError
from repro.core.snapshot import restore, snapshot
from repro.obs.metrics import LabelItems
from repro.successors.kll import KLL

#: Rank-error budget of every latency summary.  eps = 1/256 keeps the
#: sketch a few KB while making "p99" mean p99 +/- 0.4% of rank.
SUMMARY_EPS = 1.0 / 256.0

#: The quantiles every summary exports (the Prometheus convention plus
#: the tail the supervisor actually watches).
EXPORT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99, 0.999)

#: Compact picklable payload: (KLL snapshot envelope, count, total).
SummaryState = Tuple[bytes, int, float]


class Summary:
    """A latency distribution tracked by a KLL sketch.

    Unlike :class:`~repro.obs.metrics.Histogram`'s fixed power-of-two
    buckets, ``quantile(q)`` here carries KLL's rank guarantee: the
    returned value's true rank is within ``SUMMARY_EPS`` of ``q``.
    """

    kind = "summary"
    __slots__ = ("name", "labels", "sketch", "count", "total")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        # Fixed seed: the summary observes durations, it feeds no
        # algorithmic decision, and a fixed seed keeps exports of a
        # deterministic run reproducible.
        self.sketch = KLL(eps=SUMMARY_EPS, seed=0)
        self.count = 0
        self.total = 0.0

    def observe(self, value) -> None:
        """Record one observation (a duration in ns, by convention)."""
        value = float(value)
        self.sketch.update(value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile per the KLL sketch (0 when empty)."""
        if not (0.0 <= q <= 1.0):
            raise InvalidParameterError(f"q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        return float(self.sketch.query(q))

    def quantiles(self, qs) -> List[float]:
        if self.count == 0:
            return [0.0 for _ in qs]
        return [float(v) for v in self.sketch.query_batch(list(qs))]

    # -- cross-process shipping ----------------------------------------

    def export(self) -> SummaryState:
        """Picklable state for ``export_state`` (snapshot envelope)."""
        return (snapshot(self.sketch), self.count, self.total)

    def absorb(self, state: SummaryState) -> None:
        """Merge another summary's exported state into this one.

        Worker latency summaries fold into the parent's through
        ``KLL.merge`` — rank guarantees compose, so the merged p99 is
        still a true quantile over the union of observations.
        """
        blob, count, total = state
        other = restore(blob)
        if not isinstance(other, KLL):
            raise InvalidParameterError(
                f"summary {self.name!r} received a non-KLL payload "
                f"({type(other).__name__})"
            )
        self.sketch.merge(other)
        self.count += count
        self.total += total


class SummaryTimer:
    """Context manager timing a block into a :class:`Summary`."""

    __slots__ = ("_summary", "_start")

    def __init__(self, summary: Summary) -> None:
        self._summary = summary
        self._start = 0

    def __enter__(self) -> "SummaryTimer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._summary.observe(time.perf_counter_ns() - self._start)
        return False


def timed(name: str, **labels):
    """Time a ``with`` block into the active recorder's summary ``name``.

    A no-op (shared null context manager) when collection is disabled,
    following the same contract as :func:`repro.obs.trace.span`.
    """
    from repro.obs import metrics as obs_metrics

    rec = obs_metrics.recorder()
    if not rec.enabled:
        return _NULL_TIMER
    return SummaryTimer(rec.summary(name, **labels))


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def rank_of(sorted_values, value) -> Optional[float]:
    """Fractional rank of ``value`` in ``sorted_values`` (test helper).

    Returns ``rank / n`` with ``rank`` the number of elements ``<=
    value`` — what "the dogfooded p99 agrees within eps" is measured
    against.  ``None`` for an empty sequence.
    """
    n = len(sorted_values)
    if n == 0:
        return None
    import bisect

    return bisect.bisect_right(sorted_values, value) / n
