"""Observability: metrics registry, tracing spans, exposition.

The instrumentation substrate every other package records into, plus
the live telemetry plane: an HTTP exposition server
(:class:`TelemetryServer`), a flight recorder that dumps a JSONL
post-mortem when a run degrades, Chrome-trace timelines, and KLL-backed
latency summaries (the repo's own sketches measuring the repo).  See
``docs/observability.md`` for the API, naming conventions, and measured
overhead of the disabled path.
"""

from repro.obs.events import (
    DEGRADE_KINDS,
    EventLog,
    FlightRecorder,
    disable_flight,
    enable_flight,
    flight,
    record_event,
)
from repro.obs.export import report, to_json, to_prometheus
from repro.obs.latency import Summary, timed
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_RECORDER,
    NullRecorder,
    collecting,
    disable,
    enable,
    preregister_defaults,
    recorder,
)
from repro.obs.server import TelemetryServer
from repro.obs.timeline import to_chrome_trace, write_chrome_trace
from repro.obs.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    span,
    tracer,
)

__all__ = [
    "Counter",
    "DEGRADE_KINDS",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Summary",
    "TelemetryServer",
    "Tracer",
    "collecting",
    "disable",
    "disable_flight",
    "disable_tracing",
    "enable",
    "enable_flight",
    "enable_tracing",
    "flight",
    "preregister_defaults",
    "record_event",
    "recorder",
    "report",
    "span",
    "timed",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "tracer",
    "write_chrome_trace",
]
