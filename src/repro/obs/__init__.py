"""Observability: metrics registry, tracing spans, exposition.

The instrumentation substrate every other package records into.  See
``docs/observability.md`` for the API, naming conventions, and measured
overhead of the disabled path.
"""

from repro.obs.export import report, to_json, to_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_RECORDER,
    NullRecorder,
    collecting,
    disable,
    enable,
    preregister_defaults,
    recorder,
)
from repro.obs.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    span,
    tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Tracer",
    "collecting",
    "disable",
    "disable_tracing",
    "enable",
    "enable_tracing",
    "preregister_defaults",
    "recorder",
    "report",
    "span",
    "to_json",
    "to_prometheus",
    "tracer",
]
