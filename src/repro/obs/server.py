"""Live telemetry exposition: a stdlib HTTP server on a background
thread.

Everything ``repro.obs`` records was, until now, visible only after a
run ended.  :class:`TelemetryServer` makes a *running* ingest — a
supervised parallel run restarting workers, a WAL replay, a chaos
experiment — observable while it happens, with zero dependencies
(``http.server`` only):

========== ==========================================================
endpoint   serves
========== ==========================================================
/metrics   Prometheus text exposition (``export.to_prometheus``),
           including the dogfooded KLL latency summaries
/snapshot  the full registry as JSON (``export.to_json``)
/healthz   liveness JSON fed by the ``telemetry.*`` heartbeat gauges
           the engines maintain: per-shard alive/abandoned flags,
           restart budgets, WAL high-water seqs.  HTTP 200 while
           healthy, 503 once any shard is abandoned (degraded).
/tracez    the most recent tracing spans as JSON
/flight    the flight-recorder ring (recent structured events)
/timeline  the spans as Chrome-trace JSON (open in chrome://tracing)
========== ==========================================================

The server binds ``127.0.0.1`` by default (telemetry is not an ingress
surface), serves each request from a daemon thread
(``ThreadingHTTPServer``), and reads live state — the registry is the
process-wide recorder unless one is injected.  Its own request handling
is dogfooded into ``latency.telemetry.request_ns``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import urlparse

from repro.core.errors import InvalidParameterError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import to_json, to_prometheus

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Spans returned by /tracez (most recent first).
TRACEZ_TAIL = 256


def _shard_health(registry: obs_metrics.MetricsRegistry) -> Dict[str, Any]:
    """Digest the ``telemetry.shard.*`` heartbeat gauges into one view."""
    shards: Dict[str, Dict[str, Any]] = {}
    for inst in registry.instruments():
        if not inst.name.startswith("telemetry.shard."):
            continue
        labels = dict(inst.labels)
        if "worker" not in labels:
            continue  # the preregistered unlabeled family at zero
        field = inst.name.rsplit(".", 1)[1]
        shards.setdefault(str(labels["worker"]), {})[field] = inst.value
    abandoned = [
        worker
        for worker, fields in shards.items()
        if fields.get("abandoned", 0)
    ]
    high_water = [
        fields["high_water_seq"]
        for fields in shards.values()
        if "high_water_seq" in fields
    ]
    return {
        "shards": shards,
        "abandoned": sorted(abandoned),
        "wal_high_water_seq": max(high_water) if high_water else None,
    }


class TelemetryServer:
    """Serve live metrics, health, spans, and flight events over HTTP.

    Args:
        port: TCP port; 0 picks a free one (read it back via ``port``).
        host: bind address (loopback by default).
        registry: metrics registry to expose; ``None`` resolves the
            process-wide recorder *per request*, so a server started
            before ``obs.enable()`` still sees the run's metrics.
        tracer: span source for ``/tracez``/``/timeline``; ``None``
            resolves the active tracer per request.
        flight: flight recorder for ``/flight``; ``None`` resolves the
            active one per request.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[obs_metrics.MetricsRegistry] = None,
        tracer: Optional[obs_trace.Tracer] = None,
        flight: Optional[obs_events.FlightRecorder] = None,
    ) -> None:
        if not (0 <= port <= 65535):
            raise InvalidParameterError(
                f"port must be in [0, 65535], got {port!r}"
            )
        self._requested_port = port
        self.host = host
        self._registry = registry
        self._tracer = tracer
        self._flight = flight
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- live state resolution -----------------------------------------

    def registry(self) -> obs_metrics.MetricsRegistry:
        if self._registry is not None:
            return self._registry
        rec = obs_metrics.recorder()
        if isinstance(rec, obs_metrics.MetricsRegistry):
            return rec
        return obs_metrics.MetricsRegistry()  # empty: nothing collecting

    def tracer(self) -> Optional[obs_trace.Tracer]:
        return self._tracer if self._tracer is not None else obs_trace.tracer()

    def flight(self) -> Optional[obs_events.FlightRecorder]:
        return self._flight if self._flight is not None else obs_events.flight()

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns self."""
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # telemetry must not spam the run's stdout/stderr

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                server._handle(self)

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("telemetry.server.up", 1)
        obs_events.record_event(
            "telemetry.server.start", host=self.host, port=self.port
        )
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("telemetry.server.up", 0)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()

    # -- request handling ----------------------------------------------

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        start = time.perf_counter_ns()
        path = urlparse(request.path).path.rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = to_prometheus(self.registry()).encode("utf-8")
                self._respond(request, 200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/snapshot":
                self._respond_json(request, 200, to_json(self.registry()))
            elif path == "/healthz":
                status, payload = self._healthz()
                self._respond_json(request, status, payload)
            elif path == "/tracez":
                self._respond_json(request, 200, self._tracez())
            elif path == "/flight":
                self._respond_json(request, 200, self._flightz())
            elif path == "/timeline":
                self._respond_json(request, 200, self._timeline())
            else:
                self._respond_json(
                    request,
                    404,
                    {
                        "error": f"unknown path {path!r}",
                        "endpoints": [
                            "/metrics", "/snapshot", "/healthz",
                            "/tracez", "/flight", "/timeline",
                        ],
                    },
                )
                path = "(404)"
        except Exception as exc:  # pragma: no cover - defensive surface
            rec = obs_metrics.recorder()
            if rec.enabled:
                rec.inc("telemetry.server.errors", 1)
            obs_events.record_event(
                "telemetry.server.error",
                error=str(exc),
                type=type(exc).__name__,
            )
            try:
                self._respond_json(request, 500, {"error": str(exc)})
            except OSError:
                pass  # client went away mid-response
            return
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("telemetry.server.requests", 1, endpoint=path)
            rec.summary("latency.telemetry.request_ns").observe(
                time.perf_counter_ns() - start
            )

    def _healthz(self) -> tuple:
        registry = self.registry()
        health = _shard_health(registry)
        engine_up = getattr(
            registry.get("telemetry.engine.up"), "value", 0
        )
        degraded = bool(health["abandoned"])
        payload = {
            "status": "degraded" if degraded else "ok",
            "engine": {"up": int(bool(engine_up))},
            "collecting": isinstance(
                obs_metrics.recorder(), obs_metrics.MetricsRegistry
            ),
            **health,
        }
        return (503 if degraded else 200), payload

    def _tracez(self) -> Dict[str, Any]:
        tracer = self.tracer()
        if tracer is None:
            return {"tracing": False, "spans": [], "dropped": 0}
        events = tracer.events[-TRACEZ_TAIL:]
        return {
            "tracing": True,
            "total_spans": len(tracer.events),
            "dropped": tracer.dropped,
            "spans": list(reversed(events)),
        }

    def _flightz(self) -> Dict[str, Any]:
        flight = self.flight()
        if flight is None:
            return {"recording": False, "events": []}
        return {
            "recording": True,
            "events": flight.log.events(),
            "evicted": flight.log.evicted,
            "dumps": flight.dumps,
            "dump_paths": [str(p) for p in flight.dump_paths],
        }

    def _timeline(self) -> Dict[str, Any]:
        from repro.obs.timeline import to_chrome_trace

        tracer = self.tracer()
        if tracer is None:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return to_chrome_trace(tracer)

    # -- response helpers ----------------------------------------------

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler,
        status: int,
        content_type: str,
        body: bytes,
    ) -> None:
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)

    def _respond_json(
        self,
        request: BaseHTTPRequestHandler,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._respond(request, status, "application/json", body)
