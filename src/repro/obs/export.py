"""Exposition: Prometheus text format, JSON, and a human report table.

Three consumers, three formats:

* :func:`to_prometheus` — the Prometheus text exposition format (names
  sanitized, ``repro_`` prefix, histogram ``_bucket``/``_sum``/
  ``_count`` series with cumulative ``le`` bounds) for scraping.
* :func:`to_json` — a JSON-ready dict for machine pipelines (the CLI's
  ``--json --metrics`` output embeds it).
* :func:`report` — a grouped, aligned table for humans (what
  ``python -m repro --metrics`` prints after a run).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List

from repro.obs.latency import EXPORT_QUANTILES
from repro.obs.metrics import Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and line-feed are the three characters that
    would otherwise terminate or corrupt the ``name="value"`` syntax."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels
    )
    return "{" + inner + "}"


def _num(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text format."""
    lines: List[str] = []
    typed: set = set()
    for inst in registry.instruments():
        name = _prom_name(inst.name)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {inst.kind}")
        if isinstance(inst, Histogram):
            cum = 0
            for bound, count in zip(inst.BOUNDS, inst.buckets):
                cum += count
                le = _prom_labels(tuple(inst.labels) + (("le", _num(bound)),))
                lines.append(f"{name}_bucket{le} {cum}")
            le = _prom_labels(tuple(inst.labels) + (("le", "+Inf"),))
            lines.append(f"{name}_bucket{le} {inst.count}")
            lines.append(
                f"{name}_sum{_prom_labels(inst.labels)} {_num(inst.total)}"
            )
            lines.append(
                f"{name}_count{_prom_labels(inst.labels)} {inst.count}"
            )
        elif inst.kind == "summary":
            # Dogfooded KLL summaries: true quantiles, not bucket
            # midpoints (repro.obs.latency).
            values = inst.quantiles(EXPORT_QUANTILES)
            for q, value in zip(EXPORT_QUANTILES, values):
                qlabel = _prom_labels(
                    tuple(inst.labels) + (("quantile", _num(q)),)
                )
                lines.append(f"{name}{qlabel} {_num(float(value))}")
            lines.append(
                f"{name}_sum{_prom_labels(inst.labels)} {_num(inst.total)}"
            )
            lines.append(
                f"{name}_count{_prom_labels(inst.labels)} {inst.count}"
            )
        else:
            lines.append(
                f"{name}{_prom_labels(inst.labels)} {_num(inst.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: MetricsRegistry) -> Dict[str, object]:
    """A JSON-ready snapshot of the whole registry."""
    return {"metrics": registry.snapshot()}


def _fmt(value) -> str:
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-2:
        return f"{value:.3g}"
    return f"{value:.4g}".rstrip("0").rstrip(".")


def _subsystem(name: str) -> str:
    return name.split(".", 1)[0]


def report(registry: MetricsRegistry, title: str = "metrics report") -> str:
    """A human-readable table, grouped by subsystem (the name's first
    dotted segment), one line per instrument."""
    groups: Dict[str, List[object]] = {}
    for inst in registry.instruments():
        groups.setdefault(_subsystem(inst.name), []).append(inst)
    lines = [title, "=" * len(title)]
    for subsystem in sorted(groups):
        lines.append("")
        lines.append(f"[{subsystem}]")
        for inst in groups[subsystem]:
            labels = " ".join(f"{k}={v}" for k, v in inst.labels) or "-"
            if isinstance(inst, Histogram):
                summary = (
                    f"count={inst.count} mean={_fmt(inst.mean)} "
                    f"p50={_fmt(inst.quantile(0.5))} "
                    f"p99={_fmt(inst.quantile(0.99))} "
                    f"max={_fmt(inst.max if inst.count else 0)}"
                )
            elif inst.kind == "summary":
                summary = (
                    f"count={inst.count} mean={_fmt(inst.mean)} "
                    f"p50={_fmt(inst.quantile(0.5))} "
                    f"p99={_fmt(inst.quantile(0.99))} "
                    f"p999={_fmt(inst.quantile(0.999))}"
                )
            else:
                summary = _fmt(inst.value)
            lines.append(
                f"  {inst.kind:<9} {inst.name:<40} {labels:<24} {summary}"
            )
    return "\n".join(lines)
