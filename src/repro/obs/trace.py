"""Lightweight tracing spans exported as JSONL events.

Metrics answer "how many / how long in aggregate"; traces answer *when*
— which update paid for a compress, how deep the retransmission storm
nested inside one aggregation round.  A span is a ``with`` block::

    from repro.obs import span

    with span("cash_register.flush", algo="GKArray"):
        ...  # timed with perf_counter_ns, nesting tracked

Spans are no-ops (a shared, stateless null context manager) until
:func:`enable_tracing` installs a :class:`Tracer`.  Each completed span
becomes one JSON object — ``name``, ``start_ns`` (relative to tracer
start), ``duration_ns``, ``depth``, ``labels`` — appended to the
tracer's event list and written out as one JSONL line per span by
:meth:`Tracer.write`.  The event buffer is bounded: past ``max_events``
further spans are counted in ``dropped`` instead of stored, so a long
run can never exhaust memory.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Union

from repro.core.errors import InvalidParameterError

#: Picklable span batch a worker ships to its parent: the events plus
#: the wall-clock anchor and pid needed to place them on one timeline.
SpanBatch = Dict[str, Any]


class Tracer:
    """Collects completed spans as JSON-ready event dicts.

    Args:
        max_events: cap on stored events; extra spans increment
            ``dropped`` instead (bounded memory on long runs).
        clock: nanosecond clock, injectable for tests.
    """

    def __init__(self, max_events: int = 100_000, clock=None) -> None:
        if max_events < 1:
            raise InvalidParameterError(
                f"max_events must be >= 1, got {max_events!r}"
            )
        self._clock = clock if clock is not None else time.perf_counter_ns
        self._origin = self._clock()
        # Wall-clock anchor paired with the perf-counter origin so span
        # batches from different processes can be re-based onto one
        # timeline (repro.obs.timeline).  The reading is observational —
        # it never feeds an algorithm, so determinism is unaffected.
        self.origin_unix_ns = time.time_ns()  # replint: disable=REP001
        self.pid = os.getpid()
        self._depth = 0
        self.max_events = max_events
        self.events: List[Dict[str, object]] = []
        self.dropped = 0

    def span(self, name: str, labels: Optional[Dict[str, object]] = None):
        """An active span context manager (prefer the module-level
        :func:`span`, which is a no-op when tracing is disabled)."""
        return _Span(self, name, labels or {})

    def _record(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        depth: int,
        labels: Dict[str, object],
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            {
                "name": name,
                "start_ns": start_ns - self._origin,
                "duration_ns": end_ns - start_ns,
                "depth": depth,
                "labels": labels,
            }
        )

    def export_batch(self) -> SpanBatch:
        """This tracer's events plus the anchors a parent needs.

        The sharded engines ship this (not the raw event list) so the
        parent can re-base worker offsets onto its own timeline via the
        wall-clock anchors, tag events with the worker pid, and account
        for spans the worker dropped.
        """
        return {
            "origin_unix_ns": self.origin_unix_ns,
            "pid": self.pid,
            "dropped": self.dropped,
            "events": self.events,
        }

    def ingest(
        self,
        batch: Union[SpanBatch, List[Dict[str, object]]],
        **extra_labels: object,
    ) -> None:
        """Append completed span events recorded by *another* tracer.

        The sharded ingest engine ships each worker's
        :meth:`export_batch` back to the parent and re-registers it
        here, tagged with ``extra_labels`` (``worker=<shard>``).  A
        batch carries the recording tracer's wall-clock anchor, so
        start offsets are shifted onto *this* tracer's timeline (the
        anchor skew — two clock reads at tracer construction — bounds
        the alignment error); events are also tagged with the source
        ``pid``, and the source's ``dropped`` count is added to this
        tracer's so a truncated worker trace never looks complete.

        A bare event list (the pre-anchor wire format) is still
        accepted: offsets are appended unshifted, exactly as before.
        The ``max_events`` bound applies as usual (overflow counts into
        ``dropped``).
        """
        if isinstance(batch, dict):
            events = batch.get("events") or []
            shift = (
                int(batch.get("origin_unix_ns", self.origin_unix_ns))
                - self.origin_unix_ns
            )
            pid = batch.get("pid")
            self.dropped += int(batch.get("dropped", 0))
        else:
            events = batch
            shift = 0
            pid = None
        for event in events:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                continue
            labels = dict(event.get("labels") or {})  # type: ignore[arg-type]
            labels.update(extra_labels)
            merged = dict(event)
            merged["labels"] = labels
            if shift:
                merged["start_ns"] = int(merged.get("start_ns", 0)) + shift
            if pid is not None and "pid" not in merged:
                merged["pid"] = pid
            self.events.append(merged)

    def to_jsonl(self) -> str:
        """All events, one JSON object per line.

        A trace that dropped spans (buffer overflow, worker truncation)
        ends with a trailer record ``{"meta": "dropped_spans", ...}`` so
        the JSONL can never silently pass for a complete trace.
        """
        lines = [json.dumps(event) for event in self.events]
        if self.dropped:
            lines.append(
                json.dumps(
                    {"meta": "dropped_spans", "dropped": self.dropped}
                )
            )
        return "\n".join(lines)

    def write(self, path) -> int:
        """Write the JSONL trace to ``path``; returns the event count
        (the dropped-spans trailer, when present, is not an event)."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        return len(self.events)


class _Span:
    """One active span; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_labels", "_start")

    def __init__(self, tracer: Tracer, name: str, labels: Dict) -> None:
        self._tracer = tracer
        self._name = name
        self._labels = labels

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        tracer._depth += 1
        self._start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        tracer._depth -= 1
        tracer._record(
            self._name, self._start, end, tracer._depth, self._labels
        )
        return False


class _NullSpan:
    """Shared stateless no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

_tracer: Optional[Tracer] = None


def tracer() -> Optional[Tracer]:
    """The active tracer, or None when tracing is disabled."""
    return _tracer


def enable_tracing(instance: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the active tracer; a fresh one when None."""
    global _tracer
    if instance is None:
        instance = _tracer if _tracer is not None else Tracer()
    elif not isinstance(instance, Tracer):
        raise InvalidParameterError(
            f"expected a Tracer, got {type(instance).__name__}"
        )
    _tracer = instance
    return instance


def disable_tracing() -> None:
    """Uninstall the tracer: spans revert to no-ops."""
    global _tracer
    _tracer = None


def span(name: str, **labels):
    """A timing span around a ``with`` block; no-op unless tracing is on."""
    active = _tracer
    if active is None:
        return _NULL_SPAN
    return _Span(active, name, labels)
