"""Process-level chaos harness for the durable ingest stack.

Where :mod:`repro.distributed.faults` perturbs *messages*, this module
perturbs *processes and disks* — always through the same seeded
:class:`~repro.distributed.faults.FaultPlan`, so a chaos run is exactly
as reproducible as a clean one:

* :func:`apply_storage_faults` damages an on-disk durable store the way
  a crash can (``truncate_wal`` tears the final segment's tail,
  ``corrupt_checkpoint`` bit-flips the newest checkpoint) *before*
  recovery gets to look at it.
* :func:`chaos_durable_run` drives one :class:`DurableIngest` store
  through a full crash/damage/recover/resume cycle at the plan-chosen
  batch, returning the final summary plus a :class:`ChaosReport` of what
  actually happened.  Because resumption restarts from the store's own
  durable high-water mark (``wal.next_seq``), every batch is applied
  exactly once no matter where the crash or the tear landed — which is
  what makes the result *bit-identical* to an uninterrupted run for
  deterministic sketches.

The kill/stall faults for real worker *processes* are consumed by
:mod:`repro.durability.supervisor`; this module is the single-process
counterpart that lets the recovery invariant be proven for every
algorithm in the registry without paying a process spawn per case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.core.base import QuantileSketch
from repro.distributed.faults import FaultInjector, FaultPlan
from repro.durability.ingest import DurabilityConfig, DurableIngest
from repro.durability.wal import _SEG_HEADER
from repro.obs.events import record_event


def _coerce_injector(
    faults: Union[FaultPlan, FaultInjector]
) -> FaultInjector:
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults)


@dataclass
class StorageFaultReport:
    """What :func:`apply_storage_faults` did to one store."""

    #: Bytes actually removed from the final WAL segment.
    truncated_bytes: int = 0
    #: Name of the WAL segment that was torn, if any.
    torn_segment: Optional[str] = None
    #: Name of the checkpoint file that was bit-flipped, if any.
    corrupted_checkpoint: Optional[str] = None


def apply_storage_faults(
    store_dir: Union[str, Path],
    faults: Union[FaultPlan, FaultInjector],
    store_id: int = 0,
) -> StorageFaultReport:
    """Damage a durable store per the plan, as a crash could have.

    ``truncate_wal[store_id]`` bytes are chopped off the final WAL
    segment (clamped so the segment header survives — header damage is
    unrecoverable corruption, not a torn tail), and the newest
    checkpoint gets one deterministic bit flip when ``store_id`` is in
    ``corrupt_checkpoint``.  Both are exactly the damage recovery is
    specified to absorb: the tail truncates back to the last intact
    frame, the checkpoint falls back to an older one.
    """
    injector = _coerce_injector(faults)
    store_dir = Path(store_dir)
    report = StorageFaultReport()

    tear = injector.wal_truncate_bytes(store_id)
    if tear > 0:
        segments = sorted((store_dir / "wal").glob("wal-*.seg"))
        if segments:
            target = segments[-1]
            size = target.stat().st_size
            with open(target, "rb+") as fh:
                head = fh.read(_SEG_HEADER.size)
                if len(head) == _SEG_HEADER.size:
                    _magic, _version, dtype_len = _SEG_HEADER.unpack(head)
                    floor = _SEG_HEADER.size + dtype_len
                    new_size = max(floor, size - tear)
                    if new_size < size:
                        fh.truncate(new_size)
                        report.truncated_bytes = size - new_size
                        report.torn_segment = target.name
    if injector.corrupts_checkpoint(store_id):
        checkpoints = sorted((store_dir / "checkpoints").glob("ckpt-*.ck"))
        if checkpoints:
            target = checkpoints[-1]
            blob = target.read_bytes()
            target.write_bytes(
                injector.corrupt_blob(blob, src=store_id, seq=5)
            )
            report.corrupted_checkpoint = target.name
    if report.truncated_bytes or report.corrupted_checkpoint:
        record_event(
            "chaos.storage_fault",
            store_id=store_id,
            truncated_bytes=report.truncated_bytes,
            torn_segment=report.torn_segment,
            corrupted_checkpoint=report.corrupted_checkpoint,
        )
    return report


@dataclass
class ChaosReport:
    """End-to-end record of one :func:`chaos_durable_run`."""

    #: Batch index the process "crashed" at (None: plan had no kill).
    killed_at_batch: Optional[int] = None
    #: Storage damage applied between crash and recovery.
    storage: StorageFaultReport = field(default_factory=StorageFaultReport)
    #: Batch index ingest resumed from (the durable high-water mark).
    resumed_from_batch: Optional[int] = None
    #: The reopened store's recovery report (see ``DurableIngest``).
    recovery: Optional[Any] = None
    #: Total batches the input stream was cut into.
    total_batches: int = 0


def _batches(data: np.ndarray, batch_size: int) -> List[np.ndarray]:
    return [
        data[lo: lo + batch_size]
        for lo in range(0, len(data), batch_size)
    ]


def chaos_durable_run(
    directory: Union[str, Path],
    algorithm: str,
    eps: float,
    data: np.ndarray,
    faults: FaultPlan,
    batch_size: int = 4096,
    universe_log2: Optional[int] = None,
    seed: Optional[int] = 0,
    config: Optional[DurabilityConfig] = None,
    store_id: int = 0,
    **kwargs: Any,
) -> tuple:
    """One durable ingest run with a plan-scheduled crash in the middle.

    The stream is cut into ``batch_size`` batches and fed to a
    :class:`DurableIngest` store.  If the plan schedules
    ``kill_worker_at[store_id] = k``, the store is crashed (handles
    dropped, no checkpoint, no fsync) after batch ``k`` was durably
    applied; storage faults are then applied, the store reopened —
    running real recovery — and ingest *resumes from the store's own
    durable high-water mark*, so a batch lost to a torn tail is resent
    and a batch that survived is never applied twice.

    Returns ``(summary, report)``.  For a deterministic algorithm the
    summary is bit-identical to an uninterrupted run over ``data``.
    """
    injector = _coerce_injector(faults)
    if config is None:
        config = DurabilityConfig(directory=directory)
    elif Path(config.directory) != Path(directory):
        config = DurabilityConfig(
            directory=directory,
            checkpoint_interval=config.checkpoint_interval,
            keep_checkpoints=config.keep_checkpoints,
            fsync=config.fsync,
            segment_bytes=config.segment_bytes,
            validate_restore=config.validate_restore,
        )
    spec: Dict[str, Any] = dict(
        universe_log2=universe_log2, seed=seed, **kwargs
    )
    batches = _batches(np.asarray(data), batch_size)
    report = ChaosReport(total_batches=len(batches))

    kill_at = injector.kill_after_chunks(store_id, incarnation=0)
    store = DurableIngest(config, algorithm, eps, **spec)
    if kill_at is None or kill_at >= len(batches):
        for batch in batches:
            store.ingest(batch)
        return store.finish(), report

    for batch in batches[:kill_at]:
        store.ingest(batch)
    store.crash()
    report.killed_at_batch = kill_at
    report.storage = apply_storage_faults(
        config.directory, injector, store_id=store_id
    )

    store = DurableIngest(config, algorithm, eps, **spec)
    report.recovery = store.recovery
    resume = store.wal.next_seq
    report.resumed_from_batch = resume
    for batch in batches[resume:]:
        store.ingest(batch)
    return store.finish(), report


def durable_run(
    directory: Union[str, Path],
    algorithm: str,
    eps: float,
    data: np.ndarray,
    batch_size: int = 4096,
    universe_log2: Optional[int] = None,
    seed: Optional[int] = 0,
    config: Optional[DurabilityConfig] = None,
    **kwargs: Any,
) -> QuantileSketch:
    """Uninterrupted durable baseline: same batching, no faults."""
    plan = FaultPlan.lossless()
    summary, _report = chaos_durable_run(
        directory,
        algorithm,
        eps,
        data,
        plan,
        batch_size=batch_size,
        universe_log2=universe_log2,
        seed=seed,
        config=config,
        **kwargs,
    )
    return summary
