"""Durable ingest: write-ahead log, checkpoint/restore, supervision.

The mergeable-summary model (PAPER.md, Section 1.2) makes sketches
checkpointable for free — a summary *is* its own recovery state.  This
package turns that observation into a crash-safe ingest stack:

* :mod:`repro.durability.wal` — segmented, CRC-framed write-ahead log of
  update batches with torn-tail repair and fsync policy knobs.
* :mod:`repro.durability.checkpoint` — periodic snapshot-envelope
  checkpoints anchored to WAL offsets, with corrupt-file fallback.
* :mod:`repro.durability.ingest` — :class:`DurableIngest`, one sketch
  whose state survives process crashes via checkpoint + WAL-tail replay,
  exactly once, bit-identical for deterministic sketches.
* :mod:`repro.durability.supervisor` — a self-healing sharded engine
  that restarts dead/hung workers from their durable stores and reports
  ``coverage`` / ``effective_eps`` when it must degrade.
* :mod:`repro.durability.chaos` — seeded process/storage fault harness
  (kills, stalls, torn WALs, corrupt checkpoints) for deterministic
  end-to-end recovery tests.

See ``docs/durability.md`` for the WAL format, the recovery state
machine, and the chaos-fault catalog.
"""

from repro.durability.chaos import (
    ChaosReport,
    StorageFaultReport,
    apply_storage_faults,
    chaos_durable_run,
    durable_run,
)
from repro.durability.checkpoint import Checkpoint, CheckpointManager
from repro.durability.ingest import (
    DurabilityConfig,
    DurableIngest,
    RecoveryReport,
)
from repro.durability.supervisor import (
    SupervisedIngestEngine,
    SupervisedResult,
    SupervisorConfig,
    supervised_feed,
)
from repro.durability.wal import WriteAheadLog

__all__ = [
    "ChaosReport",
    "Checkpoint",
    "CheckpointManager",
    "DurabilityConfig",
    "DurableIngest",
    "RecoveryReport",
    "StorageFaultReport",
    "SupervisedIngestEngine",
    "SupervisedResult",
    "SupervisorConfig",
    "WriteAheadLog",
    "apply_storage_faults",
    "chaos_durable_run",
    "durable_run",
    "supervised_feed",
]
