"""Durable single-summary ingest: WAL-ahead apply with checkpoint recovery.

:class:`DurableIngest` is the process-level durability wrapper around
one sketch.  Every batch is appended to the write-ahead log *before* it
touches the summary, and the summary is checkpointed every
``checkpoint_interval`` batches, so a crash at any instant loses nothing
that the fsync policy promised: reopening the same directory recovers
the newest valid checkpoint and replays the WAL tail through the same
batch kernels, landing in a state **bit-identical** to an uninterrupted
run for deterministic sketches (error-equivalent for randomized ones —
their RNG state rides inside the snapshot envelope).

Directory layout::

    <dir>/manifest.json      # the sketch spec this store was built for
    <dir>/wal/wal-*.seg      # segmented write-ahead log
    <dir>/checkpoints/ckpt-*.ck

The manifest pins the spec: reopening with a different algorithm, eps,
universe, seed, or dtype raises
:class:`~repro.core.errors.DurabilityError` instead of silently
replaying one algorithm's stream into another's summary.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.base import QuantileSketch
from repro.core.errors import DurabilityError, InvalidParameterError
from repro.durability.checkpoint import CheckpointManager
from repro.durability.wal import (
    DEFAULT_SEGMENT_BYTES,
    FSYNC_POLICIES,
    WriteAheadLog,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Manifest format version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class DurabilityConfig:
    """Knobs for a durable ingest store (serial or supervised).

    Args:
        directory: root of the durable store.
        checkpoint_interval: batches applied between checkpoints; the
            recovery-time vs. checkpoint-overhead dial (measured in
            ``benchmarks/bench_durability.py``).
        keep_checkpoints: intact checkpoints retained after pruning.
        fsync: WAL fsync policy (see :mod:`repro.durability.wal`).
        segment_bytes: WAL segment rotation threshold.
        validate_restore: run ``validate()`` on every checkpoint load.
    """

    directory: Union[str, Path]
    checkpoint_interval: int = 64
    keep_checkpoints: int = 2
    fsync: str = "rotate"
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    validate_restore: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise InvalidParameterError(
                "checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval!r}"
            )
        if self.keep_checkpoints < 1:
            raise InvalidParameterError(
                "keep_checkpoints must be >= 1, got "
                f"{self.keep_checkpoints!r}"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise InvalidParameterError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )

    @classmethod
    def coerce(
        cls, value: Union["DurabilityConfig", str, Path]
    ) -> "DurabilityConfig":
        """A config from a config, or from a bare directory path."""
        if isinstance(value, DurabilityConfig):
            return value
        if isinstance(value, (str, Path)):
            return cls(directory=value)
        raise InvalidParameterError(
            "durable must be a DurabilityConfig or a directory path, got "
            f"{type(value).__name__}"
        )


@dataclass
class RecoveryReport:
    """What recovery did when a store was reopened."""

    recovered: bool = False
    #: WAL sequence the restored checkpoint covered (-1: none found).
    checkpoint_seq: int = -1
    #: Corrupt checkpoint files skipped while falling back.
    corrupt_checkpoints_skipped: int = 0
    #: WAL batches replayed on top of the checkpoint.
    replayed_batches: int = 0
    #: Torn WAL tails repaired on open.
    torn_tails_repaired: int = 0
    #: Wall-clock seconds the recovery took.
    seconds: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)


def _apply_batch(sketch: QuantileSketch, batch: np.ndarray) -> None:
    """Feed one batch through the same kernel path ``feed_stream`` uses,
    so a durable run is bit-identical to a non-durable one.

    Thin wrapper over :func:`repro.evaluation.harness.apply_batch` (the
    import is deferred — ``repro.evaluation`` pulls in plotting and
    analysis modules a durable store does not need at import time).
    """
    from repro.evaluation.harness import apply_batch

    apply_batch(sketch, batch)


class DurableIngest:
    """One sketch whose state survives process crashes.

    Args:
        config: a :class:`DurabilityConfig` or a bare directory path.
        algorithm: registry name of the sketch to build/recover.
        eps: error parameter.
        universe_log2: for fixed-universe algorithms.
        seed: sketch seed (recovery rebuilds with the same seed, then
            overwrites state from the checkpoint).
        dtype: element dtype of the stream (fixed per store).
        **kwargs: forwarded to the algorithm constructor.

    Opening a directory that already holds a store *recovers* it:
    the manifest is checked against the requested spec, the newest valid
    checkpoint restored (falling back past corrupt ones), and the WAL
    tail replayed.  :attr:`recovery` reports what happened.
    """

    def __init__(
        self,
        config: Union[DurabilityConfig, str, Path],
        algorithm: str,
        eps: float,
        universe_log2: Optional[int] = None,
        seed: Optional[int] = 0,
        dtype: Any = np.int64,
        **kwargs: Any,
    ) -> None:
        from repro.evaluation.harness import build_sketch

        self.config = DurabilityConfig.coerce(config)
        self.directory = Path(self.config.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._dtype = np.dtype(dtype)
        self._spec: Dict[str, Any] = {
            "manifest_version": MANIFEST_VERSION,
            "algorithm": algorithm,
            "eps": eps,
            "universe_log2": universe_log2,
            "seed": seed,
            "dtype": self._dtype.str,
            "kwargs": dict(kwargs),
        }
        self._check_or_write_manifest()
        self.wal = WriteAheadLog(
            self.directory / "wal",
            dtype=self._dtype,
            segment_bytes=self.config.segment_bytes,
            fsync=self.config.fsync,
        )
        self.checkpoints = CheckpointManager(
            self.directory / "checkpoints",
            keep=self.config.keep_checkpoints,
        )
        self.recovery = RecoveryReport(
            torn_tails_repaired=self.wal.repaired_tails
        )
        self._closed = False
        self._since_checkpoint = 0
        self.sketch = self._recover(
            lambda: build_sketch(
                algorithm, eps, universe_log2, seed, **kwargs
            )
        )

    # -- manifest -------------------------------------------------------

    @property
    def _manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def _check_or_write_manifest(self) -> None:
        path = self._manifest_path
        if path.exists():
            try:
                existing = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise DurabilityError(
                    f"durable store manifest {path} is unreadable: {exc}"
                ) from exc
            if existing != self._spec:
                differing = sorted(
                    key
                    for key in set(existing) | set(self._spec)
                    if existing.get(key) != self._spec.get(key)
                )
                raise DurabilityError(
                    f"durable store at {self.directory} was built for a "
                    f"different spec (fields differing: {differing}); "
                    "refusing to replay one algorithm's WAL into another"
                )
        else:
            path.write_text(
                json.dumps(self._spec, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )

    # -- recovery -------------------------------------------------------

    def _recover(self, fresh: Any) -> QuantileSketch:
        rec = obs_metrics.recorder()
        start = time.perf_counter()
        had_state = bool(self.checkpoints.paths()) or self.wal.batches() > 0
        with obs_trace.span("durability.recover"):
            checkpoint = self.checkpoints.load_latest(
                validate=self.config.validate_restore
            )
            self.recovery.corrupt_checkpoints_skipped = (
                self.checkpoints.corrupt_skipped
            )
            if checkpoint is not None:
                sketch = checkpoint.summary
                after_seq = checkpoint.wal_seq
            else:
                sketch = fresh()
                after_seq = -1
            self.recovery.checkpoint_seq = after_seq
            self.wal.ensure_next_seq(after_seq + 1)
            replayed = 0
            with obs_trace.span("durability.replay", after_seq=after_seq):
                for _seq, batch in self.wal.replay(after_seq):
                    _apply_batch(sketch, batch)
                    replayed += 1
        self.recovery.replayed_batches = replayed
        self.recovery.recovered = had_state
        self.recovery.seconds = time.perf_counter() - start
        if rec.enabled:
            if had_state:
                rec.inc("durability.recoveries", 1)
                rec.observe(
                    "durability.recovery_ns",
                    1e9 * self.recovery.seconds,
                )
            if replayed:
                rec.inc("durability.wal.replayed_batches", replayed)
        return sketch

    # -- ingest ---------------------------------------------------------

    def ingest(self, values: np.ndarray) -> int:
        """Log one batch durably, then apply it; returns its WAL seq."""
        if self._closed:
            raise DurabilityError("durable ingest session is closed")
        batch = np.asarray(values, dtype=self._dtype)
        rec = obs_metrics.recorder()
        start = time.perf_counter_ns()
        seq = self.wal.append(batch)
        if rec.enabled:
            rec.observe(
                "durability.wal.append_ns",
                time.perf_counter_ns() - start,
            )
        _apply_batch(self.sketch, batch)
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.config.checkpoint_interval:
            self.checkpoint()
        return seq

    def checkpoint(self) -> None:
        """Persist the live summary now and prune covered WAL segments."""
        if self._closed:
            raise DurabilityError("durable ingest session is closed")
        covered = self.wal.last_seq
        self.checkpoints.save(self.sketch, covered)
        self._since_checkpoint = 0
        # Seal the active segment so everything the checkpoint covers is
        # prunable; an interruption between save and prune only leaves
        # covered segments behind, which replay skips by seq.  The WAL
        # prune floor is the *oldest retained* checkpoint, not the one
        # just written: recovery may fall back past a corrupt newest
        # checkpoint and must still find every frame after the fallback.
        self.wal.rotate()
        self.checkpoints.prune()
        floor = self.checkpoints.oldest_covered_seq()
        if floor is None:  # pragma: no cover - save() just wrote one
            floor = covered
        self.wal.prune_through(floor)

    # -- lifecycle ------------------------------------------------------

    def finish(self) -> QuantileSketch:
        """Final checkpoint, close the store, return the summary."""
        if not self._closed:
            self.checkpoint()
            self.close()
        return self.sketch

    def close(self) -> None:
        """Close file handles *without* checkpointing.

        The store stays recoverable — that is the whole point — but the
        tail since the last checkpoint will be replayed on reopen,
        exactly as after a crash.
        """
        if self._closed:
            return
        self._closed = True
        self.wal.close()

    def crash(self) -> None:
        """Simulate a process crash: abandon the store mid-flight.

        No checkpoint, no WAL seal, no fsync — the on-disk state is
        exactly what a SIGKILL would have left (modulo OS buffers, which
        a process kill preserves anyway).  Used by the chaos harness;
        reopening the directory afterwards runs real recovery.
        """
        if self._closed:
            return
        self._closed = True
        self.wal.drop()

    def __enter__(self) -> "DurableIngest":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
