"""Self-healing supervised parallel ingest over durable shard stores.

:class:`SupervisedIngestEngine` is the fault-tolerant sibling of
:class:`repro.parallel.engine.ShardedIngestEngine`.  The chunk deal,
shared-memory transport, per-shard seeds, and merge tree are the same —
a zero-fault supervised run produces a summary bit-identical to the
plain engine's for deterministic sketches — but every worker owns a
:class:`~repro.durability.ingest.DurableIngest` store, and the parent
supervises:

* **Detection** — every worker reply doubles as a heartbeat (a
  ``ready`` handshake after build/recovery, an ``ack`` after each chunk
  is durably applied).  Replies travel over a **per-worker pipe**, not
  a shared queue: a queue's pipe-write lock dies with whichever worker
  a SIGKILL catches holding it, silencing every *other* worker, whereas
  a crashed worker can only tear its own pipe — which the parent sees
  as an immediate EOF.  A dead worker is caught by that EOF or by
  ``is_alive()``; a live-but-silent worker with work outstanding past
  ``hung_timeout_s`` is declared hung and killed.
* **Restart** — a failed worker is respawned with exponential backoff
  under a per-shard retry budget.  The fresh incarnation reopens its
  shard store, recovers (checkpoint + WAL replay), and reports its
  durable high-water mark; the parent then *resends* only the chunks at
  or above that mark.  Acks are sent after the durable apply, so the
  resend set is exact — every chunk is applied exactly once.
* **Degradation** — a shard that exhausts its budget is abandoned: the
  parent salvages whatever its store durably holds and the final result
  reports ``coverage`` and ``effective_eps`` with the same accounting
  as :func:`repro.distributed.protocols.merge_summaries` (``coverage *
  eps + (1 - coverage)``).

Faults are never ad hoc: worker kills and stalls come from the seeded
:class:`~repro.distributed.faults.FaultPlan` (consumed *inside* the
worker, so the crash is a real SIGKILL of a real process), and storage
damage is applied through :func:`repro.durability.chaos.apply_storage_faults`
before a restarted worker recovers.  Same plan, same faults, same
result.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
import traceback
from collections import OrderedDict
from multiprocessing import connection as mp_connection
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import QuantileSketch
from repro.core.errors import (
    CorruptSummaryError,
    DurabilityError,
    InvalidParameterError,
    UnmergeableSketchError,
)
from repro.core.registry import merge_shares_seed, supports_merge
from repro.core.snapshot import restore, snapshot
from repro.distributed.faults import FaultInjector, FaultPlan
from repro.durability.chaos import apply_storage_faults
from repro.durability.ingest import DurabilityConfig, DurableIngest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import record_event
from repro.parallel.engine import _start_method
from repro.parallel.plan import ShardPlan
from repro.parallel.shm import (
    SLOTS_PER_WORKER,
    attach_slots,
    create_slot_pool,
)


@dataclass(frozen=True)
class SupervisorConfig:
    """Failure-handling knobs for :class:`SupervisedIngestEngine`.

    Args:
        max_restarts: restarts each shard may consume before it is
            abandoned (and salvaged from its durable store).
        restart_backoff_s: delay before the first restart of a shard.
        backoff_factor: multiplier per further restart (exponential).
        hung_timeout_s: a worker with outstanding work that has not
            replied for this long is declared hung and killed.
        poll_interval_s: reply-queue poll granularity; bounds how fast
            death/hang detection reacts.
    """

    max_restarts: int = 2
    restart_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    hung_timeout_s: float = 30.0
    poll_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise InvalidParameterError(
                f"max_restarts must be >= 0, got {self.max_restarts!r}"
            )
        if self.restart_backoff_s < 0 or self.backoff_factor < 1.0:
            raise InvalidParameterError(
                "restart_backoff_s must be >= 0 and backoff_factor >= 1"
            )
        if self.hung_timeout_s <= 0 or self.poll_interval_s <= 0:
            raise InvalidParameterError(
                "hung_timeout_s and poll_interval_s must be > 0"
            )


@dataclass
class SupervisedResult:
    """Outcome of a supervised run, with degradation made explicit."""

    #: The merged summary; None only when every shard was lost outright.
    summary: Optional[QuantileSketch]
    #: Fraction of the dealt stream the summary represents.
    coverage: float
    #: Error bound vs. the full stream given the coverage
    #: (``coverage * eps + (1 - coverage)``).
    effective_eps: float
    elements_total: int
    elements_merged: int
    #: Restarts consumed, per shard.
    restarts: Tuple[int, ...]
    abandoned_shards: Tuple[int, ...]
    #: Abandoned shards whose durable store was salvaged into the merge.
    salvaged_shards: Tuple[int, ...]
    resent_chunks: int
    hung_detected: int


def _supervised_worker(
    worker_id: int,
    incarnation: int,
    plan: ShardPlan,
    spec: Dict[str, Any],
    durable: Dict[str, Any],
    slot_names: List[str],
    dtype_str: str,
    task_queue: Any,
    reply_conn: Any,
    fault_plan: FaultPlan,
    collect_metrics: bool,
    collect_spans: bool,
) -> None:
    """Worker entry point: one durable sketch store per shard.

    Replies go over ``reply_conn``, this worker's private pipe to the
    parent — never a queue shared with sibling workers, so a chaos
    SIGKILL here can wedge nobody but this worker (the parent reads the
    torn pipe as EOF, exactly what a crash should look like).

    Protocol (all replies carry ``incarnation`` so the parent can drop
    messages from a dead predecessor):

    * ``("ready", worker, incarnation, next_seq)`` — sent once the store
      is open and recovered; ``next_seq`` is the durable high-water mark
      (per-shard chunk ordinal) the parent must resend from.
    * ``("chunk", slot, count, ordinal)`` in, ``("ack", worker,
      incarnation, slot, ordinal)`` out — the ack is sent *after* the
      chunk is durably applied, so an acked chunk never needs resending.
    * ``("finish",)`` in, ``("result", worker, incarnation, blob,
      metrics, spans)`` out.

    Chaos faults fire here, inside the real process: ``kill_worker_at``
    is a genuine ``SIGKILL`` of this worker, ``stall_worker`` a real
    sleep long enough to trip the parent's hang detector.
    """
    registry = None
    tracer = None
    injector = FaultInjector(fault_plan)
    try:
        if collect_metrics:
            registry = obs_metrics.enable(obs_metrics.MetricsRegistry())
        if collect_spans:
            tracer = obs_trace.enable_tracing(obs_trace.Tracer())
        seed = plan.sketch_seed(worker_id, spec["shares_seed"])
        store = DurableIngest(
            DurabilityConfig(
                directory=Path(durable["directory"])
                / f"shard-{worker_id:03d}",
                checkpoint_interval=durable["checkpoint_interval"],
                keep_checkpoints=durable["keep_checkpoints"],
                fsync=durable["fsync"],
                segment_bytes=durable["segment_bytes"],
                validate_restore=durable["validate_restore"],
            ),
            spec["algorithm"],
            spec["eps"],
            universe_log2=spec["universe_log2"],
            seed=seed,
            dtype=np.dtype(dtype_str),
            **spec["kwargs"],
        )
        slots = attach_slots(
            slot_names, plan.chunk_size, np.dtype(dtype_str)
        )
        kill_after = injector.kill_after_chunks(worker_id, incarnation)
        stall = injector.stall_seconds(worker_id, incarnation)
        applied = 0
        reply_conn.send(
            ("ready", worker_id, incarnation, store.wal.next_seq)
        )
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "chunk":
                _, slot, count, ordinal = message
                if stall > 0.0:
                    time.sleep(stall)
                    stall = 0.0
                if kill_after is not None and applied >= kill_after:
                    # The scheduled chaos crash: die before this chunk
                    # is logged, exactly as a real fault would.
                    os.kill(os.getpid(), signal.SIGKILL)
                values = slots[slot].read(count)
                if ordinal >= store.wal.next_seq:
                    store.ingest(values)
                applied += 1
                reply_conn.send(
                    ("ack", worker_id, incarnation, slot, ordinal)
                )
            elif kind == "finish":
                sketch = store.finish()
                blob = snapshot(sketch)
                metrics_state = (
                    obs_metrics.export_state(registry)
                    if registry is not None
                    else []
                )
                span_batch = (
                    tracer.export_batch() if tracer is not None else None
                )
                reply_conn.send(
                    (
                        "result",
                        worker_id,
                        incarnation,
                        blob,
                        metrics_state,
                        span_batch,
                    )
                )
            elif kind == "stop":
                break
            else:  # pragma: no cover - protocol bug guard
                raise InvalidParameterError(
                    f"unknown worker message {message!r}"
                )
        store.close()
        for slot in slots:
            slot.close()
    except Exception:  # pragma: no cover - exercised via chaos tests
        reply_conn.send(
            ("error", worker_id, incarnation, traceback.format_exc())
        )
    finally:
        reply_conn.close()


class SupervisedIngestEngine:
    """Sharded ingest that detects, restarts, and survives worker loss.

    Args:
        algorithm: registry name; must support merging.
        eps: error parameter for every shard and the merged summary.
        plan: the :class:`ShardPlan` fixing shards, chunking, and seeds.
        durable: a :class:`DurabilityConfig` (or directory path) for the
            per-shard stores, laid out as ``<dir>/shard-<k>/``.
        faults: seeded chaos plan; ``None`` means lossless.
        supervisor: failure-handling knobs.
        universe_log2 / collect_metrics / dtype / kwargs: as in
            :class:`~repro.parallel.engine.ShardedIngestEngine`.

    Use as a context manager or call :meth:`close` — the shared-memory
    slots must be unlinked.
    """

    def __init__(
        self,
        algorithm: str,
        eps: float,
        plan: ShardPlan,
        durable: Any,
        faults: Optional[FaultPlan] = None,
        supervisor: Optional[SupervisorConfig] = None,
        universe_log2: Optional[int] = None,
        collect_metrics: bool = False,
        dtype: Any = np.int64,
        **kwargs: Any,
    ) -> None:
        if not supports_merge(algorithm):
            raise UnmergeableSketchError(
                f"{algorithm} cannot shard: it defines no merge operation "
                "(see repro.core.registry.mergeable_algorithms())"
            )
        self.algorithm = algorithm
        self.eps = eps
        self.plan = plan
        self.durable = DurabilityConfig.coerce(durable)
        self.faults = faults if faults is not None else FaultPlan.lossless()
        self._injector = FaultInjector(self.faults)
        self.supervisor = (
            supervisor if supervisor is not None else SupervisorConfig()
        )
        self._spec: Dict[str, Any] = {
            "algorithm": algorithm,
            "eps": eps,
            "universe_log2": universe_log2,
            "kwargs": dict(kwargs),
            "shares_seed": merge_shares_seed(algorithm),
        }
        self._durable_spec: Dict[str, Any] = {
            "directory": str(self.durable.directory),
            "checkpoint_interval": self.durable.checkpoint_interval,
            "keep_checkpoints": self.durable.keep_checkpoints,
            "fsync": self.durable.fsync,
            "segment_bytes": self.durable.segment_bytes,
            "validate_restore": self.durable.validate_restore,
        }
        self._dtype = np.dtype(dtype)
        self._collect_metrics = collect_metrics
        self._ctx = mp.get_context(_start_method())
        shards = plan.shards
        self._procs: List[Optional[Any]] = [None] * shards
        self._task_queues: List[Optional[Any]] = [None] * shards
        self._reply_conns: List[Optional[Any]] = [None] * shards
        self._slots: List[List[Any]] = []
        self._free: List[List[int]] = [[] for _ in range(shards)]
        self._pending: List["OrderedDict[int, np.ndarray]"] = [
            OrderedDict() for _ in range(shards)
        ]
        self._ordinals = [0] * shards
        self._incarnation = [0] * shards
        self._restarts = [0] * shards
        self._abandoned = [False] * shards
        self._ready = [False] * shards
        self._finish_sent = [False] * shards
        self._last_reply = [0.0] * shards
        self._storage_faulted: set = set()
        self._results: Dict[int, bytes] = {}
        self._chunk_counter = 0
        self._elements = 0
        self._lost_elements = 0
        self.resent_chunks = 0
        self.hung_detected = 0
        self._collect_spans = False
        self._finishing = False
        self._finished = False
        self._closed = False
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "SupervisedIngestEngine":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def _shard_dir(self, worker_id: int) -> Path:
        return Path(self.durable.directory) / f"shard-{worker_id:03d}"

    def _start(self) -> None:
        if self._started:
            return
        self._collect_spans = obs_trace.tracer() is not None
        self._slots = create_slot_pool(
            self.plan.shards, SLOTS_PER_WORKER, self.plan.chunk_size,
            self._dtype,
        )
        self._started = True
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("telemetry.engine.up", 1)
        for worker_id in range(self.plan.shards):
            self._spawn(worker_id)
        if rec.enabled:
            rec.set("parallel.workers", self.plan.shards)

    def _spawn(self, worker_id: int) -> None:
        task_queue = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_supervised_worker,
            args=(
                worker_id,
                self._incarnation[worker_id],
                self.plan,
                self._spec,
                self._durable_spec,
                [slot.name for slot in self._slots[worker_id]],
                self._dtype.str,
                task_queue,
                send_conn,
                self.faults,
                self._collect_metrics,
                self._collect_spans,
            ),
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the write end: once the worker dies,
        # its pipe hits EOF and the death is visible immediately.
        send_conn.close()
        self._procs[worker_id] = process
        self._task_queues[worker_id] = task_queue
        self._reply_conns[worker_id] = recv_conn
        self._ready[worker_id] = False
        self._free[worker_id] = []
        # A fresh incarnation has not been told to finish, whatever its
        # predecessor was sent; _on_ready re-issues it when finishing.
        self._finish_sent[worker_id] = False
        self._last_reply[worker_id] = time.monotonic()
        # Heartbeat gauges the /healthz endpoint reads live.
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("telemetry.shard.alive", 1, worker=worker_id)
            rec.set(
                "telemetry.shard.restarts_remaining",
                self.supervisor.max_restarts - self._restarts[worker_id],
                worker=worker_id,
            )

    # -- supervision ----------------------------------------------------

    def _pump(self, timeout: float) -> bool:
        """Handle ready worker replies; on silence, run the health check.

        The reply channels are one pipe per worker, multiplexed with
        :func:`multiprocessing.connection.wait`.  A pipe that reads as
        EOF is a worker that died mid-write — the torn message is
        treated as lost (a real crash loses it too) and the failure
        handled right away.
        """
        if self._closed:
            raise DurabilityError("supervised engine is closed")
        owners = {
            conn: worker_id
            for worker_id, conn in enumerate(self._reply_conns)
            if conn is not None
        }
        if not owners:
            time.sleep(timeout)
            self._check_health()
            return False
        handled = False
        for conn in mp_connection.wait(list(owners), timeout):
            worker_id = owners[conn]
            if self._reply_conns[worker_id] is not conn:
                continue  # replaced by a restart earlier in this sweep
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                self._on_failure(worker_id, "worker process died")
                continue
            handled = True
            self._dispatch(reply)
        if not handled:
            self._check_health()
        return handled

    def _dispatch(self, reply: Any) -> None:
        kind = reply[0]
        if kind == "ready":
            self._on_ready(reply[1], reply[2], reply[3])
        elif kind == "ack":
            self._on_ack(reply[1], reply[2], reply[3], reply[4])
        elif kind == "error":
            _, worker_id, incarnation, tb = reply
            if incarnation == self._incarnation[worker_id]:
                self._on_failure(worker_id, f"worker error:\n{tb}")
        elif kind == "result":
            self._on_result(reply)

    def _on_ready(
        self, worker_id: int, incarnation: int, next_seq: int
    ) -> None:
        if (
            incarnation != self._incarnation[worker_id]
            or self._abandoned[worker_id]
        ):
            return
        self._ready[worker_id] = True
        self._free[worker_id] = list(range(SLOTS_PER_WORKER))
        self._last_reply[worker_id] = time.monotonic()
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set(
                "telemetry.shard.high_water_seq", next_seq,
                worker=worker_id,
            )
        pending = self._pending[worker_id]
        self._pending[worker_id] = OrderedDict()
        resend = 0
        for ordinal in sorted(pending):
            if ordinal < next_seq:
                continue  # durably applied before the crash
            self._send_chunk(worker_id, ordinal, pending[ordinal])
            resend += 1
        if resend:
            self.resent_chunks += resend
            rec = obs_metrics.recorder()
            if rec.enabled:
                rec.inc("durability.supervisor.resent_chunks", resend)
        if self._finishing and not self._finish_sent[worker_id]:
            self._send_finish(worker_id)

    def _on_ack(
        self, worker_id: int, incarnation: int, slot: int, ordinal: int
    ) -> None:
        if incarnation != self._incarnation[worker_id]:
            return
        self._free[worker_id].append(slot)
        self._pending[worker_id].pop(ordinal, None)
        self._last_reply[worker_id] = time.monotonic()
        rec = obs_metrics.recorder()
        if rec.enabled:
            # The ack means ordinal is durably applied: seqs < ordinal+1
            # will never be resent to this shard.
            rec.set(
                "telemetry.shard.high_water_seq", ordinal + 1,
                worker=worker_id,
            )

    def _check_health(self) -> None:
        now = time.monotonic()
        for worker_id in range(self.plan.shards):
            if self._abandoned[worker_id]:
                continue
            process = self._procs[worker_id]
            if process is None:
                continue
            if not process.is_alive():
                self._on_failure(worker_id, "worker process died")
                continue
            waiting = bool(self._pending[worker_id]) or (
                not self._ready[worker_id]
            ) or (self._finishing and not self._has_result(worker_id))
            if waiting and (
                now - self._last_reply[worker_id]
                > self.supervisor.hung_timeout_s
            ):
                self.hung_detected += 1
                rec = obs_metrics.recorder()
                if rec.enabled:
                    rec.inc("durability.supervisor.hung_detected", 1)
                record_event(
                    "supervisor.hung",
                    worker=worker_id,
                    silent_s=round(now - self._last_reply[worker_id], 3),
                )
                # Remediation of a hung worker the seeded plan stalled —
                # the fault itself was injected in-worker via the plan.
                process.kill()  # replint: disable=REP007
                self._on_failure(worker_id, "worker hung (no heartbeat)")

    def _has_result(self, worker_id: int) -> bool:
        return worker_id in self._results

    def _on_failure(self, worker_id: int, reason: str) -> None:
        process = self._procs[worker_id]
        if process is not None:
            if process.is_alive():
                process.kill()  # replint: disable=REP007
            process.join(timeout=5.0)
        self._procs[worker_id] = None
        conn = self._reply_conns[worker_id]
        if conn is not None:
            conn.close()
            self._reply_conns[worker_id] = None
        self._ready[worker_id] = False
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("telemetry.shard.alive", 0, worker=worker_id)
        if self._restarts[worker_id] >= self.supervisor.max_restarts:
            self._abandon(worker_id, reason)
            return
        delay = (
            self.supervisor.restart_backoff_s
            * self.supervisor.backoff_factor ** self._restarts[worker_id]
        )
        if delay > 0:
            time.sleep(delay)
        self._restarts[worker_id] += 1
        self._incarnation[worker_id] += 1
        # First restart of a shard also applies the plan's storage
        # faults, so recovery is exercised against the damaged store.
        if worker_id not in self._storage_faulted:
            self._storage_faulted.add(worker_id)
            apply_storage_faults(
                self._shard_dir(worker_id),
                self._injector,
                store_id=worker_id,
            )
        if rec.enabled:
            rec.inc("durability.supervisor.restarts", 1)
        record_event(
            "supervisor.restart",
            worker=worker_id,
            incarnation=self._incarnation[worker_id],
            restarts_used=self._restarts[worker_id],
            reason=reason.splitlines()[0] if reason else "",
        )
        with obs_trace.span(
            "durability.supervisor.restart",
            worker=worker_id,
            incarnation=self._incarnation[worker_id],
        ):
            self._spawn(worker_id)

    def _abandon(self, worker_id: int, reason: str) -> None:
        self._abandoned[worker_id] = True
        self._ready[worker_id] = False
        for values in self._pending[worker_id].values():
            self._lost_elements += len(values)
        self._pending[worker_id] = OrderedDict()
        self._free[worker_id] = []
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("durability.supervisor.abandoned", 1)
            rec.set("telemetry.shard.abandoned", 1, worker=worker_id)
            rec.set(
                "telemetry.shard.restarts_remaining", 0, worker=worker_id
            )
        record_event(
            "supervisor.abandon",
            worker=worker_id,
            restarts_used=self._restarts[worker_id],
            reason=reason.splitlines()[0] if reason else "",
        )

    # -- dispatch -------------------------------------------------------

    def _send_chunk(
        self, worker_id: int, ordinal: int, values: np.ndarray
    ) -> None:
        # Resolve the queue before popping the slot: raising with the
        # slot already off the free list would leak it (REP011).
        task_queue = self._task_queues[worker_id]
        if task_queue is None:
            raise DurabilityError(f"shard {worker_id} has no live worker")
        slot = self._free[worker_id].pop()
        count = self._slots[worker_id][slot].write(values)
        self._pending[worker_id][ordinal] = values
        task_queue.put(("chunk", slot, count, ordinal))

    def _await_slot(self, worker_id: int) -> bool:
        """Block until the shard has a free slot (or was abandoned)."""
        while not self._abandoned[worker_id] and (
            not self._ready[worker_id] or not self._free[worker_id]
        ):
            self._pump(self.supervisor.poll_interval_s)
        return not self._abandoned[worker_id]

    def ingest(self, data: np.ndarray) -> None:
        """Deal a stream (or a piece of one) across the workers.

        The deal is identical to the plain engine's — same plan, same
        chunks, same shards — so a fault-free supervised run merges to
        the same summary.
        """
        if self._finished or self._finishing:
            raise InvalidParameterError(
                "engine already finished; build a new one to ingest more"
            )
        self._start()
        data = np.asarray(data, dtype=self._dtype)
        rec = obs_metrics.recorder()
        chunks = 0
        for index, lo, hi in self.plan.chunks(
            len(data), first_chunk=self._chunk_counter
        ):
            worker_id = self.plan.shard_of_chunk(index)
            chunks += 1
            if not self._await_slot(worker_id):
                self._lost_elements += hi - lo
                continue
            values = np.array(data[lo:hi], dtype=self._dtype, copy=True)
            self._send_chunk(worker_id, self._ordinals[worker_id], values)
            self._ordinals[worker_id] += 1
        self._chunk_counter += chunks
        self._elements += len(data)
        if rec.enabled:
            rec.inc("parallel.chunks", chunks, algo=self.algorithm)
            rec.inc("parallel.elements", len(data), algo=self.algorithm)

    # -- finish ---------------------------------------------------------

    def _send_finish(self, worker_id: int) -> None:
        task_queue = self._task_queues[worker_id]
        if task_queue is not None:
            task_queue.put(("finish",))
            self._finish_sent[worker_id] = True

    def _on_result(self, reply: Any) -> None:
        _, worker_id, incarnation, blob, metrics_state, span_batch = reply
        if (
            incarnation != self._incarnation[worker_id]
            or self._abandoned[worker_id]
        ):
            return
        self._last_reply[worker_id] = time.monotonic()
        self._results[worker_id] = blob
        rec = obs_metrics.recorder()
        if metrics_state and isinstance(rec, obs_metrics.MetricsRegistry):
            obs_metrics.absorb_state(rec, metrics_state, worker=worker_id)
        parent_tracer = obs_trace.tracer()
        if span_batch and parent_tracer is not None:
            parent_tracer.ingest(span_batch, worker=worker_id)

    def _salvage(self, worker_id: int) -> Optional[QuantileSketch]:
        """Recover an abandoned shard's durable state in the parent."""
        seed = self.plan.sketch_seed(
            worker_id, self._spec["shares_seed"]
        )
        try:
            store = DurableIngest(
                DurabilityConfig(
                    directory=self._shard_dir(worker_id),
                    checkpoint_interval=self.durable.checkpoint_interval,
                    keep_checkpoints=self.durable.keep_checkpoints,
                    fsync=self.durable.fsync,
                    segment_bytes=self.durable.segment_bytes,
                    validate_restore=self.durable.validate_restore,
                ),
                self._spec["algorithm"],
                self._spec["eps"],
                universe_log2=self._spec["universe_log2"],
                seed=seed,
                dtype=self._dtype,
                **self._spec["kwargs"],
            )
        except (DurabilityError, CorruptSummaryError):
            return None
        sketch = store.sketch
        store.close()
        return sketch

    def finish(self) -> SupervisedResult:
        """Collect, salvage, merge; report coverage honestly.

        Live shards ship their summaries back as snapshot envelopes;
        abandoned shards are salvaged from their durable stores (their
        acked prefix survives).  The merge is the same binary tree as
        the plain engine's, and the result's ``coverage`` /
        ``effective_eps`` make any loss explicit rather than silent.
        """
        if self._finished:
            raise InvalidParameterError("engine already finished")
        self._start()
        self._finishing = True
        for worker_id in range(self.plan.shards):
            if not self._abandoned[worker_id] and self._ready[worker_id]:
                self._send_finish(worker_id)
        while True:
            outstanding = [
                w
                for w in range(self.plan.shards)
                if not self._abandoned[w] and w not in self._results
            ]
            if not outstanding:
                break
            self._pump(self.supervisor.poll_interval_s)
        self._finished = True
        sketches: List[QuantileSketch] = []
        salvaged: List[int] = []
        for worker_id in range(self.plan.shards):
            if worker_id in self._results:
                sketches.append(restore(self._results[worker_id]))
            elif self._abandoned[worker_id]:
                sketch = self._salvage(worker_id)
                if sketch is not None:
                    sketches.append(sketch)
                    salvaged.append(worker_id)
        rec = obs_metrics.recorder()
        summary: Optional[QuantileSketch] = None
        if sketches:
            with obs_trace.span(
                "parallel.merge_tree", algo=self.algorithm,
                shards=len(sketches),
            ):
                while len(sketches) > 1:
                    merged: List[QuantileSketch] = []
                    for i in range(0, len(sketches) - 1, 2):
                        start = time.perf_counter_ns()
                        sketches[i].merge(sketches[i + 1])
                        if rec.enabled:
                            rec.inc(
                                "parallel.merges", 1, algo=self.algorithm
                            )
                            rec.observe(
                                "parallel.merge_ns",
                                time.perf_counter_ns() - start,
                                algo=self.algorithm,
                            )
                        merged.append(sketches[i])
                    if len(sketches) % 2:
                        merged.append(sketches[-1])
                    sketches = merged
            summary = sketches[0]
            summary.validate()
        merged_n = summary.n if summary is not None else 0
        total = self._elements
        coverage = (merged_n / total) if total else 1.0
        return SupervisedResult(
            summary=summary,
            coverage=coverage,
            effective_eps=coverage * self.eps + (1.0 - coverage),
            elements_total=total,
            elements_merged=merged_n,
            restarts=tuple(self._restarts),
            abandoned_shards=tuple(
                w
                for w in range(self.plan.shards)
                if self._abandoned[w]
            ),
            salvaged_shards=tuple(salvaged),
            resent_chunks=self.resent_chunks,
            hung_detected=self.hung_detected,
        )

    def close(self) -> None:
        """Stop workers and release the shared-memory slots."""
        if self._closed:
            return
        self._closed = True
        rec = obs_metrics.recorder()
        if rec.enabled and self._started:
            rec.set("telemetry.engine.up", 0)
            for worker_id in range(self.plan.shards):
                rec.set("telemetry.shard.alive", 0, worker=worker_id)
        for task_queue in self._task_queues:
            if task_queue is None:
                continue
            try:
                task_queue.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover
                pass
        for process in self._procs:
            if process is None:
                continue
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                # Last-resort teardown of a worker that ignored "stop";
                # mirrors ShardedIngestEngine.close.
                process.terminate()  # replint: disable=REP007
                process.join(timeout=5.0)
        for conn in self._reply_conns:
            if conn is not None:
                conn.close()
        for pool in self._slots:
            for slot in pool:
                slot.close()
                slot.unlink()


def supervised_feed(
    algorithm: str,
    data: np.ndarray,
    eps: float,
    plan: ShardPlan,
    durable: Any,
    faults: Optional[FaultPlan] = None,
    supervisor: Optional[SupervisorConfig] = None,
    universe_log2: Optional[int] = None,
    collect_metrics: bool = False,
    **kwargs: Any,
) -> SupervisedResult:
    """One-shot convenience: supervised shard, merge, report."""
    with SupervisedIngestEngine(
        algorithm,
        eps,
        plan,
        durable,
        faults=faults,
        supervisor=supervisor,
        universe_log2=universe_log2,
        collect_metrics=collect_metrics,
        dtype=np.asarray(data).dtype,
        **kwargs,
    ) as engine:
        engine.ingest(data)
        return engine.finish()
