"""Checkpoint manager: periodic summary snapshots anchored to WAL offsets.

Replaying a long WAL from sequence zero makes recovery linear in stream
length.  Mergeable-summary checkpoints fix that: because every sketch in
the inventory serializes to a self-validating snapshot envelope
(:mod:`repro.core.snapshot`), the live summary can be persisted at any
batch boundary together with the WAL sequence number it covers, and
recovery becomes *newest valid checkpoint + WAL tail replay* — constant
checkpoint read plus a tail bounded by the checkpoint interval.

A checkpoint file ``ckpt-<index>.ck`` is one raw-payload envelope
wrapping::

    {"snapshot": <summary envelope bytes>, "wal_seq": <int>}

so the outer CRC32 covers the inner envelope and the offset — a flipped
bit anywhere fails decode, and :meth:`CheckpointManager.load_latest`
falls back past corrupt files to the newest intact one (counting the
skips).  Files are written to a temp name, fsynced, and renamed, so a
crash mid-write can never shadow an older good checkpoint with a
half-written new one.

The exactly-once argument: a checkpoint at ``wal_seq = s`` is taken
*after* batch ``s`` was applied to the summary and *before* batch
``s + 1``.  Recovery restores that state and replays strictly from
``s + 1``, so every batch is applied exactly once no matter where the
crash landed — before the append (batch lost, never acked), between
append and apply, after apply but before the next checkpoint, or during
the checkpoint write itself.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.core.errors import CorruptSummaryError
from repro.core.snapshot import decode_payload, encode_payload, restore, snapshot
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import record_event

_CKPT_PREFIX = "ckpt-"
_CKPT_SUFFIX = ".ck"


def _checkpoint_name(wal_seq: int) -> str:
    # wal_seq is -1 for an empty-log checkpoint; shift to keep the
    # zero-padded name sortable.
    return f"{_CKPT_PREFIX}{wal_seq + 1:016d}{_CKPT_SUFFIX}"


@dataclass
class Checkpoint:
    """One restored checkpoint: the summary and the WAL offset it covers."""

    summary: Any
    #: Highest WAL sequence number applied to ``summary``; replay starts
    #: at ``wal_seq + 1``.
    wal_seq: int
    path: Path


class CheckpointManager:
    """Persist and recover summary checkpoints in one directory.

    Args:
        directory: checkpoint directory (created if missing).
        keep: intact checkpoints retained by :meth:`prune` — more than
            one, so a corrupt newest file still leaves a fallback.
    """

    def __init__(self, directory: Union[str, Path], keep: int = 2) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = max(1, keep)
        #: Corrupt checkpoint files skipped by the most recent load.
        self.corrupt_skipped = 0

    def paths(self) -> List[Path]:
        """Checkpoint files, oldest first (name order = wal_seq order)."""
        return sorted(self.directory.glob(f"{_CKPT_PREFIX}*{_CKPT_SUFFIX}"))

    def oldest_covered_seq(self) -> Optional[int]:
        """WAL sequence covered by the *oldest* retained checkpoint.

        This is the WAL prune floor: recovery may have to fall back to
        the oldest checkpoint on disk (every newer one corrupt), and it
        can only replay forward from there if the WAL still holds every
        frame past that point.  Pruning through anything newer would
        turn checkpoint fallback into silent data loss.
        """
        paths = self.paths()
        if not paths:
            return None
        stem = paths[0].name[len(_CKPT_PREFIX): -len(_CKPT_SUFFIX)]
        try:
            return int(stem) - 1
        except ValueError:  # pragma: no cover - non-canonical file name
            return None

    def save(self, summary: Any, wal_seq: int) -> Path:
        """Write a checkpoint of ``summary`` covering ``wal_seq``.

        The write is atomic (temp file + fsync + rename): a crash during
        ``save`` leaves either the complete new checkpoint or none.
        """
        rec = obs_metrics.recorder()
        start = time.perf_counter_ns()
        blob = encode_payload(
            {"snapshot": snapshot(summary), "wal_seq": wal_seq}
        )
        path = self.directory / _checkpoint_name(wal_seq)
        tmp = path.with_suffix(".tmp")
        with obs_trace.span("durability.checkpoint", wal_seq=wal_seq):
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        if rec.enabled:
            rec.inc("durability.checkpoint.saved", 1)
            rec.observe(
                "durability.checkpoint.save_ns",
                time.perf_counter_ns() - start,
            )
        return path

    def load_latest(self, validate: bool = True) -> Optional[Checkpoint]:
        """The newest checkpoint that decodes and validates, or None.

        Corrupt files — failed envelope CRC, bad inner snapshot, or a
        restored summary failing its ``validate()`` self-check — are
        skipped (newest first) and counted in :attr:`corrupt_skipped`;
        recovery falls back to the next older checkpoint rather than
        failing outright.

        The invariant sweep runs on a *throwaway* restore: some
        ``validate()`` implementations normalize state (GK flushes its
        buffer), and the summary handed back must be the exact state
        that was checkpointed or recovered runs stop being bit-identical
        to uninterrupted ones.
        """
        self.corrupt_skipped = 0
        rec = obs_metrics.recorder()
        for path in reversed(self.paths()):
            try:
                payload = decode_payload(path.read_bytes())
                if validate:
                    restore(payload["snapshot"], validate=True)
                summary = restore(payload["snapshot"], validate=False)
                wal_seq = int(payload["wal_seq"])
            except (CorruptSummaryError, KeyError, OSError, TypeError):
                self.corrupt_skipped += 1
                if rec.enabled:
                    rec.inc("durability.checkpoint.corrupt_skipped", 1)
                record_event(
                    "checkpoint.fallback", skipped=path.name
                )
                continue
            return Checkpoint(summary, wal_seq, path)
        return None

    def prune(self, keep: Optional[int] = None) -> int:
        """Delete all but the newest ``keep`` checkpoints; returns count.

        Crash-safe for the same reason WAL pruning is: each deletion is
        one atomic unlink, and leftover *older* checkpoints are simply
        never preferred by :meth:`load_latest`.
        """
        keep = self.keep if keep is None else max(1, keep)
        removed = 0
        paths = self.paths()
        for path in paths[: max(0, len(paths) - keep)]:
            path.unlink(missing_ok=True)
            removed += 1
        if removed:
            rec = obs_metrics.recorder()
            if rec.enabled:
                rec.inc("durability.checkpoint.pruned", removed)
        return removed
