"""Segmented write-ahead log for update batches.

A crashed ingest process loses every summary it held in memory; the WAL
makes the *stream itself* the durable artifact.  Every batch handed to a
sketch is first appended here as one CRC32-framed record, so recovery
can rebuild the exact summary by replaying the tail that a checkpoint
does not already cover (see :mod:`repro.durability.checkpoint`).

Layout: the log is a directory of segment files ``wal-<index>.seg``.
Each segment starts with a header::

    offset  size  field
    0       4     magic  b"RQWL"
    4       2     format version (currently 1)
    6       2     length of the dtype string
    8       d     numpy dtype string (e.g. "<i8")

followed by frames, each::

    offset  size  field
    0       4     CRC32 over everything from offset 4 to the frame end
    4       4     payload length in bytes
    8       8     sequence number (int64, monotone from 0)
    16      ...   payload: the batch's raw ndarray bytes

A frame is atomic: recovery either replays all of a batch or none of it
(never a prefix), which is what makes checkpoint offsets exact — a
checkpoint covering sequence ``s`` means replay starts at ``s + 1``,
never mid-batch.

Torn writes: a crash (or a chaos ``truncate_wal`` fault) can leave the
*last* segment ending in a partial frame or a frame whose CRC no longer
matches.  :class:`WriteAheadLog` detects this on open and truncates the
tail back to the last intact frame — losing only writes that were never
acknowledged as durable under the active fsync policy.  A bad frame in
any *earlier* segment is not a torn tail but real corruption, and raises
:class:`~repro.core.errors.DurabilityError`.

Fsync policy (the durability/throughput knob, measured in
``benchmarks/bench_durability.py``):

* ``"always"`` — fsync after every append; a batch is durable before the
  sketch sees it.
* ``"rotate"`` — fsync when a segment seals (rotation, checkpoint,
  close); bounded loss of the active segment's buffered tail.
* ``"never"`` — flush to the OS but never fsync; the OS decides.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.errors import DurabilityError, InvalidParameterError
from repro.obs import metrics as obs_metrics
from repro.obs.events import record_event

#: Segment file magic ("Repro Quantile Write-ahead Log").
MAGIC = b"RQWL"

#: Current segment format version.
FORMAT_VERSION = 1

#: Segment header: magic, version, dtype-string length.
_SEG_HEADER = struct.Struct("<4sHH")

#: Frame header: crc32, payload length, sequence number.
_FRAME = struct.Struct("<IIq")

#: Accepted fsync policies.
FSYNC_POLICIES = ("always", "rotate", "never")

#: Default segment rotation threshold (bytes).
DEFAULT_SEGMENT_BYTES = 1 << 20

_SEGMENT_RE_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_RE_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


@dataclass
class _Segment:
    """Index entry for one on-disk segment."""

    index: int
    path: Path
    #: First/last frame sequence numbers; None for a frameless segment.
    first_seq: Optional[int]
    last_seq: Optional[int]


class WriteAheadLog:
    """Append-only, segmented, CRC-framed log of update batches.

    Args:
        directory: segment directory (created if missing).  Reopening an
            existing directory resumes sequence numbering after repairing
            any torn tail.
        dtype: element dtype of every batch (fixed per log; reopening
            with a different dtype raises).
        segment_bytes: rotation threshold — a segment that reaches this
            size is sealed and a fresh one started.
        fsync: one of :data:`FSYNC_POLICIES`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        dtype: np.dtype = np.dtype(np.int64),
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: str = "rotate",
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise InvalidParameterError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < _SEG_HEADER.size + _FRAME.size:
            raise InvalidParameterError(
                f"segment_bytes {segment_bytes!r} is below one header + "
                "frame"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.dtype = np.dtype(dtype)
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self._segments: List[_Segment] = []
        self._fh: Optional[IO[bytes]] = None
        self._active: Optional[_Segment] = None
        self._active_size = 0
        self._next_seq = 0
        self._closed = False
        #: Torn tails repaired (truncated) on the most recent open.
        self.repaired_tails = 0
        self._scan()

    # -- scanning / repair ---------------------------------------------

    def _segment_paths(self) -> List[Tuple[int, Path]]:
        out = []
        for path in sorted(self.directory.glob(f"{_SEGMENT_RE_PREFIX}*")):
            stem = path.name[len(_SEGMENT_RE_PREFIX):]
            if not stem.endswith(_SEGMENT_SUFFIX):
                continue
            try:
                out.append((int(stem[: -len(_SEGMENT_SUFFIX)]), path))
            except ValueError:
                continue
        return out

    def _scan(self) -> None:
        """Index every segment, repairing a torn tail on the last one."""
        rec = obs_metrics.recorder()
        paths = self._segment_paths()
        for position, (index, path) in enumerate(paths):
            is_last = position == len(paths) - 1
            frames, good_end, problem = self._scan_segment(path)
            if problem is not None and not is_last:
                raise DurabilityError(
                    f"WAL segment {path.name} is corrupt mid-log "
                    f"({problem}); only the final segment may have a "
                    "torn tail"
                )
            if problem is not None:
                # Torn tail: drop everything past the last intact frame.
                self.repaired_tails += 1
                with open(path, "rb+") as fh:
                    fh.truncate(good_end)
                if rec.enabled:
                    rec.inc("durability.wal.torn_tails", 1)
                record_event(
                    "wal.torn_tail",
                    segment=path.name,
                    truncated_to=good_end,
                    problem=problem,
                )
            first = frames[0][0] if frames else None
            last = frames[-1][0] if frames else None
            self._segments.append(_Segment(index, path, first, last))
            if last is not None:
                self._next_seq = max(self._next_seq, last + 1)

    def _scan_segment(
        self, path: Path
    ) -> Tuple[List[Tuple[int, int]], int, Optional[str]]:
        """Read one segment; returns (frames, good_end, problem).

        ``frames`` is a list of ``(seq, offset)``; ``good_end`` the byte
        offset just past the last intact frame; ``problem`` a human
        description of a torn/corrupt tail (None when clean).
        """
        frames: List[Tuple[int, int]] = []
        with open(path, "rb") as fh:
            header = fh.read(_SEG_HEADER.size)
            if len(header) < _SEG_HEADER.size:
                raise DurabilityError(
                    f"WAL segment {path.name} is shorter than its header"
                )
            magic, version, dtype_len = _SEG_HEADER.unpack(header)
            if magic != MAGIC:
                raise DurabilityError(
                    f"WAL segment {path.name} has bad magic {magic!r}"
                )
            if version != FORMAT_VERSION:
                raise DurabilityError(
                    f"WAL segment {path.name} has unsupported format "
                    f"version {version}"
                )
            dtype_bytes = fh.read(dtype_len)
            if len(dtype_bytes) < dtype_len:
                raise DurabilityError(
                    f"WAL segment {path.name} truncated inside its header"
                )
            seg_dtype = np.dtype(dtype_bytes.decode("ascii"))
            if seg_dtype != self.dtype:
                raise DurabilityError(
                    f"WAL segment {path.name} carries dtype {seg_dtype}, "
                    f"log opened with {self.dtype}"
                )
            good_end = fh.tell()
            while True:
                head = fh.read(_FRAME.size)
                if not head:
                    return frames, good_end, None
                if len(head) < _FRAME.size:
                    return frames, good_end, "partial frame header"
                crc, length, seq = _FRAME.unpack(head)
                payload = fh.read(length)
                if len(payload) < length:
                    return frames, good_end, "truncated frame payload"
                if zlib.crc32(head[4:] + payload) != crc:
                    return frames, good_end, "frame checksum mismatch"
                frames.append((seq, good_end))
                good_end = fh.tell()

    # -- appending ------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will be assigned."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest appended batch (-1 when empty)."""
        return self._next_seq - 1

    def ensure_next_seq(self, seq: int) -> None:
        """Raise the numbering floor so future appends start at ``seq``.

        Recovery calls this with ``checkpoint_seq + 1`` after a prune may
        have deleted every segment — sequence numbers must stay monotone
        across the whole log lifetime or replay-by-offset breaks.
        """
        if seq > self._next_seq:
            self._next_seq = seq

    def _open_active(self) -> None:
        if self._fh is not None:
            return
        if self._closed:
            raise DurabilityError("write-ahead log is closed")
        index = self._segments[-1].index + 1 if self._segments else 0
        segment = _Segment(
            index, self.directory / _segment_name(index), None, None
        )
        dtype_bytes = self.dtype.str.encode("ascii")
        header = _SEG_HEADER.pack(
            MAGIC, FORMAT_VERSION, len(dtype_bytes)
        ) + dtype_bytes
        fh = open(segment.path, "wb")
        fh.write(header)
        fh.flush()
        self._fh = fh
        self._active = segment
        self._active_size = len(header)
        self._segments.append(segment)
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("durability.wal.rotations", 1)

    def append(self, values: np.ndarray) -> int:
        """Append one batch; returns its assigned sequence number.

        The batch is durable per the fsync policy *before* this returns,
        so the caller may apply it to the live sketch immediately after.
        """
        if self._closed:
            raise DurabilityError("write-ahead log is closed")
        start = time.perf_counter_ns()
        batch = np.ascontiguousarray(np.asarray(values, dtype=self.dtype))
        payload = batch.tobytes()
        seq = self._next_seq
        body = struct.pack("<Iq", len(payload), seq) + payload
        frame = struct.pack("<I", zlib.crc32(body)) + body
        self._open_active()
        fh = self._fh
        if fh is None:  # pragma: no cover - _open_active guarantees it
            raise DurabilityError("write-ahead log has no active segment")
        fh.write(frame)
        fh.flush()
        if self.fsync == "always":
            os.fsync(fh.fileno())
        self._next_seq = seq + 1
        self._active_size += len(frame)
        active = self._active
        if active is not None:
            if active.first_seq is None:
                active.first_seq = seq
            active.last_seq = seq
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("durability.wal.appends", 1)
            rec.inc("durability.wal.bytes", len(frame))
            if self.fsync == "always":
                rec.inc("durability.wal.fsyncs", 1)
            rec.summary("latency.wal_append_ns").observe(
                time.perf_counter_ns() - start
            )
        if self._active_size >= self.segment_bytes:
            self._seal_active()
        return seq

    def _seal_active(self) -> None:
        fh = self._fh
        if fh is None:
            return
        fh.flush()
        if self.fsync in ("always", "rotate"):
            os.fsync(fh.fileno())
            rec = obs_metrics.recorder()
            if rec.enabled:
                rec.inc("durability.wal.fsyncs", 1)
        fh.close()
        self._fh = None
        self._active = None
        self._active_size = 0

    def sync(self) -> None:
        """Force the active segment to durable storage (any policy)."""
        fh = self._fh
        if fh is not None:
            fh.flush()
            if self.fsync != "never":
                os.fsync(fh.fileno())
                rec = obs_metrics.recorder()
                if rec.enabled:
                    rec.inc("durability.wal.fsyncs", 1)

    # -- replay ---------------------------------------------------------

    def replay(
        self, after_seq: int = -1
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(seq, batch)`` for every frame with ``seq > after_seq``.

        Frames are yielded in sequence order.  Batches at or below
        ``after_seq`` — those a checkpoint already covers — are skipped
        whole: replay never lands mid-batch because frames are atomic.
        """
        fh = self._fh
        if fh is not None:
            fh.flush()
        for segment in self._segments:
            if segment.last_seq is None or segment.last_seq <= after_seq:
                continue
            frames, _end, problem = self._scan_segment(segment.path)
            if problem is not None and segment is not self._segments[-1]:
                raise DurabilityError(
                    f"WAL segment {segment.path.name} corrupt during "
                    f"replay ({problem})"
                )
            with open(segment.path, "rb") as fh:
                for seq, offset in frames:
                    if seq <= after_seq:
                        continue
                    fh.seek(offset)
                    head = fh.read(_FRAME.size)
                    _crc, length, _seq = _FRAME.unpack(head)
                    payload = fh.read(length)
                    yield seq, np.frombuffer(
                        payload, dtype=self.dtype
                    ).copy()

    def batches(self) -> int:
        """Total frames currently indexed (cheap; from the scan index)."""
        total = 0
        for segment in self._segments:
            if segment.first_seq is not None and segment.last_seq is not None:
                total += segment.last_seq - segment.first_seq + 1
        return total

    def size_bytes(self) -> int:
        """On-disk size of every segment file."""
        return sum(
            seg.path.stat().st_size
            for seg in self._segments
            if seg.path.exists()
        )

    # -- pruning --------------------------------------------------------

    def prune_through(self, seq: int) -> int:
        """Delete segments whose every frame is covered by ``seq``.

        The active (still-writable) segment is never deleted.  Returns
        the number of segments removed.  Deletion is per-file and
        crash-safe: an interrupted prune leaves extra *covered* segments
        behind, which a later replay skips by sequence number.
        """
        removed = 0
        survivors: List[_Segment] = []
        for segment in self._segments:
            deletable = (
                segment is not self._active
                and segment.last_seq is not None
                and segment.last_seq <= seq
            )
            if deletable:
                segment.path.unlink(missing_ok=True)
                removed += 1
            else:
                survivors.append(segment)
        self._segments = survivors
        rec = obs_metrics.recorder()
        if removed and rec.enabled:
            rec.inc("durability.wal.pruned_segments", removed)
        return removed

    # -- lifecycle ------------------------------------------------------

    def rotate(self) -> None:
        """Seal the active segment now (next append opens a fresh one)."""
        self._seal_active()

    def close(self) -> None:
        """Seal and close the log; further appends raise."""
        if self._closed:
            return
        self._seal_active()
        self._closed = True

    def drop(self) -> None:
        """Abandon the log as a crash would: no seal, no fsync.

        The chaos harness uses this to simulate a killed process.  Data
        already flushed to the OS survives (as it would a real process
        kill); nothing extra is made durable on the way out.
        """
        if self._closed:
            return
        fh = self._fh
        if fh is not None:
            fh.close()
        self._fh = None
        self._active = None
        self._active_size = 0
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
