"""Command-line interface: streaming quantiles over a file or stdin.

Usage examples::

    # median and tail quantiles of a column of numbers
    python -m repro --eps 0.001 --phi 0.5,0.99 < values.txt

    # deterministic guarantee, explicit algorithm
    python -m repro -a gk_array --eps 0.0001 --phi 0.5 values.txt

    # integer data over a fixed universe, turnstile algorithm
    python -m repro -a dcs --universe-log2 32 --eps 0.01 --phi 0.9 ints.txt

Input is one number per line (blank lines skipped).  Values are parsed
as floats unless the chosen algorithm needs a fixed universe, in which
case they must be non-negative integers below ``2**universe_log2``.
The report shows each requested quantile plus the summary's memory
footprint and throughput.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Iterable, Iterator, List, Optional, TextIO

from repro.core.errors import ReproError
from repro.core.registry import algorithms
from repro.evaluation.harness import build_sketch
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import report as metrics_report
from repro.obs.export import to_json as metrics_to_json


def _parse_phis(text: str) -> List[float]:
    try:
        phis = [float(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad phi list {text!r}") from exc
    if not phis or not all(0.0 <= phi <= 1.0 for phi in phis):
        raise argparse.ArgumentTypeError(
            f"phis must be in [0, 1], got {text!r}"
        )
    return phis


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate quantiles over a stream of numbers.",
    )
    parser.add_argument(
        "input", nargs="?", default="-",
        help="input file of one number per line (default: stdin)",
    )
    parser.add_argument(
        "-a", "--algorithm", default="gk_array", choices=algorithms(),
        help="summary algorithm (default: gk_array)",
    )
    parser.add_argument(
        "--eps", type=float, default=1e-3,
        help="rank error budget as a fraction of n (default: 1e-3)",
    )
    parser.add_argument(
        "--phi", type=_parse_phis, default=[0.5],
        help="comma-separated quantile fractions (default: 0.5)",
    )
    parser.add_argument(
        "--universe-log2", type=int, default=None,
        help="log2 of the universe (required by fixed-universe "
             "algorithms: qdigest, dcm, dcs, post, rss)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed for randomized algorithms",
    )
    parser.add_argument(
        "--int", dest="as_int", action="store_true",
        help="parse values as integers",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="K",
        help="shard the stream across K worker processes and merge "
             "(mergeable algorithms only; see "
             "repro.core.registry.mergeable_algorithms())",
    )
    parser.add_argument(
        "--durable-dir", default=None, metavar="DIR",
        help="crash-safe ingest: write-ahead-log every batch to DIR and "
             "checkpoint the summary; reopening the same DIR recovers "
             "the durable state and resumes (see docs/durability.md). "
             "With --parallel the run is driven by the self-healing "
             "supervised engine",
    )
    parser.add_argument(
        "--json", dest="as_json", action="store_true",
        help="emit the report as a single JSON object",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect instrumentation during the run and print a "
             "metrics report (or embed it, with --json)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record tracing spans and write them as JSONL to PATH",
    )
    parser.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve live telemetry over HTTP for the duration of the "
             "run: /metrics (Prometheus), /healthz, /snapshot, /tracez, "
             "/flight, /timeline on 127.0.0.1:PORT (0 picks a free "
             "port, printed to stderr).  Implies --metrics",
    )
    parser.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="flight recorder: keep a bounded ring of structured events "
             "and dump it to DIR as JSONL whenever the run degrades "
             "(worker restart/abandon, torn WAL tail, checkpoint "
             "fallback, chaos fault)",
    )
    return parser


def _read_values(source: Iterable[str], as_int: bool) -> Iterator[float]:
    for lineno, line in enumerate(source, 1):
        line = line.strip()
        if not line:
            continue
        try:
            yield int(line) if as_int else float(line)
        except ValueError:
            raise ReproError(
                f"line {lineno}: cannot parse {line!r} as a number"
            ) from None


def _scalar(value: Any) -> Any:
    """Convert numpy scalars to plain Python for JSON output."""
    return value.item() if hasattr(value, "item") else value


def run(
    argv: Optional[List[str]] = None,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> int:
    """CLI entry point; returns a process exit code."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["serve"]:
        # The query-tier daemon has its own parser and long-running
        # event loop; hand the rest of the argv straight over.
        from repro.serve.daemon import main as serve_main

        return serve_main(list(argv[1:]))
    args = make_parser().parse_args(argv)

    registry = None
    tracer = None
    flight_rec = None
    server = None
    previous_recorder = obs_metrics.recorder()
    if args.telemetry_port is not None:
        args.metrics = True  # a server over a null recorder shows nothing
    if args.metrics:
        registry = obs_metrics.enable(obs_metrics.MetricsRegistry())
    if args.trace is not None:
        tracer = obs_trace.enable_tracing(obs_trace.Tracer())
    if args.flight_dir is not None:
        from repro.obs.events import enable_flight

        flight_rec = enable_flight(args.flight_dir)
    if args.telemetry_port is not None:
        from repro.obs.server import TelemetryServer

        server = TelemetryServer(port=args.telemetry_port).start()
        print(
            f"# telemetry: http://{server.host}:{server.port}/metrics",
            file=sys.stderr,
        )
    try:
        return _run(args, stdin, stdout, registry)
    finally:
        if server is not None:
            server.stop()
        if flight_rec is not None:
            from repro.obs.events import disable_flight

            disable_flight()
            for path in flight_rec.dump_paths:
                print(f"# flight record: {path}", file=sys.stderr)
        if args.metrics:
            obs_metrics._recorder = previous_recorder
        if tracer is not None:
            obs_trace.disable_tracing()
            tracer.write(args.trace)


def _run(
    args: argparse.Namespace,
    stdin: TextIO,
    stdout: TextIO,
    registry: Optional[obs_metrics.MetricsRegistry],
) -> int:
    def fail(message: str, code: int) -> int:
        if args.as_json:
            print(json.dumps({"error": message}), file=stdout)
        else:
            print(message if code == 1 else f"error: {message}", file=stdout)
        return code

    needs_int = args.universe_log2 is not None or args.algorithm in (
        "qdigest", "dcm", "dcs", "post", "rss"
    )
    if args.parallel is not None and args.parallel < 1:
        return fail(f"--parallel must be >= 1, got {args.parallel}", 2)
    durable_info: Optional[dict] = None
    try:
        if args.input == "-":
            lines: TextIO = stdin
        else:
            lines = open(args.input)
        if args.parallel is not None:
            import numpy as np

            from repro.parallel.engine import parallel_feed
            from repro.parallel.plan import ShardPlan

            as_int = args.as_int or needs_int
            values = np.asarray(
                list(_read_values(lines, as_int)),
                dtype=np.int64 if as_int else np.float64,
            )
            if args.input != "-":
                lines.close()
            plan = ShardPlan(
                seed=args.seed if args.seed is not None else 0,
                shards=args.parallel,
            )
            build_s = 0.0  # workers build their shard sketches
            if len(values) == 0:
                return fail("no input values", 1)
            if args.durable_dir is not None:
                from repro.durability import supervised_feed

                start = time.perf_counter()
                result = supervised_feed(
                    args.algorithm, values, args.eps, plan,
                    args.durable_dir,
                    universe_log2=args.universe_log2,
                    collect_metrics=registry is not None,
                )
                elapsed = time.perf_counter() - start
                if result.summary is None:
                    return fail("supervised run lost every shard", 2)
                sketch = result.summary
                durable_info = {
                    "coverage": result.coverage,
                    "effective_eps": result.effective_eps,
                    "restarts": sum(result.restarts),
                }
            else:
                sketch, elapsed = parallel_feed(
                    args.algorithm, values, args.eps, plan,
                    universe_log2=args.universe_log2,
                    collect_metrics=registry is not None,
                )
        elif args.durable_dir is not None:
            import numpy as np

            from repro.durability import DurableIngest

            as_int = args.as_int or needs_int
            values = np.asarray(
                list(_read_values(lines, as_int)),
                dtype=np.int64 if as_int else np.float64,
            )
            if args.input != "-":
                lines.close()
            build_start = time.perf_counter()
            store = DurableIngest(
                args.durable_dir, args.algorithm, args.eps,
                universe_log2=args.universe_log2, seed=args.seed,
                dtype=values.dtype,
            )
            build_s = time.perf_counter() - build_start
            start = time.perf_counter()
            for lo in range(0, len(values), 4096):
                store.ingest(values[lo: lo + 4096])
            sketch = store.finish()
            elapsed = time.perf_counter() - start
            durable_info = {
                "recovered": store.recovery.recovered,
                "replayed_batches": store.recovery.replayed_batches,
            }
        else:
            build_start = time.perf_counter()
            sketch = build_sketch(
                args.algorithm, args.eps,
                universe_log2=args.universe_log2, seed=args.seed,
            )
            build_s = time.perf_counter() - build_start
            start = time.perf_counter()
            sketch.extend(_read_values(lines, args.as_int or needs_int))
            elapsed = time.perf_counter() - start
            if args.input != "-":
                lines.close()
        if sketch.n == 0:
            return fail("no input values", 1)
        query_start = time.perf_counter()
        answers = sketch.query_batch(args.phi)
        query_s = time.perf_counter() - query_start
        rate = sketch.n / elapsed / 1e3 if elapsed > 0 else float("inf")
        if registry is not None:
            registry.inc("evaluation.updates", sketch.n, algo=sketch.name)
            registry.set("evaluation.stream.n", sketch.n)
            for phase, seconds in (
                ("build", build_s), ("update", elapsed), ("query", query_s)
            ):
                registry.observe(
                    "evaluation.phase_ns", 1e9 * seconds, phase=phase
                )
        if args.as_json:
            payload = {
                "algorithm": sketch.name,
                "eps": args.eps,
                "n": sketch.n,
                "quantiles": [
                    {"phi": phi, "value": _scalar(answer)}
                    for phi, answer in zip(args.phi, answers)
                ],
                "update_time_us": 1e6 * elapsed / sketch.n,
                "rate_per_s": sketch.n / elapsed if elapsed > 0 else None,
                "memory_bytes": sketch.size_bytes(),
                "peak_words": sketch.size_words(),
                "phases": {
                    "build_s": build_s,
                    "update_s": elapsed,
                    "query_s": query_s,
                },
            }
            if args.parallel is not None:
                payload["workers"] = args.parallel
            if durable_info is not None:
                payload["durable"] = durable_info
            if registry is not None:
                payload.update(metrics_to_json(registry))
            print(json.dumps(payload), file=stdout)
        else:
            for phi, answer in zip(args.phi, answers):
                print(f"phi={phi:g}\t{answer}", file=stdout)
            print(
                f"# n={sketch.n} algorithm={sketch.name} eps={args.eps:g} "
                f"memory={sketch.size_bytes()}B rate={rate:.0f}k/s",
                file=stdout,
            )
            if durable_info is not None:
                note = " ".join(
                    f"{key}={value}" for key, value in durable_info.items()
                )
                print(f"# durable: {note}", file=stdout)
            if registry is not None:
                print("", file=stdout)
                print(metrics_report(registry), file=stdout)
        return 0
    except ReproError as exc:
        return fail(str(exc), 2)


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run())


if __name__ == "__main__":  # pragma: no cover - python -m repro.cli
    main()
