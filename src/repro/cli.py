"""Command-line interface: streaming quantiles over a file or stdin.

Usage examples::

    # median and tail quantiles of a column of numbers
    python -m repro --eps 0.001 --phi 0.5,0.99 < values.txt

    # deterministic guarantee, explicit algorithm
    python -m repro -a gk_array --eps 0.0001 --phi 0.5 values.txt

    # integer data over a fixed universe, turnstile algorithm
    python -m repro -a dcs --universe-log2 32 --eps 0.01 --phi 0.9 ints.txt

Input is one number per line (blank lines skipped).  Values are parsed
as floats unless the chosen algorithm needs a fixed universe, in which
case they must be non-negative integers below ``2**universe_log2``.
The report shows each requested quantile plus the summary's memory
footprint and throughput.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, List, Optional

from repro.core.errors import ReproError
from repro.core.registry import algorithms
from repro.evaluation.harness import build_sketch


def _parse_phis(text: str) -> List[float]:
    try:
        phis = [float(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad phi list {text!r}") from exc
    if not phis or not all(0.0 <= phi <= 1.0 for phi in phis):
        raise argparse.ArgumentTypeError(
            f"phis must be in [0, 1], got {text!r}"
        )
    return phis


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate quantiles over a stream of numbers.",
    )
    parser.add_argument(
        "input", nargs="?", default="-",
        help="input file of one number per line (default: stdin)",
    )
    parser.add_argument(
        "-a", "--algorithm", default="gk_array", choices=algorithms(),
        help="summary algorithm (default: gk_array)",
    )
    parser.add_argument(
        "--eps", type=float, default=1e-3,
        help="rank error budget as a fraction of n (default: 1e-3)",
    )
    parser.add_argument(
        "--phi", type=_parse_phis, default=[0.5],
        help="comma-separated quantile fractions (default: 0.5)",
    )
    parser.add_argument(
        "--universe-log2", type=int, default=None,
        help="log2 of the universe (required by fixed-universe "
             "algorithms: qdigest, dcm, dcs, post, rss)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed for randomized algorithms",
    )
    parser.add_argument(
        "--int", dest="as_int", action="store_true",
        help="parse values as integers",
    )
    return parser


def _read_values(source: Iterable[str], as_int: bool) -> Iterable:
    for lineno, line in enumerate(source, 1):
        line = line.strip()
        if not line:
            continue
        try:
            yield int(line) if as_int else float(line)
        except ValueError:
            raise ReproError(
                f"line {lineno}: cannot parse {line!r} as a number"
            ) from None


def run(argv: Optional[List[str]] = None, stdin=None, stdout=None) -> int:
    """CLI entry point; returns a process exit code."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    args = make_parser().parse_args(argv)

    needs_int = args.universe_log2 is not None or args.algorithm in (
        "qdigest", "dcm", "dcs", "post", "rss"
    )
    try:
        sketch = build_sketch(
            args.algorithm, args.eps,
            universe_log2=args.universe_log2, seed=args.seed,
        )
        if args.input == "-":
            lines: Iterable[str] = stdin
        else:
            lines = open(args.input)
        start = time.perf_counter()
        sketch.extend(_read_values(lines, args.as_int or needs_int))
        elapsed = time.perf_counter() - start
        if args.input != "-":
            lines.close()
        if sketch.n == 0:
            print("no input values", file=stdout)
            return 1
        for phi, answer in zip(args.phi, sketch.quantiles(args.phi)):
            print(f"phi={phi:g}\t{answer}", file=stdout)
        rate = sketch.n / elapsed / 1e3 if elapsed > 0 else float("inf")
        print(
            f"# n={sketch.n} algorithm={sketch.name} eps={args.eps:g} "
            f"memory={sketch.size_bytes()}B rate={rate:.0f}k/s",
            file=stdout,
        )
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=stdout)
        return 2


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run())
