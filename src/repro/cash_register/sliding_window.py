"""Quantiles over sliding windows — the extension of Arasu and Manku
cited by the paper as [3].

Answers quantile queries over the **last W elements** of the stream in
space sublinear in W.  The structure here is the practical chunked
coreset design (a simplification of [3]'s dyadic levels):

* the stream is cut into chunks of ``c = eps * W / 2`` consecutive
  elements;
* a finished chunk is compressed into an *equi-spaced coreset*: every
  ``ceil(eps * c / 2)``-th element of its sorted contents, each carrying
  that many elements' weight — a static summary with rank error at most
  ``(eps / 2) * c`` inside the chunk;
* only chunks overlapping the window are retained (at most
  ``2 / eps + 1`` of them), plus the raw in-progress buffer.

A rank query sums: exact ranks from the raw buffer, weighted coreset
ranks from fully-live chunks, and the straddling oldest chunk scaled by
its overlap fraction.  Total rank error is at most ``eps * W``: the
per-chunk coreset errors sum to ``(eps / 2) * W`` and the straddling
chunk's fractional attribution adds at most one chunk, ``(eps / 2) * W``.

Space: ``O(1 / eps**2)`` samples plus the ``eps * W / 2`` element raw
buffer — the classic window/accuracy tradeoff of [3] up to log factors.
The structure only beats storing the raw window when ``W >> 4 / eps**2``;
below that regime just keep a deque.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import (
    QuantileSketch,
    reject_nan,
    to_element_array,
    validate_eps,
    validate_phi,
)
from repro.core.errors import (
    CorruptSummaryError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.core.registry import register
from repro.core.snapshot import snapshottable


class _Chunk:
    """A compressed coreset of one stream chunk."""

    __slots__ = ("start", "end", "samples", "weight")

    def __init__(
        self, start: int, end: int, samples: np.ndarray, weight: float
    ) -> None:
        self.start = start  # position of the chunk's first element
        self.end = end  # one past its last element
        self.samples = samples  # sorted representatives
        self.weight = weight  # elements represented per sample


@snapshottable("sliding_window")
@register("sliding_window")
class SlidingWindowQuantiles(QuantileSketch):
    """eps-approximate quantiles over the last ``window`` elements.

    Args:
        eps: rank error as a fraction of the window size.
        window: number of most recent elements a query covers (``W``).
    """

    name = "SlidingWindow"
    deterministic = True
    comparison_based = True

    def __init__(self, eps: float, window: int = 65536) -> None:
        self.eps = validate_eps(eps)
        if window < 4:
            raise InvalidParameterError(
                f"window must be >= 4, got {window!r}"
            )
        self.window = int(window)
        self._chunk_size = max(1, math.floor(self.eps * self.window / 2.0))
        self._stride = max(1, math.ceil(self.eps * self._chunk_size / 2.0))
        self._chunks: List[_Chunk] = []
        self._buffer: List = []
        self._count = 0  # total stream length so far

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of elements the next query covers (≤ window)."""
        return min(self._count, self.window)

    @property
    def stream_length(self) -> int:
        """Total elements ever seen."""
        return self._count

    def update(self, value) -> None:
        reject_nan(value)
        self._buffer.append(value)
        self._count += 1
        if len(self._buffer) >= self._chunk_size:
            self._seal_chunk()

    def _seal_chunk(self) -> None:
        data = np.sort(to_element_array(self._buffer))
        end = self._count
        start = end - len(data)
        # Equi-spaced coreset: sample the stride/2-th, (3/2)stride-th, ...
        # element so each sample sits mid-run of the elements it stands
        # for (halves the worst-case rank offset).
        idx = np.arange(self._stride // 2, len(data), self._stride)
        if len(idx) == 0:
            idx = np.asarray([len(data) // 2])
        samples = data[idx]
        weight = len(data) / len(samples)
        self._chunks.append(_Chunk(start, end, samples, weight))
        self._buffer = []
        self._expire()

    def _expire(self) -> None:
        horizon = self._count - self.window
        self._chunks = [c for c in self._chunks if c.end > horizon]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _live_parts(self) -> List[Tuple[np.ndarray, float]]:
        """(sorted_values, per-sample weight) pairs covering the window."""
        horizon = self._count - self.window
        parts: List[Tuple[np.ndarray, float]] = []
        for chunk in self._chunks:
            if chunk.end <= horizon:
                continue
            overlap = (chunk.end - max(chunk.start, horizon)) / (
                chunk.end - chunk.start
            )
            parts.append((chunk.samples, chunk.weight * overlap))
        if self._buffer:
            parts.append((np.sort(to_element_array(self._buffer)), 1.0))
        return parts

    def rank(self, value) -> float:
        """Estimated number of in-window elements smaller than ``value``."""
        total = 0.0
        for samples, weight in self._live_parts():
            total += weight * float(np.searchsorted(samples, value, "left"))
        return total

    def query(self, phi: float):
        """Approximate ``phi``-quantile of the last ``window`` elements."""
        validate_phi(phi)
        self._require_nonempty()
        parts = self._live_parts()
        values = np.concatenate([samples for samples, _ in parts])
        weights = np.concatenate(
            [np.full(len(s), w, dtype=np.float64) for s, w in parts]
        )
        order = np.argsort(values, kind="mergesort")
        values = values[order]
        cum = np.concatenate([[0.0], np.cumsum(weights[order])[:-1]])
        target = phi * self.n
        return values[int(np.argmin(np.abs(cum - target)))]

    def query_batch(self, phis) -> list:
        """One snapshot flatten shared by every ``phi``.  Keeps the
        argmin scan per query: chunk weights are expiry-scaled fractions
        that can be zero, so the strictly-increasing-cum trick used by
        the integer-weight summaries does not apply here."""
        parts = self._live_parts()
        if not parts:
            self._require_nonempty()
        values = np.concatenate([samples for samples, _ in parts])
        weights = np.concatenate(
            [np.full(len(s), w, dtype=np.float64) for s, w in parts]
        )
        order = np.argsort(values, kind="mergesort")
        values = values[order]
        cum = np.concatenate([[0.0], np.cumsum(weights[order])[:-1]])
        out = []
        for phi in phis:
            validate_phi(phi)
            target = phi * self.n
            out.append(values[int(np.argmin(np.abs(cum - target)))])
        return out

    def validate(self) -> "SlidingWindowQuantiles":
        """Check the window structure's invariants; return ``self``.

        Verified: the stream count is a non-negative integer, chunks
        cover consecutive non-overlapping ranges ending at or before the
        current position, each chunk carries sorted samples with a
        positive weight, and the raw buffer has not outgrown the chunk
        size.  Called by :func:`repro.core.snapshot.restore`.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._count, int) or self._count < 0:
            raise CorruptSummaryError(
                f"SlidingWindow: bad stream count {self._count!r}"
            )
        prev_end = None
        for chunk in self._chunks:
            if chunk.end <= chunk.start:
                raise CorruptSummaryError(
                    f"SlidingWindow: chunk range [{chunk.start}, "
                    f"{chunk.end}) is empty or inverted"
                )
            if chunk.end > self._count:
                raise CorruptSummaryError(
                    f"SlidingWindow: chunk ends at {chunk.end} beyond "
                    f"stream position {self._count}"
                )
            if prev_end is not None and chunk.start < prev_end:
                raise CorruptSummaryError(
                    "SlidingWindow: chunks overlap or are out of order"
                )
            prev_end = chunk.end
            if not (chunk.weight > 0):
                raise CorruptSummaryError(
                    f"SlidingWindow: chunk weight {chunk.weight!r} <= 0"
                )
            samples = np.asarray(chunk.samples)
            if samples.ndim != 1 or len(samples) == 0:
                raise CorruptSummaryError(
                    "SlidingWindow: chunk samples must be a non-empty "
                    "1-D array"
                )
            if len(samples) > 1 and np.any(samples[:-1] > samples[1:]):
                raise CorruptSummaryError(
                    "SlidingWindow: chunk samples out of order"
                )
        if len(self._buffer) > self._chunk_size:
            raise CorruptSummaryError(
                f"SlidingWindow: raw buffer holds {len(self._buffer)} "
                f"elements, chunk size is {self._chunk_size}"
            )
        return self

    def size_words(self) -> int:
        """Samples plus chunk bookkeeping plus the raw buffer capacity."""
        sample_words = sum(len(c.samples) + 4 for c in self._chunks)
        return sample_words + self._chunk_size

    def _require_nonempty(self) -> None:
        if self._count <= 0:
            raise EmptySummaryError(
                "SlidingWindow: cannot query an empty summary"
            )
