"""Cash-register (insertion-only) quantile algorithms (Section 2)."""

from repro.cash_register.biased import BiasedQuantiles
from repro.cash_register.gk_adaptive import GKAdaptive
from repro.cash_register.gk_array import GKArray
from repro.cash_register.gk_base import (
    GKBase,
    check_gk_invariants,
    gk_query,
    gk_rank,
)
from repro.cash_register.gk_theory import GKTheory, band
from repro.cash_register.mrl99 import MRL99, weighted_collapse
from repro.cash_register.qdigest import QDigest
from repro.cash_register.random_sketch import RandomSketch
from repro.cash_register.sampling import ReservoirSampling
from repro.cash_register.sliding_window import SlidingWindowQuantiles

__all__ = [
    "BiasedQuantiles",
    "GKAdaptive",
    "GKArray",
    "GKBase",
    "GKTheory",
    "MRL99",
    "QDigest",
    "RandomSketch",
    "ReservoirSampling",
    "SlidingWindowQuantiles",
    "band",
    "check_gk_invariants",
    "gk_query",
    "gk_rank",
    "weighted_collapse",
]
