"""GKAdaptive — the heap-assisted adaptive GK variant (Section 2.1.1).

This is the variant Greenwald and Khanna actually implemented in [15],
with the removable-tuple search engineered as in the journal paper:

1. Insert ``v`` with ``Delta = g_i + Delta_i - 1`` where ``(v_i, g_i,
   Delta_i)`` is the successor tuple (``Delta = 0`` when ``v`` is a new
   minimum or maximum — its rank is known exactly at that moment).
2. After each insertion, try to remove one *removable* tuple: a tuple
   ``t`` with successor ``s`` is removable when ``g_t + g_s + Delta_s <=
   floor(2 * eps * n)``.  The candidate with the smallest such key sits on
   top of a min-heap; if the top is not removable, nothing is, and the
   summary grows by one tuple.

COMPRESS is never called, so the ``O((1/eps) log(eps n))`` bound of
GKTheory is not guaranteed — but empirically this variant is smaller
(Section 4.2).

Implementation notes.  Tuples are nodes of a doubly-linked list.  A
parallel Python list, kept in value order but allowed to contain dead
nodes (tombstones), provides O(log) successor search via ``bisect``; it is
compacted whenever more than half its nodes are dead.  The heap holds
``(key, uid)`` entries with lazy invalidation: every time a node's key
changes, a fresh entry is pushed; a popped entry whose key is stale is
re-pushed at its current value.  Keys therefore always cover the true
minimum, and a single heap inspection per update suffices.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
from typing import List, Optional

import numpy as np

from repro.cash_register.gk_base import GKBase
from repro.cash_register.gk_batch import (
    merge_sorted_run,
    merge_sorted_run_scalar,
)
from repro.core.base import reject_nan, to_element_array
from repro.core.errors import InvalidParameterError
from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.obs import metrics as obs_metrics

#: Batches below this length go through the scalar update loop — the
#: node-rebuild cost of the merge path only pays off past it.
_MIN_BATCH = 64


class _Node:
    """One GK tuple, wired into the doubly-linked list."""

    __slots__ = ("value", "g", "delta", "prev", "next", "alive", "uid")

    def __init__(self, value, g: int, delta: int, uid: int) -> None:
        self.value = value
        self.g = g
        self.delta = delta
        self.prev: Optional[_Node] = None
        self.next: Optional[_Node] = None
        self.alive = True
        self.uid = uid


@snapshottable("gk_adaptive")
@register("gk_adaptive")
class GKAdaptive(GKBase):
    """Adaptive GK summary with heap-assisted tuple removal."""

    name = "GKAdaptive"
    mergeable = True

    def __init__(self, eps: float) -> None:
        super().__init__(eps)
        self._order: List[_Node] = []  # value-sorted, may contain dead nodes
        self._dead = 0
        self._heap: List = []  # (key, uid) with lazy invalidation
        self._by_uid = {}
        self._uids = itertools.count()
        self._dirty = True  # arrays in GKBase need rebuilding
        # Cheap local tallies, shipped to the metrics recorder only at
        # rare points (compaction / query) so the per-update path never
        # touches the recorder.
        self._pruned_total = 0
        self._pruned_reported = 0
        self._compactions = 0
        self._compactions_reported = 0

    # ------------------------------------------------------------------
    # update path
    # ------------------------------------------------------------------

    def update(self, value) -> None:
        reject_nan(value)
        self._n += 1
        self._dirty = True
        node = self._insert_node(value)
        # Try the newly inserted tuple first (it is often removable right
        # away when it landed in a dense region), then the heap top.
        if not self._try_remove(node):
            top = self._pop_min_key()
            if top is not None:
                key, cand = top
                if not self._try_remove(cand):
                    # Not removable now; keep its entry for later (the
                    # threshold grows with n).
                    heapq.heappush(self._heap, (key, cand.uid))

    def extend(self, values) -> None:
        """Bulk insert: sort the batch and merge it in one linear pass.

        Instead of one tuple insertion + heap probe per element, the
        staged batch is sorted and folded into the live tuple list with
        the shared GK merge kernel (:mod:`repro.cash_register.gk_batch`),
        then the node/heap machinery is rebuilt from the merged arrays.
        The result is *error-equivalent* to elementwise feeding — the
        tuple layout differs (batch merging prunes more eagerly, like
        GKArray), but invariants (1) and (2) hold at the same ``eps``,
        so query answers carry the same guarantee.
        """
        arr = to_element_array(values)
        m = len(arr)
        if m == 0:
            return
        if m < _MIN_BATCH:
            for value in arr.tolist():
                self.update(value)
            return
        if arr.dtype == object:
            for value in arr:
                reject_nan(value)
            run = arr.tolist()
            run.sort()
        elif arr.dtype.kind == "f" and np.isnan(arr).any():
            raise InvalidParameterError(
                "NaN cannot be ranked; filter NaNs before summarizing"
            )
        else:
            run = np.sort(arr)
        self._prepare_query()  # materialize current tuples into the arrays
        self._n += m
        budget = self._budget()
        if isinstance(run, np.ndarray):
            merged = merge_sorted_run(
                self._values, self._gs, self._deltas, run, budget
            )
        else:
            merged = merge_sorted_run_scalar(
                self._values, self._gs, self._deltas, run, budget
            )
        pruned = len(self._values) + m - len(merged[0])
        self._pruned_total += max(0, pruned)
        self._rebuild_nodes(*merged)

    def merge(self, other) -> None:
        """Fold another GK summary of the same ``eps`` into this one.

        Shares the interleave-and-fold kernel with GKArray (the ``eps``
        guarantee is preserved; see :mod:`repro.cash_register.gk_batch`),
        then rebuilds the node list and removal heap from the merged
        arrays.  ``other`` should be discarded afterwards.
        """
        self._merge_gk(other)

    def _adopt_tuples(self, values, gs, deltas) -> None:
        self._rebuild_nodes(values, gs, deltas)

    def _rebuild_nodes(self, values, gs, deltas) -> None:
        """Reconstruct the linked list, order list, and heap from arrays."""
        if isinstance(values, np.ndarray):
            values = values.tolist()
            gs = gs.tolist()
            deltas = deltas.tolist()
        self._values = list(values)
        self._gs = list(gs)
        self._deltas = list(deltas)
        self._dirty = False
        order: List[_Node] = []
        by_uid = {}
        prev: Optional[_Node] = None
        for value, g, delta in zip(values, gs, deltas):
            node = _Node(value, g, delta, next(self._uids))
            node.prev = prev
            if prev is not None:
                prev.next = node
            by_uid[node.uid] = node
            order.append(node)
            prev = node
        self._order = order
        self._by_uid = by_uid
        self._dead = 0
        heap = []
        for node in order:
            key = self._key(node)
            if key is not None:
                heap.append((key, node.uid))
        heapq.heapify(heap)
        self._heap = heap

    def _insert_node(self, value) -> _Node:
        i = bisect.bisect_right(self._order, value, key=lambda nd: nd.value)
        succ = self._alive_at_or_after(i)
        if succ is None or succ.prev is None and succ.value > value:
            # New maximum (no successor) or new minimum: rank known exactly.
            delta = 0
        else:
            delta = succ.g + succ.delta - 1
        node = _Node(value, 1, delta, next(self._uids))
        self._by_uid[node.uid] = node
        self._order.insert(i, node)
        # Wire into the linked list around the alive successor.
        if succ is None:
            tail = self._alive_before(len(self._order) - 1, exclude=node)
            node.prev = tail
            if tail is not None:
                tail.next = node
        else:
            node.next = succ
            node.prev = succ.prev
            if succ.prev is not None:
                succ.prev.next = node
            succ.prev = node
        # Keys that may have changed: the new node's own, its
        # predecessor's (new successor), and its successor's — the old
        # minimum gains a predecessor (and thus a key) when a new minimum
        # arrives in front of it.
        self._push_key(node)
        if node.prev is not None:
            self._push_key(node.prev)
        if node.next is not None:
            self._push_key(node.next)
        return node

    def _alive_at_or_after(self, i: int) -> Optional[_Node]:
        while i < len(self._order):
            if self._order[i].alive:
                return self._order[i]
            i += 1
        return None

    def _alive_before(self, i: int, exclude: _Node) -> Optional[_Node]:
        while i >= 0:
            node = self._order[i]
            if node.alive and node is not exclude:
                return node
            i -= 1
        return None

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Flat tuple arrays instead of the linked nodes.

        Default pickling would recurse through the ``next`` chain and hit
        the recursion limit past ~1000 tuples; the live (value, g, delta)
        triples carry the full summary state, and the node list, order
        list, and heap are derived structures rebuilt on load.
        """
        alive = [nd for nd in self._order if nd.alive]
        return {
            "eps": self.eps,
            "n": self._n,
            "values": [nd.value for nd in alive],
            "gs": [nd.g for nd in alive],
            "deltas": [nd.delta for nd in alive],
            "pruned_total": self._pruned_total,
            "compactions": self._compactions,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["eps"])
        self._n = state["n"]
        self._rebuild_nodes(state["values"], state["gs"], state["deltas"])
        self._pruned_total = state["pruned_total"]
        self._compactions = state["compactions"]

    # ------------------------------------------------------------------
    # removal machinery
    # ------------------------------------------------------------------

    def _key(self, node: _Node) -> Optional[int]:
        """The removal key ``g + g_next + delta_next``, or None when the
        node is not removable at all: the maximum (no successor) and the
        minimum (its exact rank anchors small-rank queries) are kept."""
        if node.next is None or node.prev is None:
            return None
        return node.g + node.next.g + node.next.delta

    def _push_key(self, node: _Node) -> None:
        key = self._key(node)
        if key is not None:
            heapq.heappush(self._heap, (key, node.uid))

    def _pop_min_key(self):
        """Pop until the top entry reflects a live node's current key."""
        while self._heap:
            key, uid = heapq.heappop(self._heap)
            node = self._by_uid.get(uid)
            if node is None or not node.alive:
                continue
            current = self._key(node)
            if current is None:
                continue
            if current != key:
                heapq.heappush(self._heap, (current, uid))
                continue
            return key, node
        return None

    def _try_remove(self, node: _Node) -> bool:
        """Remove ``node`` if condition (2) allows; returns success."""
        if not node.alive or node.next is None or node.prev is None:
            return False
        succ = node.next
        if node.g + succ.g + succ.delta > self._budget():
            return False
        succ.g += node.g
        node.alive = False
        del self._by_uid[node.uid]
        succ.prev = node.prev
        if node.prev is not None:
            node.prev.next = succ
        self._dead += 1
        self._pruned_total += 1
        # Keys of the predecessor and of the successor both changed.
        if node.prev is not None:
            self._push_key(node.prev)
        self._push_key(succ)
        if self._dead * 2 > len(self._order):
            self._order = [nd for nd in self._order if nd.alive]
            self._dead = 0
            self._compactions += 1
            self._emit_metrics()
        return True

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------

    def _emit_metrics(self) -> None:
        """Ship the local tallies to the recorder (rare-path only)."""
        rec = obs_metrics.recorder()
        if not rec.enabled:
            return
        if self._pruned_total > self._pruned_reported:
            rec.inc(
                "cash_register.pruned_tuples",
                self._pruned_total - self._pruned_reported,
                algo=self.name,
            )
            self._pruned_reported = self._pruned_total
        if self._compactions > self._compactions_reported:
            rec.inc(
                "cash_register.compactions",
                self._compactions - self._compactions_reported,
                algo=self.name,
            )
            self._compactions_reported = self._compactions
        rec.set("cash_register.tuples", self.tuple_count(), algo=self.name)

    def _prepare_query(self) -> None:
        self._emit_metrics()
        if not self._dirty:
            return
        alive = [nd for nd in self._order if nd.alive]
        self._values = [nd.value for nd in alive]
        self._gs = [nd.g for nd in alive]
        self._deltas = [nd.delta for nd in alive]
        self._dirty = False

    def tuple_count(self) -> int:
        """Number of live tuples |L| (without materializing arrays)."""
        return len(self._order) - self._dead

    def size_words(self) -> int:
        """Three words per tuple plus two heap words (key + reference) per
        tuple, matching an idealized (non-lazy) heap implementation."""
        return 5 * self.tuple_count()
