"""Random — the paper's simplified randomized quantile sketch (Section 2.2).

The algorithm keeps ``b = h + 1`` buffers of ``s`` elements each, where
``h = ceil(log2(1/eps))`` and ``s = ceil((1/eps) * sqrt(log2(1/eps)))`` —
total space ``O((1/eps) log^1.5 (1/eps))``, the paper's new bound.

* Each buffer carries a *level* ``l``; its elements each stand for
  ``2**l`` stream elements.
* An empty buffer is filled at the current active level
  ``l = max(0, ceil(log2(n / (s * 2**(h-1)))))``: for every block of
  ``2**l`` consecutive stream elements one uniform representative is kept.
* When every buffer is full, the two buffers at the lowest level are
  merged: their elements are unioned in sorted order and either the odd
  or the even positions are kept, each with probability 1/2 — a buffer at
  level ``l + 1``.
* If the two lowest buffers sit at different levels, the lower one is
  first promoted by halving (the same odd/even coin) until levels match —
  the standard fix for the off-schedule case, which only arises around
  level transitions and after merges of summaries.

The rank of ``v`` is estimated as ``sum_X 2**l(X) * |{x in X : x < v}|``;
a quantile query returns the stored element whose estimated rank is
closest to ``phi * n``.

Random is a *mergeable* summary (it is inspired by Agarwal et al. [1]):
``merge`` concatenates buffer sets and re-merges down to ``b`` buffers.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import (
    MergeableSketch,
    to_element_array,
    QuantileSketch,
    reject_nan,
    validate_eps,
    validate_phi,
)
from repro.core.errors import CorruptSummaryError, MergeError
from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.core.weighted import weighted_query_batch
from repro.obs import metrics as obs_metrics
from repro.sketches.hashing import make_rng


class _Buffer:
    """A sealed, sorted buffer of samples at a given level."""

    __slots__ = ("level", "items")

    def __init__(self, level: int, items: np.ndarray) -> None:
        self.level = level
        self.items = items  # sorted 1-D array

    @property
    def weight(self) -> int:
        return 1 << self.level

    def __len__(self) -> int:
        return len(self.items)


def _halve(items: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Keep the odd or the even positions of a sorted array (coin flip)."""
    start = int(rng.integers(0, 2))
    return items[start::2]


def _merge_buffers(
    a: _Buffer, b: _Buffer, rng: np.random.Generator
) -> _Buffer:
    """Merge two same-level buffers into one at the next level."""
    if a.level != b.level:
        raise MergeError("internal: merging buffers at different levels")
    combined = np.sort(np.concatenate([a.items, b.items]), kind="mergesort")
    return _Buffer(a.level + 1, _halve(combined, rng))


@snapshottable("random")
@register("random")
class RandomSketch(QuantileSketch, MergeableSketch):
    """The paper's ``Random`` algorithm.

    Args:
        eps: target rank error (holds for all quantiles with constant
            probability).
        seed: seed for the sampling/merging randomness.
        s: override the buffer size (ablation knob; default from eps).
        b: override the buffer count (ablation knob; default ``h + 1``).
        randomized_merge: if False, always keep odd positions when merging
            (ablation of the random-offset design choice).
    """

    name = "Random"
    deterministic = False
    comparison_based = True
    mergeable = True

    def __init__(
        self,
        eps: float,
        seed: Optional[int] = None,
        s: Optional[int] = None,
        b: Optional[int] = None,
        randomized_merge: bool = True,
    ) -> None:
        self.eps = validate_eps(eps)
        self._rng = make_rng(seed)
        h = max(1, math.ceil(math.log2(1.0 / self.eps)))
        self.h = h
        self.s = s if s is not None else max(
            2, math.ceil((1.0 / self.eps) * math.sqrt(h))
        )
        self.b = b if b is not None else h + 1
        self.randomized_merge = randomized_merge
        self._buffers: List[_Buffer] = []
        self._n = 0
        # Filling state: samples committed so far, plus the current block.
        self._fill_level = 0
        self._fill_items: List = []
        self._block_size = 1
        self._block_seen = 0
        self._block_pick = 0
        self._block_candidate = None

    # ------------------------------------------------------------------
    # update path
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    def _active_level(self) -> int:
        """Level assigned to the next buffer that starts filling."""
        if self._n <= 0:
            return 0
        ratio = self._n / (self.s * (1 << (self.h - 1)))
        return max(0, math.ceil(math.log2(ratio)) if ratio > 1 else 0)

    def _start_block(self) -> None:
        self._block_seen = 0
        self._block_candidate = None
        self._block_pick = (
            int(self._rng.integers(0, self._block_size))
            if self._block_size > 1
            else 0
        )

    def update(self, value) -> None:
        reject_nan(value)
        self._n += 1
        if self._block_seen == self._block_pick:
            self._block_candidate = value
        self._block_seen += 1
        if self._block_seen >= self._block_size:
            self._fill_items.append(self._block_candidate)
            if len(self._fill_items) >= self.s:
                self._seal_fill_buffer()
            self._start_block()

    def extend(self, values) -> None:
        """Bulk insert, consuming the RNG exactly as the update loop does.

        Whole blocks are skipped in O(1): at level 0 every element is its
        own representative, so chunks go straight into the fill buffer
        with no RNG draws; at level ``l`` each block of ``2**l`` elements
        costs one candidate lookup instead of ``2**l`` comparisons.  The
        per-block pick draws happen in the same order and from the same
        generator as elementwise feeding, so same-seed runs produce
        bit-identical summaries (the equivalence tests assert this).
        """
        arr = to_element_array(values)
        if arr.dtype == object:
            for value in arr.tolist():
                self.update(value)
            return
        if arr.dtype.kind == "f" and np.isnan(arr).any():
            from repro.core.errors import InvalidParameterError

            raise InvalidParameterError(
                "NaN cannot be ranked; filter NaNs before summarizing"
            )
        i = 0
        m = len(arr)
        # Prefetched block picks.  For a power-of-two bound (block sizes
        # always are) numpy's bounded-integer sampling never rejects, so
        # one bulk draw of size k is bit-identical to k sequential scalar
        # draws; we prefetch exactly the number of same-bound draws the
        # elementwise loop would make before the next seal or batch end,
        # so the generator state matches at every RNG-consuming event.
        picks: List[int] = []
        pick_at = 0
        while i < m:
            bs = self._block_size
            if bs == 1:
                # Level 0: each element is its own block candidate.
                take = min(self.s - len(self._fill_items), m - i)
                self._fill_items.extend(arr[i : i + take].tolist())
                self._n += take
                i += take
                if len(self._fill_items) >= self.s:
                    self._seal_fill_buffer()
                    self._start_block()  # matches the update() call order
                continue
            take = min(bs - self._block_seen, m - i)
            pick = self._block_pick
            if self._block_seen <= pick < self._block_seen + take:
                self._block_candidate = arr[i + pick - self._block_seen].item()
            self._block_seen += take
            self._n += take
            i += take
            if self._block_seen >= bs:
                self._fill_items.append(self._block_candidate)
                if len(self._fill_items) >= self.s:
                    # Seal consumes merge coins, so the pick cache is
                    # empty here by construction (see the draw count).
                    self._seal_fill_buffer()
                    self._start_block()
                    picks = []
                    pick_at = 0
                else:
                    if pick_at >= len(picks):
                        # Same-bound draws the scalar loop makes from this
                        # block boundary: one per block start, capped by
                        # the seal (whose own draws use the new bound).
                        to_seal = self.s - len(self._fill_items)
                        draws = min(1 + (m - i) // bs, to_seal)
                        picks = self._rng.integers(
                            0, bs, size=draws
                        ).tolist()
                        pick_at = 0
                    self._block_seen = 0
                    self._block_candidate = None
                    self._block_pick = picks[pick_at]
                    pick_at += 1

    def _seal_fill_buffer(self) -> None:
        items = np.sort(to_element_array(self._fill_items))
        self._buffers.append(_Buffer(self._fill_level, items))
        self._fill_items = []
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("cash_register.buffer_seal", 1, algo=self.name)
            rec.set(
                "cash_register.buffers", len(self._buffers), algo=self.name
            )
        if len(self._buffers) >= self.b:
            self._collapse_once()
        # The next buffer fills at the (possibly advanced) active level.
        self._fill_level = self._active_level()
        self._block_size = 1 << self._fill_level
        self._start_block()

    def _coin_rng(self) -> np.random.Generator:
        """RNG for merge coins; a fixed generator when derandomized."""
        if self.randomized_merge:
            return self._rng
        return _ALWAYS_ODD

    def _collapse_once(self) -> None:
        """Merge two buffers at the lowest level containing at least two
        (the paper's rule).  When every level holds a single buffer — a
        transient "full binary counter" state the paper leaves undefined —
        the lowest buffer is promoted by halving until it matches the
        second-lowest, then merged."""
        self._buffers.sort(key=lambda buf: buf.level)
        pair_at = None
        for i in range(len(self._buffers) - 1):
            if self._buffers[i].level == self._buffers[i + 1].level:
                pair_at = i
                break
        rng = self._coin_rng()
        if pair_at is not None:
            low = self._buffers.pop(pair_at + 1)
            second = self._buffers.pop(pair_at)
        else:
            low = self._buffers.pop(0)
            second = self._buffers.pop(0)
            while low.level < second.level:
                low = _Buffer(low.level + 1, _halve(low.items, rng))
        self._buffers.append(_merge_buffers(low, second, rng))
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("cash_register.collapse", 1, algo=self.name)

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------

    def _snapshot(self) -> List[Tuple[np.ndarray, int]]:
        """All live (sorted_items, weight) pairs, including the partial
        filling buffer and the current in-flight block candidate."""
        parts = [(buf.items, buf.weight) for buf in self._buffers if len(buf)]
        pending = list(self._fill_items)
        if self._block_candidate is not None and self._block_seen > 0:
            pending.append(self._block_candidate)
        if pending:
            parts.append(
                (np.sort(to_element_array(pending)), 1 << self._fill_level)
            )
        return parts

    def rank(self, value) -> float:
        """Estimated number of stream elements smaller than ``value``."""
        total = 0.0
        for items, weight in self._snapshot():
            total += weight * float(np.searchsorted(items, value, "left"))
        return total

    def query(self, phi: float):
        validate_phi(phi)
        self._require_nonempty()
        parts = self._snapshot()
        values = np.concatenate([items for items, _ in parts])
        weights = np.concatenate(
            [np.full(len(items), w, dtype=np.float64) for items, w in parts]
        )
        order = np.argsort(values, kind="mergesort")
        values = values[order]
        weights = weights[order]
        # Estimated rank of the k-th stored element = cumulative weight of
        # the elements before it; pick the element closest to phi * n.
        cum = np.concatenate([[0.0], np.cumsum(weights)[:-1]])
        idx = int(np.argmin(np.abs(cum - phi * self._n)))
        return values[idx]

    def query_batch(self, phis) -> list:
        """Vectorized multi-quantile extraction: one weighted-snapshot
        flatten plus a single ``searchsorted`` answers every ``phi``
        (answers are bit-identical to looping :meth:`query`)."""
        self._require_nonempty()
        return weighted_query_batch(self._snapshot(), self._n, phis)

    # ------------------------------------------------------------------
    # merge (mergeable-summary model)
    # ------------------------------------------------------------------

    def merge(self, other: "RandomSketch") -> None:
        """Fold another Random summary (same eps) into this one."""
        if not isinstance(other, RandomSketch):
            raise MergeError(f"cannot merge RandomSketch with {type(other)!r}")
        if (self.s, self.b) != (other.s, other.b):
            raise MergeError("cannot merge Random summaries with different "
                             "parameters")
        # Seal both partial fill buffers at their levels (short buffers
        # merge fine: the odd/even rule never requires equal sizes).
        for sketch in (self, other):
            pending = list(sketch._fill_items)
            if sketch._block_candidate is not None and sketch._block_seen > 0:
                pending.append(sketch._block_candidate)
            if pending:
                sketch._buffers.append(
                    _Buffer(
                        sketch._fill_level,
                        np.sort(to_element_array(pending)),
                    )
                )
            sketch._fill_items = []
            sketch._block_candidate = None
            sketch._block_seen = 0
        self._buffers.extend(other._buffers)
        other._buffers = []
        self._n += other._n
        while len(self._buffers) > self.b:
            self._collapse_once()
        self._fill_level = self._active_level()
        self._block_size = 1 << self._fill_level
        self._start_block()

    def validate(self) -> "RandomSketch":
        """Check the sketch's structural invariants; return ``self``.

        Verified: the element count is a non-negative integer, the buffer
        count respects the ``b``-buffer budget, every sealed buffer sits
        at a sane level with its samples in sorted order, and the filling
        state is consistent with the current fill level.  Called by
        :func:`repro.core.snapshot.restore` and after merging payloads
        received over an untrusted channel.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(f"Random: bad element count {self._n!r}")
        if len(self._buffers) > self.b:
            raise CorruptSummaryError(
                f"Random: {len(self._buffers)} buffers exceed budget b={self.b}"
            )
        for buf in self._buffers:
            if not isinstance(buf.level, int) or not (0 <= buf.level <= 64):
                raise CorruptSummaryError(
                    f"Random: buffer level {buf.level!r} outside [0, 64]"
                )
            items = np.asarray(buf.items)
            if items.ndim != 1:
                raise CorruptSummaryError("Random: buffer items not 1-D")
            if len(items) > 1 and np.any(items[:-1] > items[1:]):
                raise CorruptSummaryError("Random: buffer items out of order")
        if not (0 <= self._fill_level <= 64):
            raise CorruptSummaryError(
                f"Random: fill level {self._fill_level!r} outside [0, 64]"
            )
        if self._block_size != 1 << self._fill_level:
            raise CorruptSummaryError(
                f"Random: block size {self._block_size} != "
                f"2**fill_level ({1 << self._fill_level})"
            )
        if not (0 <= self._block_seen <= self._block_size):
            raise CorruptSummaryError(
                f"Random: block progress {self._block_seen} outside "
                f"[0, {self._block_size}]"
            )
        if len(self._fill_items) > self.s:
            raise CorruptSummaryError(
                f"Random: {len(self._fill_items)} pending samples exceed "
                f"buffer size s={self.s}"
            )
        return self

    def size_words(self) -> int:
        """Pre-allocated space: ``b`` buffers of ``s`` plus the fill buffer
        (the paper: "the buffers are pre-allocated according to eps")."""
        return (self.b + 1) * self.s


class _AlwaysOdd:
    """Degenerate RNG used when ``randomized_merge=False``: always 'odd'."""

    def integers(self, low: int, high: int) -> int:
        return low


_ALWAYS_ODD = _AlwaysOdd()
