"""Reservoir-sampling baseline for quantile estimation.

The classic result (Vapnik–Chervonenkis [28], reproved in [21]): a uniform
random sample of size ``O((1/eps**2) * log(1/eps))`` preserves every
quantile to within ``eps * n`` with constant probability.  The paper uses
this as a conceptual baseline — the quadratic dependence on ``1/eps``
makes it uncompetitive for small ``eps``, which every sketch in this
library is designed to beat; we include it so examples and benches can
demonstrate exactly that.

Implemented with Vitter's Algorithm R; unlike the sample-then-summarize
scheme in [21], a reservoir needs no advance knowledge of ``n``, so this
is a true streaming algorithm.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.base import QuantileSketch, reject_nan, validate_eps, validate_phi
from repro.core.errors import CorruptSummaryError, InvalidParameterError
from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.sketches.hashing import make_rng


@snapshottable("reservoir")
@register("reservoir")
class ReservoirSampling(QuantileSketch):
    """Uniform reservoir sample answering quantile queries.

    Args:
        eps: target rank error; sets the default sample size
            ``ceil((1/eps**2) * log2(2/eps))``.
        seed: randomness for the reservoir.
        capacity: override the sample size directly (the default is
            quadratic in ``1/eps`` and becomes impractical below
            ``eps ~ 1e-3``; pass a cap for exploratory use).
    """

    name = "Reservoir"
    deterministic = False
    comparison_based = True

    def __init__(
        self,
        eps: float,
        seed: Optional[int] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self.eps = validate_eps(eps)
        self._rng = make_rng(seed)
        if capacity is None:
            capacity = math.ceil(
                (1.0 / self.eps**2) * math.log2(2.0 / self.eps)
            )
        if capacity < 1:
            raise InvalidParameterError(
                f"capacity must be >= 1, got {capacity!r}"
            )
        self.capacity = capacity
        self._sample: List = []
        self._sorted_cache: Optional[np.ndarray] = None
        self._n = 0

    @property
    def n(self) -> int:
        return self._n

    def update(self, value) -> None:
        reject_nan(value)
        self._n += 1
        self._sorted_cache = None
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        j = int(self._rng.integers(0, self._n))
        if j < self.capacity:
            self._sample[j] = value

    def _sorted(self) -> np.ndarray:
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(np.asarray(self._sample))
        return self._sorted_cache

    def rank(self, value) -> float:
        """Estimated rank: sample rank scaled up to the stream."""
        if not self._sample:
            return 0.0
        sample_rank = float(np.searchsorted(self._sorted(), value, "left"))
        return sample_rank * self._n / len(self._sample)

    def query(self, phi: float):
        validate_phi(phi)
        self._require_nonempty()
        data = self._sorted()
        idx = min(len(data) - 1, int(phi * len(data)))
        return data[idx]

    def validate(self) -> "ReservoirSampling":
        """Check the reservoir's structural invariants; return ``self``.

        Verified: the element count is a non-negative integer and the
        sample holds exactly ``min(n, capacity)`` elements — Algorithm R
        fills the reservoir before ever replacing.  Called by
        :func:`repro.core.snapshot.restore`.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(
                f"Reservoir: bad element count {self._n!r}"
            )
        expected = min(self._n, self.capacity)
        if len(self._sample) != expected:
            raise CorruptSummaryError(
                f"Reservoir: sample holds {len(self._sample)} elements, "
                f"expected min(n, capacity) = {expected}"
            )
        return self

    def size_words(self) -> int:
        """One word per reservoir slot (pre-allocated)."""
        return self.capacity
