"""Biased (relative-error) quantiles — the extension of Cormode, Korn,
Muthukrishnan and Srivastava cited by the paper as [10].

The uniform guarantee of GK spends the same absolute rank budget
``eps * n`` on every quantile, which is wasteful when the interesting
quantiles are at one end (the p99/p999 of a latency distribution, the
head of a frequency ranking).  The *biased* guarantee is relative: the
``phi``-quantile may be off by at most ``eps * phi * n`` ranks — sharper
by a factor ``1/phi`` at the head, degrading gracefully toward the tail.

Implementation: the batched GKArray skeleton with a rank-dependent
removability budget.  A tuple with successor rank floor ``rmin`` may be
folded only while the combined uncertainty stays within ``max(1,
floor(2 * eps * rmin))`` — the bq invariant — and insertion Deltas are
derived from the successor exactly as in GK, which never violates it.
Queries use the same sandwich rule with tolerance ``eps * r``.

Space is ``O((1/eps) log(eps n) log n)``-ish in theory; empirically a few
times a uniform GK summary at the same ``eps``, which is the price of the
head accuracy (see ``benchmarks/bench_extension_biased.py``).
"""

from __future__ import annotations

import math
from typing import List

from repro.core.base import QuantileSketch, reject_nan, validate_eps, validate_phi
from repro.core.errors import (
    CorruptSummaryError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.core.registry import register
from repro.core.snapshot import snapshottable


@snapshottable("biased_gk")
@register("biased_gk")
class BiasedQuantiles(QuantileSketch):
    """GK-style summary with a relative (biased) error guarantee.

    Args:
        eps: relative rank error: the ``phi``-quantile is off by at most
            ``eps * phi * n`` ranks.
        buffer_factor: buffer capacity as a multiple of the tuple count
            (same batching engineering as GKArray).
    """

    name = "BiasedGK"
    deterministic = True
    comparison_based = True

    def __init__(self, eps: float, buffer_factor: float = 1.0) -> None:
        self.eps = validate_eps(eps)
        if buffer_factor <= 0:
            raise InvalidParameterError(
                f"buffer_factor must be positive, got {buffer_factor!r}"
            )
        self.buffer_factor = float(buffer_factor)
        self._values: List = []
        self._gs: List[int] = []
        self._deltas: List[int] = []
        self._buffer: List = []
        self._n = 0
        self._min_capacity = max(16, math.ceil(1.0 / (2.0 * self.eps)))

    @property
    def n(self) -> int:
        return self._n

    def _budget(self, rmin: int) -> int:
        """Removability budget at rank floor ``rmin`` (the bq invariant)."""
        return max(1, math.floor(2.0 * self.eps * rmin))

    def _capacity(self) -> int:
        return max(
            self._min_capacity,
            int(self.buffer_factor * len(self._values)),
        )

    def update(self, value) -> None:
        reject_nan(value)
        self._buffer.append(value)
        self._n += 1
        if len(self._buffer) >= self._capacity():
            self._flush()

    def extend(self, values) -> None:
        for value in values:
            reject_nan(value)
            self._buffer.append(value)
            self._n += 1
            if len(self._buffer) >= self._capacity():
                self._flush()

    def _flush(self) -> None:
        """Merge the sorted buffer into the tuple arrays, pruning with the
        rank-dependent budget.

        The pass runs front to back tracking the exact rank floor of each
        outgoing tuple, so the budget at each fold is the budget *at that
        rank* — cheap ranks (small rmin) fold reluctantly, tail ranks
        aggressively.
        """
        self._buffer.sort()
        values, gs, deltas = self._values, self._gs, self._deltas
        new_values: List = []
        new_gs: List[int] = []
        new_deltas: List[int] = []
        rmin = 0  # rank floor of the last emitted tuple

        def emit(value, g: int, delta: int) -> None:
            nonlocal rmin
            rmin += g
            if (
                len(new_values) >= 2
                and new_gs[-1] + g + delta <= self._budget(rmin)
            ):
                g += new_gs.pop()
                new_values.pop()
                new_deltas.pop()
            new_values.append(value)
            new_gs.append(g)
            new_deltas.append(delta)

        i = 0
        buf = self._buffer
        m = len(buf)
        for j, v_l in enumerate(values):
            while i < m and buf[i] < v_l:
                delta = gs[j] + deltas[j] - 1
                if not new_values and i == 0:
                    delta = 0
                emit(buf[i], 1, delta)
                i += 1
            emit(v_l, gs[j], deltas[j])
        while i < m:
            emit(buf[i], 1, 0)
            i += 1

        self._values = new_values
        self._gs = new_gs
        self._deltas = new_deltas
        self._buffer = []

    def _prepare_query(self) -> None:
        if self._buffer:
            self._flush()

    def rank(self, value) -> float:
        self._prepare_query()
        rmin = 0.0
        best = 0.0
        for v, g, delta in zip(self._values, self._gs, self._deltas):
            if v > value:
                break
            rmin += g
            best = rmin + delta / 2.0 - 1.0
        return max(0.0, best)

    def query(self, phi: float):
        validate_phi(phi)
        if self._n <= 0:
            raise EmptySummaryError("BiasedGK: cannot query empty summary")
        self._prepare_query()
        r = max(1, math.ceil(phi * self._n))
        tol = max(0.5, self.eps * r)
        rmin = 0
        for v, g, delta in zip(self._values, self._gs, self._deltas):
            rmin += g
            if r - rmin <= tol and rmin + delta - r <= tol:
                return v
        return self._values[-1]

    def tuple_count(self) -> int:
        """Number of stored tuples."""
        self._prepare_query()
        return len(self._values)

    def validate(self) -> "BiasedQuantiles":
        """Check the biased summary's structural invariants; return
        ``self``.

        Verified: the element count is a non-negative integer, stored
        values are non-decreasing, every ``g`` is a positive integer and
        every ``Delta`` non-negative, and the ``g`` values sum to ``n``.
        The rank-dependent gap budget is *not* re-checked here: unlike
        uniform GK, an insertion below an old tuple can leave a gap
        legally above the budget at its new rank floor (the guarantee is
        maintained at fold time, not as a pointwise state invariant).
        Buffered elements are flushed first, which preserves the query
        contract.  Called by :func:`repro.core.snapshot.restore`.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(
                f"BiasedGK: bad element count {self._n!r}"
            )
        self._prepare_query()
        rmin = 0
        prev = None
        for i, (v, g, delta) in enumerate(
            zip(self._values, self._gs, self._deltas)
        ):
            if prev is not None and prev > v:
                raise CorruptSummaryError(
                    f"BiasedGK: tuple {i} values out of order"
                )
            prev = v
            if not isinstance(g, int) or g < 1:
                raise CorruptSummaryError(
                    f"BiasedGK: tuple {i} has g={g!r} < 1"
                )
            if not isinstance(delta, int) or delta < 0:
                raise CorruptSummaryError(
                    f"BiasedGK: tuple {i} has delta={delta!r} < 0"
                )
            rmin += g
        if rmin != self._n:
            raise CorruptSummaryError(
                f"BiasedGK: g values sum to {rmin}, expected n={self._n}"
            )
        return self

    def size_words(self) -> int:
        return 3 * len(self._values) + self._capacity()
