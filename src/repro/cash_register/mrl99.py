"""MRL99 — Manku, Rajagopalan and Lindsay's randomized sampler [22].

The historical baseline that ``Random`` simplifies.  MRL99 keeps ``b``
buffers of capacity ``k`` with integer *weights*:

* **NEW** fills an empty buffer with ``k`` elements sampled at the
  current rate ``r`` (one uniform representative per ``r`` consecutive
  stream elements) and gives it weight ``r``.  The rate adapts as the
  stream grows, exactly like ``Random``'s active level.
* **COLLAPSE** fires when every buffer is full: *all* buffers at the
  lowest level merge into one.  The merged buffer has weight
  ``W = sum w_i`` and keeps the elements at weighted positions
  ``offset, offset + W, offset + 2W, ...`` of the weight-expanded sorted
  sequence, with ``offset`` drawn uniformly from ``[1, W]`` — MRL99's
  randomized refinement of MRL98's deterministic offsets.

Faithfulness notes (documented deviations):

* The original sets ``(b, k)`` by numerically minimizing memory subject
  to a coverage constraint.  We use the closed-form schedule
  ``b = ceil(log2(1/eps)) + 2`` and ``k = ceil((1/eps) *
  log2(2/eps))`` whose product matches the paper's
  ``O((1/eps) log^2 (1/eps))`` bound; the constant was picked so the
  observed error stays below ``eps`` on the paper's workloads.  Both
  parameters remain overridable for experiments.
* Levels are tracked explicitly (a buffer's level is ``log2 weight``),
  which matches the tree view in both MRL99 and the journal paper.

The experimental claims we reproduce (Sections 4.2.2–4.2.3): MRL99
performs like ``Random``, with no decisive advantage to its extra
machinery.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.base import (
    QuantileSketch,
    reject_nan,
    to_element_array,
    validate_phi,
)
from repro.core.base import validate_eps
from repro.core.errors import CorruptSummaryError, MergeError
from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.core.weighted import weighted_query_batch
from repro.obs import metrics as obs_metrics
from repro.sketches.hashing import make_rng


class _WeightedBuffer:
    """A sealed, sorted buffer whose elements each stand for ``weight``
    stream elements."""

    __slots__ = ("weight", "items")

    def __init__(self, weight: int, items: np.ndarray) -> None:
        self.weight = weight
        self.items = items

    @property
    def level(self) -> int:
        return int(self.weight).bit_length() - 1

    def __len__(self) -> int:
        return len(self.items)


def weighted_collapse(
    buffers: List[_WeightedBuffer],
    capacity: int,
    rng: np.random.Generator,
) -> _WeightedBuffer:
    """MRL's COLLAPSE: merge ``buffers`` into one of ``<= capacity``
    elements with weight ``W = sum of weights``.

    Conceptually expands every element to ``weight`` copies, concatenates
    in sorted order, and keeps the copies at positions ``offset + j * W``
    (1-based).  Implemented by walking the merged sequence and emitting an
    element whenever its cumulative weight range covers the next target.
    """
    total_w = sum(buf.weight for buf in buffers)
    values = np.concatenate([buf.items for buf in buffers])
    weights = np.concatenate(
        [np.full(len(buf), buf.weight, dtype=np.int64) for buf in buffers]
    )
    order = np.argsort(values, kind="mergesort")
    values = values[order]
    weights = weights[order]
    offset = int(rng.integers(1, total_w + 1))
    out = []
    target = offset
    cum = 0
    for v, w in zip(values.tolist(), weights.tolist()):
        cum += int(w)
        while target <= cum and len(out) < capacity:
            out.append(v)
            target += total_w
    return _WeightedBuffer(total_w, to_element_array(out))


@snapshottable("mrl99")
@register("mrl99")
class MRL99(QuantileSketch):
    """The MRL99 randomized quantile sampler.

    Args:
        eps: target rank error.
        seed: randomness for sampling, offsets.
        b: override buffer count (default ``ceil(log2(1/eps)) + 2``).
        k: override buffer capacity (default ``ceil((1/eps) *
            log2(2/eps))``).
    """

    name = "MRL99"
    deterministic = False
    comparison_based = True
    mergeable = True

    def __init__(
        self,
        eps: float,
        seed: Optional[int] = None,
        b: Optional[int] = None,
        k: Optional[int] = None,
    ) -> None:
        self.eps = validate_eps(eps)
        self._rng = make_rng(seed)
        h = max(1, math.ceil(math.log2(1.0 / self.eps)))
        self.h = h
        self.b = b if b is not None else h + 2
        self.k = k if k is not None else max(
            2, math.ceil((1.0 / self.eps) * math.log2(2.0 / self.eps))
        )
        self._buffers: List[_WeightedBuffer] = []
        self._n = 0
        self._fill_rate = 1
        self._fill_items: List = []
        self._block_seen = 0
        self._block_pick = 0
        self._block_candidate = None

    @property
    def n(self) -> int:
        return self._n

    def _active_rate(self) -> int:
        """Sampling rate for the next NEW: doubles once the stream
        outgrows what ``b - 1`` unit-weight buffers could cover."""
        if self._n <= 0:
            return 1
        ratio = self._n / (self.k * (1 << (self.h - 1)))
        level = max(0, math.ceil(math.log2(ratio)) if ratio > 1 else 0)
        return 1 << level

    def update(self, value) -> None:
        reject_nan(value)
        self._n += 1
        if self._block_seen == self._block_pick:
            self._block_candidate = value
        self._block_seen += 1
        if self._block_seen >= self._fill_rate:
            self._fill_items.append(self._block_candidate)
            if len(self._fill_items) >= self.k:
                self._seal()
            self._start_block()

    def extend(self, values) -> None:
        """Bulk insert, consuming the RNG exactly as the update loop does.

        Same block-skipping scheme as :meth:`RandomSketch.extend`: rate-1
        chunks go straight into the fill buffer (no draws), higher rates
        cost one candidate lookup per block, and the per-block pick draws
        are prefetched in bulk — sampling rates are powers of two, for
        which numpy's bounded draws are bit-identical to sequential
        scalar draws — so same-seed runs match elementwise feeding.
        """
        arr = to_element_array(values)
        if arr.dtype == object:
            for value in arr.tolist():
                self.update(value)
            return
        if arr.dtype.kind == "f" and np.isnan(arr).any():
            from repro.core.errors import InvalidParameterError

            raise InvalidParameterError(
                "NaN cannot be ranked; filter NaNs before summarizing"
            )
        i = 0
        m = len(arr)
        picks: List[int] = []
        pick_at = 0
        while i < m:
            rate = self._fill_rate
            if rate == 1:
                take = min(self.k - len(self._fill_items), m - i)
                self._fill_items.extend(arr[i : i + take].tolist())
                self._n += take
                i += take
                if len(self._fill_items) >= self.k:
                    self._seal()
                    self._start_block()
                continue
            take = min(rate - self._block_seen, m - i)
            pick = self._block_pick
            if self._block_seen <= pick < self._block_seen + take:
                self._block_candidate = arr[i + pick - self._block_seen].item()
            self._block_seen += take
            self._n += take
            i += take
            if self._block_seen >= rate:
                self._fill_items.append(self._block_candidate)
                if len(self._fill_items) >= self.k:
                    # The seal's COLLAPSE offset draw interleaves here,
                    # so the pick cache is empty by construction.
                    self._seal()
                    self._start_block()
                    picks = []
                    pick_at = 0
                else:
                    if pick_at >= len(picks):
                        to_seal = self.k - len(self._fill_items)
                        draws = min(1 + (m - i) // rate, to_seal)
                        picks = self._rng.integers(
                            0, rate, size=draws
                        ).tolist()
                        pick_at = 0
                    self._block_seen = 0
                    self._block_candidate = None
                    self._block_pick = picks[pick_at]
                    pick_at += 1

    def _start_block(self) -> None:
        self._block_seen = 0
        self._block_candidate = None
        self._block_pick = (
            int(self._rng.integers(0, self._fill_rate))
            if self._fill_rate > 1
            else 0
        )

    def _seal(self) -> None:
        items = np.sort(to_element_array(self._fill_items))
        self._buffers.append(_WeightedBuffer(self._fill_rate, items))
        self._fill_items = []
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("cash_register.buffer_seal", 1, algo=self.name)
            rec.set(
                "cash_register.buffers", len(self._buffers), algo=self.name
            )
        if len(self._buffers) >= self.b:
            self._collapse()
        self._fill_rate = self._active_rate()

    def _collapse(self) -> None:
        """COLLAPSE every buffer at the minimum level into one."""
        min_level = min(buf.level for buf in self._buffers)
        group = [buf for buf in self._buffers if buf.level == min_level]
        if len(group) < 2:
            # Off-schedule (e.g. right after a rate bump): collapse the
            # two lightest buffers instead, as MRL98's policy degenerates.
            self._buffers.sort(key=lambda buf: buf.weight)
            group = self._buffers[:2]
        rest = [buf for buf in self._buffers if buf not in group]
        rest.append(weighted_collapse(group, self.k, self._rng))
        self._buffers = rest
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("cash_register.collapse", 1, algo=self.name)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------

    def _seal_partial(self) -> None:
        """Seal the fill buffer (and any in-progress block candidate) as
        a weighted buffer at the current rate, as the query snapshot
        already treats it."""
        pending = list(self._fill_items)
        if self._block_candidate is not None and self._block_seen > 0:
            pending.append(self._block_candidate)
        if pending:
            items = np.sort(to_element_array(pending))
            self._buffers.append(_WeightedBuffer(self._fill_rate, items))
        self._fill_items = []
        self._block_seen = 0
        self._block_candidate = None

    def merge(self, other) -> None:
        """Fold another MRL99 sampler with the same schedule into this one.

        Both fill buffers are sealed, the weighted buffer lists are
        concatenated, and COLLAPSE fires until the ``b``-buffer budget
        holds again — the same operation the sampler performs on a single
        stream, so the weighted-sample guarantee carries over.  The two
        samplers should be built from *independent* seeds (their coins
        are independent shard randomness).  ``other`` should be
        discarded afterwards.

        Raises:
            MergeError: if ``other`` has a different type, ``eps``, or
                buffer schedule ``(b, k)``.
        """
        if type(other) is not type(self):
            raise MergeError(
                f"cannot merge {type(other).__name__} into {self.name}"
            )
        if self.eps != other.eps or (self.b, self.k) != (other.b, other.k):
            raise MergeError(
                f"{self.name}: schedule mismatch "
                f"(eps={self.eps}, b={self.b}, k={self.k} vs "
                f"eps={other.eps}, b={other.b}, k={other.k})"
            )
        self._seal_partial()
        other._seal_partial()
        self._buffers.extend(other._buffers)
        self._n += other._n
        while len(self._buffers) > self.b:
            self._collapse()
        self._fill_rate = self._active_rate()
        self._start_block()

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------

    def _snapshot(self):
        parts = [(buf.items, buf.weight) for buf in self._buffers if len(buf)]
        pending = list(self._fill_items)
        if self._block_candidate is not None and self._block_seen > 0:
            pending.append(self._block_candidate)
        if pending:
            parts.append((np.sort(to_element_array(pending)), self._fill_rate))
        return parts

    def rank(self, value) -> float:
        total = 0.0
        for items, weight in self._snapshot():
            total += weight * float(np.searchsorted(items, value, "left"))
        return total

    def query(self, phi: float):
        """Scalar reference path: the full argmin over the snapshot."""
        validate_phi(phi)
        self._require_nonempty()
        parts = self._snapshot()
        values = np.concatenate([items for items, _ in parts])
        weights = np.concatenate(
            [np.full(len(items), w, dtype=np.float64) for items, w in parts]
        )
        order = np.argsort(values, kind="mergesort")
        values = values[order]
        cum = np.concatenate([[0.0], np.cumsum(weights[order])[:-1]])
        return values[int(np.argmin(np.abs(cum - phi * self._n)))]

    def query_batch(self, phis) -> list:
        """Vectorized multi-quantile extraction over the weighted
        snapshot (bit-identical to looping :meth:`query`)."""
        self._require_nonempty()
        return weighted_query_batch(self._snapshot(), self._n, phis)

    def validate(self) -> "MRL99":
        """Check the sampler's structural invariants; return ``self``.

        Verified: the element count is a non-negative integer, the
        buffer count respects the ``b``-buffer budget, every sealed
        buffer has a positive integer weight with its ``<= k`` samples
        in sorted order, and the fill state (rate, pending items, block
        progress) is internally consistent.  Called by
        :func:`repro.core.snapshot.restore`.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(f"MRL99: bad element count {self._n!r}")
        if len(self._buffers) > self.b:
            raise CorruptSummaryError(
                f"MRL99: {len(self._buffers)} buffers exceed budget "
                f"b={self.b}"
            )
        for buf in self._buffers:
            if not isinstance(buf.weight, int) or buf.weight < 1:
                raise CorruptSummaryError(
                    f"MRL99: buffer weight {buf.weight!r} < 1"
                )
            items = np.asarray(buf.items)
            if items.ndim != 1:
                raise CorruptSummaryError("MRL99: buffer items not 1-D")
            if len(items) > self.k:
                raise CorruptSummaryError(
                    f"MRL99: buffer holds {len(items)} > k={self.k} samples"
                )
            if len(items) > 1 and np.any(items[:-1] > items[1:]):
                raise CorruptSummaryError("MRL99: buffer items out of order")
        if not isinstance(self._fill_rate, int) or self._fill_rate < 1:
            raise CorruptSummaryError(
                f"MRL99: bad sampling rate {self._fill_rate!r}"
            )
        if len(self._fill_items) > self.k:
            raise CorruptSummaryError(
                f"MRL99: {len(self._fill_items)} pending samples exceed "
                f"k={self.k}"
            )
        if not (0 <= self._block_seen <= self._fill_rate):
            raise CorruptSummaryError(
                f"MRL99: block progress {self._block_seen} outside "
                f"[0, {self._fill_rate}]"
            )
        return self

    def size_words(self) -> int:
        """Pre-allocated: ``b`` buffers of ``k`` plus the fill buffer and
        one weight word per buffer."""
        return (self.b + 1) * self.k + self.b
