"""Shared machinery for the Greenwald–Khanna (GK) summary family.

A GK summary (Section 2.1) is an ordered list of tuples
``(v_i, g_i, Delta_i)`` where the ``v_i`` are stream elements in
non-decreasing order and the integers ``g_i, Delta_i`` maintain:

(1) ``sum_{j<=i} g_j <= r(v_i) + 1 <= sum_{j<=i} g_j + Delta_i``
    — a sandwich on the (1-based) rank of each stored element;
(2) ``g_i + Delta_i <= floor(2 * eps * n)``
    — the rank uncertainty between neighbors stays below the budget.

All three variants in this package (GKAdaptive, GKArray, GKTheory) store
the same tuples and answer queries identically; they differ only in how
tuples are inserted and pruned.  This module holds the query rule, the
rank estimator, and the invariant checker used by the property tests.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.base import QuantileSketch, validate_eps, validate_phi
from repro.core.errors import (
    CorruptSummaryError,
    EmptySummaryError,
    InvariantViolation,
    MergeError,
)
from repro.devtools.marks import debug_asserts

GKTuple = Tuple[object, int, int]  # (value, g, delta)


def gk_query(
    values: Sequence,
    gs: Sequence[int],
    deltas: Sequence[int],
    n: int,
    phi: float,
):
    """Extract a ``phi``-quantile from GK tuple arrays.

    Uses the standard GK rule: with target (1-based) rank
    ``r = max(1, ceil(phi * n))`` and tolerance ``e = max_i(g_i +
    Delta_i) / 2``, return the first stored element whose rank interval
    ``[rmin_i, rmax_i]`` lies within ``e`` of ``r`` on both sides.
    Condition (2) guarantees such an element exists with ``e`` as above.
    """
    if n <= 0 or not values:
        raise EmptySummaryError("GK: cannot query an empty summary")
    r = max(1, math.ceil(phi * n))
    e = max(g + d for g, d in zip(gs, deltas)) / 2.0
    rmin = 0
    for value, g, delta in zip(values, gs, deltas):
        rmin += g
        rmax = rmin + delta
        if r - rmin <= e and rmax - r <= e:
            return value
    return values[-1]


def gk_rank(
    values: Sequence,
    gs: Sequence[int],
    deltas: Sequence[int],
    value,
) -> float:
    """Estimate the (0-based) rank of ``value`` from GK tuple arrays.

    For the rightmost stored ``v_i <= value`` the true 1-based rank of
    ``v_i`` lies in ``[rmin_i, rmin_i + Delta_i]``; we return the midpoint
    minus one (back to 0-based).  Values below the stored minimum rank 0.
    """
    rmin = 0
    best = 0.0
    for v, g, delta in zip(values, gs, deltas):
        if v > value:
            break
        rmin += g
        best = rmin + delta / 2.0 - 1.0
    return max(0.0, best)


@debug_asserts  # test-support invariant checker, exempt from REP004
def check_gk_invariants(
    values: Sequence,
    gs: Sequence[int],
    deltas: Sequence[int],
    n: int,
    eps: float,
    exact_ranks,
) -> None:
    """Check invariants (1) and (2) against exact ranks (test helper).

    Args:
        exact_ranks: callable mapping a value to its exact 0-based rank
            interval ``(lo, hi)`` in the stream so far (elements strictly
            smaller, elements smaller-or-equal).

    Raises:
        InvariantViolation: if any invariant is violated.  (A subclass of
            ``AssertionError``, so the check fires even under
            ``python -O`` while legacy ``pytest.raises(AssertionError)``
            call sites keep working.)
    """

    def require(cond: bool, message: str) -> None:
        if not cond:
            raise InvariantViolation(message)

    budget = math.floor(2 * eps * n)
    rmin = 0
    prev = None
    for i, (v, g, delta) in enumerate(zip(values, gs, deltas)):
        require(g >= 1, f"tuple {i}: g={g} < 1")
        require(delta >= 0, f"tuple {i}: delta={delta} < 0")
        if prev is not None:
            require(prev <= v, f"tuple {i}: values out of order")
        prev = v
        rmin += g
        lo, hi = exact_ranks(v)
        # 1-based rank r(v)+1 of the stored occurrence lies in [lo+1, hi];
        # invariant (1) demands [rmin, rmin + delta] to intersect it.
        require(
            rmin <= hi,
            f"tuple {i} ({v!r}): rmin={rmin} exceeds max 1-based rank {hi}",
        )
        require(
            rmin + delta >= lo + 1,
            f"tuple {i} ({v!r}): rmax={rmin + delta} below min rank {lo + 1}",
        )
        if i > 0:  # the minimum tuple may carry g=1, delta=0 trivially
            require(
                g + delta <= max(budget, 1),
                f"tuple {i}: g+delta={g + delta} > budget {budget}",
            )
    require(rmin == n, f"sum of g = {rmin} != n = {n}")


class GKBase(QuantileSketch):
    """Common constructor/query surface for the GK variants.

    Subclasses maintain ``self._values``, ``self._gs``, ``self._deltas``
    (parallel lists in value order) and ``self._n``, and implement
    :meth:`update`.
    """

    deterministic = True
    comparison_based = True

    def __init__(self, eps: float) -> None:
        self.eps = validate_eps(eps)
        self._values: List = []
        self._gs: List[int] = []
        self._deltas: List[int] = []
        self._n = 0

    @property
    def n(self) -> int:
        return self._n

    def _budget(self) -> int:
        """Current removability threshold ``floor(2 * eps * n)``."""
        return math.floor(2 * self.eps * self._n)

    def _prepare_query(self) -> None:
        """Hook for subclasses that defer work (e.g. GKArray's buffer)."""

    def query(self, phi: float):
        validate_phi(phi)
        self._require_nonempty()
        self._prepare_query()
        return gk_query(self._values, self._gs, self._deltas, self._n, phi)

    def query_batch(self, phis: Sequence[float]) -> List:
        """Batch extraction: one prefix-sum pass answers every ``phi``.

        Each query only inspects the tuples whose rank window can contain
        its target, found by bisection on the rmin prefix sums.
        """
        for phi in phis:
            validate_phi(phi)
        self._require_nonempty()
        self._prepare_query()
        import bisect
        from itertools import accumulate

        rmins = list(accumulate(self._gs))
        e = max(g + d for g, d in zip(self._gs, self._deltas)) / 2.0
        out = []
        for phi in phis:
            r = max(1, math.ceil(phi * self._n))
            start = bisect.bisect_left(rmins, r - e)
            answer = self._values[-1]
            for i in range(start, len(rmins)):
                if rmins[i] - r > e:
                    break
                if rmins[i] + self._deltas[i] - r <= e:
                    answer = self._values[i]
                    break
            out.append(answer)
        return out

    def rank(self, value) -> float:
        self._prepare_query()
        return gk_rank(self._values, self._gs, self._deltas, value)

    def tuples(self) -> List[GKTuple]:
        """The current tuple list (for tests and inspection)."""
        self._prepare_query()
        return list(zip(self._values, self._gs, self._deltas))

    def validate(self) -> "GKBase":
        """Check the GK band/gap invariants; return ``self``.

        Verified: the element count is a non-negative integer, stored
        values are non-decreasing, every ``g`` is a positive integer and
        every ``Delta`` non-negative, the ``g`` values sum to ``n``, and
        each non-extreme tuple respects the gap budget ``g + Delta <=
        max(floor(2 * eps * n), 1)`` (invariant (2)).  Buffered elements
        are flushed first, which preserves the query contract.  Called by
        :func:`repro.core.snapshot.restore`.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(
                f"{self.name}: bad element count {self._n!r}"
            )
        self._prepare_query()
        budget = max(self._budget(), 1)
        rmin = 0
        prev = None
        for i, (v, g, delta) in enumerate(
            zip(self._values, self._gs, self._deltas)
        ):
            if prev is not None and prev > v:
                raise CorruptSummaryError(
                    f"{self.name}: tuple {i} values out of order"
                )
            prev = v
            if not isinstance(g, int) or g < 1:
                raise CorruptSummaryError(
                    f"{self.name}: tuple {i} has g={g!r} < 1"
                )
            if not isinstance(delta, int) or delta < 0:
                raise CorruptSummaryError(
                    f"{self.name}: tuple {i} has delta={delta!r} < 0"
                )
            if i > 0 and g + delta > budget:
                raise CorruptSummaryError(
                    f"{self.name}: tuple {i} gap g+delta={g + delta} "
                    f"exceeds budget {budget}"
                )
            rmin += g
        if rmin != self._n:
            raise CorruptSummaryError(
                f"{self.name}: g values sum to {rmin}, expected n={self._n}"
            )
        return self

    def size_words(self) -> int:
        """Three words per stored tuple (value, g, delta)."""
        return 3 * len(self._values)

    def _adopt_tuples(self, values, gs, deltas) -> None:
        """Install merged tuple arrays as the summary state.

        The default normalizes to plain lists (Python ints), which every
        GK query path accepts; subclasses with auxiliary structures
        (GKAdaptive's node list/heap) override to rebuild them.
        """
        import numpy as np

        if isinstance(values, np.ndarray):
            values = values.tolist()
            gs = gs.tolist()
            deltas = deltas.tolist()
        self._values = list(values)
        self._gs = list(gs)
        self._deltas = list(deltas)

    def _merge_gk(self, other: "GKBase") -> None:
        """Shared merge: interleave both tuple lists, fold at the union
        budget (see :func:`repro.cash_register.gk_batch.merge_tuple_arrays`
        for the ``Delta`` accounting and why ``eps`` is preserved)."""
        from repro.cash_register.gk_batch import merge_tuple_arrays

        if not isinstance(other, GKBase):
            raise MergeError(
                f"cannot merge {type(other).__name__} into {self.name}"
            )
        if other.eps != self.eps:
            raise MergeError(
                f"{self.name}: eps mismatch ({self.eps} vs {other.eps})"
            )
        self._prepare_query()
        other._prepare_query()
        if other._n == 0:
            return
        total = self._n + other._n
        if self._n == 0:
            merged = (other._values, other._gs, other._deltas)
        else:
            budget = math.floor(2 * self.eps * total)
            merged = merge_tuple_arrays(
                self._values,
                self._gs,
                self._deltas,
                other._values,
                other._gs,
                other._deltas,
                budget,
            )
        self._n = total
        self._adopt_tuples(*merged)
