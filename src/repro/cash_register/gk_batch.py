"""Batch merge kernels for the GK summary family.

Both GKArray's buffer flush and GKAdaptive's bulk ``extend`` reduce to
the same operation: fold a *sorted run* of raw elements into an existing
GK tuple list in one pass, pruning removable tuples on the fly.  This
module holds that operation twice:

* :func:`merge_sorted_run_scalar` — the straightforward Python loop, the
  reference implementation (it is the journal paper's GKArray merge,
  verbatim);
* :func:`merge_sorted_run` — the numpy formulation: merge positions via
  ``np.searchsorted``, new-tuple ``Delta`` values by fancy indexing,
  cumulative ``g`` via ``np.cumsum``, and the backward fold expressed as
  a greedy run partition over the prefix sums.  Only the run partition
  remains a (minimal) Python loop; everything else is array ops.

The two are *state-equivalent*: for any inputs they emit identical tuple
lists (the property tests assert this).  The vectorized path therefore
changes throughput only, never answers.

Merge semantics, matching the scalar emit loop exactly:

1. Incoming elements equal to a stored value land *after* it (stable,
   insertion-order-respecting — ``searchsorted`` side ``"right"``).
2. Each incoming element ``v`` takes ``Delta = g_s + Delta_s - 1`` from
   its successor ``s`` in the stored list; ``Delta = 0`` when it is a new
   minimum emitted first, or beyond the stored maximum.
3. While emitting, the previous surviving tuple is folded into the
   current one whenever the combined ``g`` plus the current ``Delta``
   fits the budget ``floor(2 eps n)`` — except that the first two
   survivors are never folded (the minimum anchors small-rank queries).

This module also holds the *summary-merge* kernel
(:func:`merge_tuple_arrays`), used by ``GKArray.merge`` /
``GKAdaptive.merge`` for the sharded ingest engine.  Merging two GK
summaries interleaves both tuple lists by value (ties: the left summary
first); every tuple keeps its own ``g`` (the interleaved rmin prefix
sums telescope), and picks up from the *other* summary the uncertainty
of its successor there::

    Delta' = Delta + g_q + Delta_q - 1

where ``q`` is, for left tuples, the other side's first tuple with
value ``>= v`` and, for right tuples, the other side's first tuple with
value ``> v`` (no ``q``: ``Delta`` is unchanged).  Both choices bound
the other stream's contribution to the tuple's rank window, so
invariant (1) holds for the union stream.  Because every summary built
by this package anchors its minimum as ``(min, 1, 0)`` (the fold never
touches survivor 0, and GKAdaptive never removes the head node), the
worst extra uncertainty is ``floor(2 eps n_other)``, hence::

    g' + Delta' <= floor(2 eps n_a) + floor(2 eps n_b) <= floor(2 eps n')

— invariant (2) holds at the *same* ``eps`` after merging, and the
standard greedy fold (:func:`fold_tuples`) then prunes the combined
list back down at the union budget.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

GKArrays = Tuple[List, List[int], List[int]]

#: Below this run length the numpy call overhead beats the Python loop.
MIN_VECTOR_RUN = 32


def merge_sorted_run_scalar(
    values: Sequence,
    gs: Sequence[int],
    deltas: Sequence[int],
    run: Sequence,
    budget: int,
) -> GKArrays:
    """Reference merge: fold sorted ``run`` into the GK tuple arrays.

    Args:
        values, gs, deltas: the existing tuple arrays (value order);
            plain sequences or numpy arrays.
        run: the staged raw elements, **sorted ascending**; each enters
            with ``g = 1``.
        budget: the removability threshold ``floor(2 * eps * n)`` where
            ``n`` already counts the staged elements.

    Returns:
        The merged ``(values, gs, deltas)`` lists.
    """
    if isinstance(values, np.ndarray):
        values = values.tolist()
    if isinstance(gs, np.ndarray):
        gs = gs.tolist()
    if isinstance(deltas, np.ndarray):
        deltas = deltas.tolist()
    new_values: List = []
    new_gs: List[int] = []
    new_deltas: List[int] = []

    def emit(value, g: int, delta: int) -> None:
        # Fold the previous survivor into this tuple when removable; the
        # first two survivors are never folded (the minimum's exact rank
        # anchors small-rank queries).
        if len(new_values) >= 2 and new_gs[-1] + g + delta <= budget:
            g += new_gs.pop()
            new_values.pop()
            new_deltas.pop()
        new_values.append(value)
        new_gs.append(g)
        new_deltas.append(delta)

    i = 0
    m = len(run)
    for j, v_l in enumerate(values):
        while i < m and run[i] < v_l:
            # Successor of run[i] in the stored list is tuple j.
            delta = gs[j] + deltas[j] - 1
            if not new_values and i == 0:
                delta = 0  # new minimum: rank known exactly
            emit(run[i], 1, delta)
            i += 1
        emit(v_l, gs[j], deltas[j])
    while i < m:
        emit(run[i], 1, 0)  # beyond the old maximum: rank exact
        i += 1
    return new_values, new_gs, new_deltas


def merge_sorted_run(
    values: Sequence,
    gs: Sequence[int],
    deltas: Sequence[int],
    run: np.ndarray,
    budget: int,
) -> GKArrays:
    """Vectorized merge, state-equivalent to the scalar reference.

    ``run`` must be a sorted 1-D numeric numpy array.  Falls back to
    :func:`merge_sorted_run_scalar` for tiny runs, object dtypes (tuple
    sort keys), or mixed value types, where numpy buys nothing.

    Returns numpy arrays (the scalar reference returns lists); callers
    that need Python scalars convert lazily.
    """
    m = len(run)
    if (
        m < MIN_VECTOR_RUN
        or run.dtype == object
        or run.dtype.kind not in "iuf"
    ):
        return merge_sorted_run_scalar(
            values, gs, deltas, run.tolist(), budget
        )
    values_arr = np.asarray(values)
    if values_arr.dtype == object or (
        len(values) and values_arr.dtype.kind not in "iuf"
    ):
        return merge_sorted_run_scalar(
            values, gs, deltas, run.tolist(), budget
        )

    n_old = len(values)
    total = n_old + m
    gs_arr = np.asarray(gs, dtype=np.int64)
    deltas_arr = np.asarray(deltas, dtype=np.int64)

    # Merge positions.  Run elements go after equal stored values
    # (side="right"); stored value j is preceded by the run elements
    # strictly smaller than it (side="left").
    pos = np.searchsorted(values_arr, run, side="right")
    run_idx = pos + np.arange(m)  # final index of each run element
    val_idx = (
        np.searchsorted(run, values_arr, side="left") + np.arange(n_old)
    )

    # Delta of each run element from its stored successor.
    run_deltas = np.zeros(m, dtype=np.int64)
    inside = pos < n_old
    run_deltas[inside] = gs_arr[pos[inside]] + deltas_arr[pos[inside]] - 1
    if pos.size and pos[0] == 0:
        run_deltas[0] = 0  # new minimum emitted first: rank exact

    # Interleave into merge order.
    if n_old:
        merged_v = np.empty(total, dtype=np.result_type(values_arr, run))
        merged_v[val_idx] = values_arr
    else:
        merged_v = np.empty(total, dtype=run.dtype)
    merged_v[run_idx] = run
    merged_g = np.empty(total, dtype=np.int64)
    merged_g[val_idx] = gs_arr
    merged_g[run_idx] = 1
    merged_d = np.empty(total, dtype=np.int64)
    merged_d[val_idx] = deltas_arr
    merged_d[run_idx] = run_deltas

    return fold_tuples(merged_v, merged_g, merged_d, budget)


def fold_tuples(
    merged_v: np.ndarray,
    merged_g: np.ndarray,
    merged_d: np.ndarray,
    budget: int,
) -> GKArrays:
    """Greedy backward fold over already-interleaved GK tuple arrays.

    Expressed as a run partition over the prefix sums: survivor ``k``
    absorbs its predecessor run while ``G[k] + delta[k] - G[start-1] <=
    budget``; each closed run contributes its last element with the
    accumulated ``g``.  Tuple 0 (the minimum) always stands alone.  The
    partition chain is the one inherently sequential step, so it runs as
    a minimal Python loop over pre-extracted lists.
    """
    total = len(merged_v)
    G = np.cumsum(merged_g)
    A_list = (G + merged_d).tolist()
    G_list = G.tolist()
    ends = [0]  # survivor 1 (the minimum) always stands alone
    if total > 1:
        append = ends.append
        thresh = budget + G_list[0]  # budget + G[s-1], run starting at 1
        last = 1
        for k, a in enumerate(A_list[2:], 2):
            if a <= thresh:
                last = k
            else:
                append(last)
                thresh = budget + G_list[k - 1]
                last = k
        append(last)

    ends_arr = np.asarray(ends, dtype=np.int64)
    out_gs = G[ends_arr]
    out_gs[1:] -= out_gs[:-1].copy()
    return merged_v[ends_arr], out_gs, merged_d[ends_arr]


def merge_tuple_arrays_scalar(
    a_values: Sequence,
    a_gs: Sequence[int],
    a_deltas: Sequence[int],
    b_values: Sequence,
    b_gs: Sequence[int],
    b_deltas: Sequence[int],
    budget: int,
) -> GKArrays:
    """Reference summary merge: combine two GK tuple lists, then fold.

    Two-pointer stable interleave (left summary wins ties).  Each tuple
    keeps its ``g``; its ``Delta`` picks up ``g_q + Delta_q - 1`` from
    its successor ``q`` in the *other* summary (first ``>=`` for left
    tuples, first ``>`` for right tuples; ``Delta`` unchanged past the
    other maximum).  The fold uses the same emit rule as
    :func:`merge_sorted_run_scalar`.
    """
    av = list(a_values)
    bv = list(b_values)
    na, nb = len(av), len(bv)
    out_v: List = []
    out_g: List[int] = []
    out_d: List[int] = []

    def emit(value, g: int, delta: int) -> None:
        if len(out_v) >= 2 and out_g[-1] + g + delta <= budget:
            g += out_g.pop()
            out_v.pop()
            out_d.pop()
        out_v.append(value)
        out_g.append(g)
        out_d.append(delta)

    i = j = 0
    while i < na or j < nb:
        if j >= nb or (i < na and av[i] <= bv[j]):
            # Left tuple; its successor in B is the first B value >= it,
            # which is exactly b[j] (everything before j is < av[i]).
            extra = b_gs[j] + b_deltas[j] - 1 if j < nb else 0
            emit(av[i], int(a_gs[i]), int(a_deltas[i]) + extra)
            i += 1
        else:
            # Right tuple; its successor in A is the first A value > it,
            # which is exactly a[i] (ties were emitted from A first).
            extra = a_gs[i] + a_deltas[i] - 1 if i < na else 0
            emit(bv[j], int(b_gs[j]), int(b_deltas[j]) + extra)
            j += 1
    return out_v, out_g, out_d


def merge_tuple_arrays(
    a_values: Sequence,
    a_gs: Sequence[int],
    a_deltas: Sequence[int],
    b_values: Sequence,
    b_gs: Sequence[int],
    b_deltas: Sequence[int],
    budget: int,
) -> GKArrays:
    """Vectorized summary merge, state-equivalent to the scalar reference.

    Falls back to :func:`merge_tuple_arrays_scalar` for tiny inputs or
    non-numeric (object-dtype) values.  Returns numpy arrays on the
    vectorized path; callers normalize lazily.
    """
    na, nb = len(a_values), len(b_values)
    if na == 0 or nb == 0 or na + nb < MIN_VECTOR_RUN:
        return merge_tuple_arrays_scalar(
            a_values, a_gs, a_deltas, b_values, b_gs, b_deltas, budget
        )
    av = np.asarray(a_values)
    bv = np.asarray(b_values)
    if (
        av.dtype == object
        or bv.dtype == object
        or av.dtype.kind not in "iuf"
        or bv.dtype.kind not in "iuf"
    ):
        return merge_tuple_arrays_scalar(
            a_values, a_gs, a_deltas, b_values, b_gs, b_deltas, budget
        )
    ag = np.asarray(a_gs, dtype=np.int64)
    ad = np.asarray(a_deltas, dtype=np.int64)
    bg = np.asarray(b_gs, dtype=np.int64)
    bd = np.asarray(b_deltas, dtype=np.int64)

    # Successor of each A tuple in B: first B value >= it (A wins ties,
    # so equal B tuples still sit ahead of it in merge order).  Successor
    # of each B tuple in A: first A value strictly greater.
    pos_a = np.searchsorted(bv, av, side="left")
    pos_b = np.searchsorted(av, bv, side="right")

    extra_a = np.zeros(na, dtype=np.int64)
    inside = pos_a < nb
    extra_a[inside] = bg[pos_a[inside]] + bd[pos_a[inside]] - 1
    extra_b = np.zeros(nb, dtype=np.int64)
    inside = pos_b < na
    extra_b[inside] = ag[pos_b[inside]] + ad[pos_b[inside]] - 1

    total = na + nb
    idx_a = pos_a + np.arange(na)
    idx_b = pos_b + np.arange(nb)
    merged_v = np.empty(total, dtype=np.result_type(av, bv))
    merged_v[idx_a] = av
    merged_v[idx_b] = bv
    merged_g = np.empty(total, dtype=np.int64)
    merged_g[idx_a] = ag
    merged_g[idx_b] = bg
    merged_d = np.empty(total, dtype=np.int64)
    merged_d[idx_a] = ad + extra_a
    merged_d[idx_b] = bd + extra_b
    return fold_tuples(merged_v, merged_g, merged_d, budget)
