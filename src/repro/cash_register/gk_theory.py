"""GKTheory — the original Greenwald–Khanna algorithm with COMPRESS [15].

This is the analyzed version: insertions use the worst-case
``Delta = floor(2 * eps * n) - 1``, and a periodic COMPRESS pass prunes
tuples according to *bands*.  Bands partition possible ``Delta`` values by
how recently a tuple could have been inserted — tuples with large
``Delta`` (recent, band near 0) are merged in preference to old, small-
``Delta`` tuples (band large), which is what yields the
``O((1/eps) log(eps n))`` worst-case size.

Band ``alpha`` of ``Delta`` given ``p = floor(2 eps n)`` (from [15]):

* ``Delta == p``  -> band 0;
* ``Delta == 0``  -> the maximal band (treated as +infinity);
* otherwise ``alpha`` is the unique value with
  ``p - 2**alpha - (p mod 2**alpha) < Delta <= p - 2**(alpha-1) - (p mod
  2**(alpha-1))``.

COMPRESS runs every ``ceil(1/(2 eps))`` insertions and makes one right-to-
left pass, merging tuple ``i`` into ``i+1`` whenever ``band(Delta_i) <=
band(Delta_{i+1})`` and the combined ``g`` stays within the budget — the
single-pass rendering of the descendant-subtree merge in [15].

The paper's experiments (Section 1.2.1) found this variant loses to
GKAdaptive in practice despite the better worst-case bound; we keep it to
reproduce that comparison.
"""

from __future__ import annotations

import bisect
import math

from repro.cash_register.gk_base import GKBase
from repro.core.base import reject_nan
from repro.core.registry import register
from repro.core.snapshot import snapshottable


def band(delta: int, p: int) -> int:
    """The band index of ``delta`` for threshold ``p`` (see module doc).

    Larger band means older/more valuable tuple.  ``delta == 0`` returns
    ``ceil(log2 p) + 1``, one past every finite band.
    """
    if delta == p:
        return 0
    if delta == 0:
        return (max(p, 1)).bit_length() + 1
    diff = p - delta  # >= 1
    # alpha is the position of the highest band boundary below delta:
    # p - 2**a - (p mod 2**a) < delta  <=>  2**a + (p mod 2**a) > diff.
    alpha = 1
    while (1 << alpha) + (p % (1 << alpha)) <= diff:
        alpha += 1
    return alpha


@snapshottable("gk_theory")
@register("gk_theory")
class GKTheory(GKBase):
    """Original GK01 summary with banded COMPRESS."""

    name = "GKTheory"

    def __init__(self, eps: float) -> None:
        super().__init__(eps)
        self._compress_every = max(1, math.ceil(1.0 / (2.0 * self.eps)))
        self._since_compress = 0

    def update(self, value) -> None:
        reject_nan(value)
        self._n += 1
        i = bisect.bisect_right(self._values, value)
        if i == 0 or i == len(self._values):
            delta = 0  # new minimum or maximum: rank known exactly
        else:
            delta = max(0, self._budget() - 1)
        self._values.insert(i, value)
        self._gs.insert(i, 1)
        self._deltas.insert(i, delta)
        self._since_compress += 1
        if self._since_compress >= self._compress_every:
            self._compress()
            self._since_compress = 0

    def _compress(self) -> None:
        """One right-to-left banded merge pass over the tuple list."""
        if len(self._values) < 3:
            return
        p = self._budget()
        values, gs, deltas = self._values, self._gs, self._deltas
        # Never merge into or past the last tuple's successor slot: the
        # maximum tuple (index len-1) must survive; candidates run from
        # len-2 down to 1 (the minimum tuple at 0 is also kept exact).
        i = len(values) - 2
        while i >= 1:
            if (
                band(deltas[i], p) <= band(deltas[i + 1], p)
                and gs[i] + gs[i + 1] + deltas[i + 1] <= p
            ):
                gs[i + 1] += gs[i]
                del values[i], gs[i], deltas[i]
            i -= 1

    def tuple_count(self) -> int:
        """Number of stored tuples |L|."""
        return len(self._values)
