"""GKArray — the batched, array-backed GK variant (Section 2.1.2, new in
the journal paper).

Incoming elements are buffered; when the buffer fills (its capacity tracks
``Theta(|L|)``), it is sorted and merged into the tuple array in one
linear pass.  During the merge each new element ``v`` receives the tuple
``(v, 1, g_i + Delta_i - 1)`` from its successor *in L* (0 at the
extremes), and every outgoing tuple is dropped on the spot if removable.
Sorting and merging are cache-friendly, which is the entire point: same
asymptotic (amortized) update cost as GKAdaptive, far better constants.

Queries arriving mid-buffer force a flush first, preserving the
"answer at any time" contract.

The merge itself lives in :mod:`repro.cash_register.gk_batch`: a
vectorized numpy kernel for numeric streams (searchsorted positions,
cumsum prefix ranks, fold-as-run-partition) with the original Python
loop kept as the state-equivalent reference for object-dtype streams.
See docs/performance.md for measured throughput.
"""

from __future__ import annotations

import math
import time
from typing import List

import numpy as np

from repro.cash_register.gk_base import GKBase
from repro.cash_register.gk_batch import (
    merge_sorted_run,
    merge_sorted_run_scalar,
)
from repro.core.base import reject_nan, to_element_array
from repro.core.errors import InvalidParameterError
from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span


@snapshottable("gk_array")
@register("gk_array")
class GKArray(GKBase):
    """Buffered GK summary merged in batch mode.

    Args:
        eps: target rank error.
        buffer_factor: buffer capacity as a multiple of the current tuple
            count ``|L|`` (ablation knob; the paper uses Theta(|L|), i.e.
            factor 1).
    """

    name = "GKArray"
    mergeable = True

    def __init__(self, eps: float, buffer_factor: float = 1.0) -> None:
        super().__init__(eps)
        if buffer_factor <= 0:
            raise ValueError(
                f"buffer_factor must be positive, got {buffer_factor!r}"
            )
        self.buffer_factor = float(buffer_factor)
        self._buffer: List = []
        # Never let the buffer collapse to nothing: half the removability
        # window keeps amortization sound even while |L| is tiny.
        self._min_capacity = max(16, math.ceil(1.0 / (2.0 * self.eps)))

    def _capacity(self) -> int:
        return max(
            self._min_capacity,
            int(self.buffer_factor * len(self._values)),
        )

    def update(self, value) -> None:
        reject_nan(value)
        self._buffer.append(value)
        self._n += 1
        if len(self._buffer) >= self._capacity():
            self._flush()

    def extend(self, values) -> None:
        """Bulk insert a batch of elements (numpy fast path).

        State-equivalent to ``for x in values: update(x)``: the buffer
        fills to the same capacity thresholds and flushes at the same
        element boundaries, so the resulting summary is bit-identical to
        elementwise feeding.  The win is per-element overhead — NaN
        checks, appends, and capacity tests are amortized over chunks,
        and capacity-aligned slices of the input are merged directly as
        numpy arrays without ever staging through the Python-list buffer.
        """
        arr = to_element_array(values)
        m = len(arr)
        if arr.dtype == object:
            for value in arr:
                reject_nan(value)
            staged = arr.tolist()
            i = 0
            while i < m:
                take = self._capacity() - len(self._buffer)
                if take <= 0:
                    self._flush()
                    continue
                take = min(take, m - i)
                self._buffer.extend(staged[i : i + take])
                self._n += take
                i += take
                if len(self._buffer) >= self._capacity():
                    self._flush()
            return
        if arr.dtype.kind == "f" and np.isnan(arr).any():
            raise InvalidParameterError(
                "NaN cannot be ranked; filter NaNs before summarizing"
            )
        i = 0
        while i < m:
            take = self._capacity() - len(self._buffer)
            if take <= 0:
                self._flush()
                continue
            if take > m - i:
                # Tail smaller than the remaining capacity: stage it and
                # leave the flush to the next batch/query, exactly as the
                # elementwise loop would.
                self._buffer.extend(arr[i:].tolist())
                self._n += m - i
                break
            if self._buffer:
                # Top up a partially filled buffer to its flush boundary.
                self._buffer.extend(arr[i : i + take].tolist())
                self._n += take
                i += take
                self._flush()
            else:
                # Empty buffer: merge a capacity-sized slice directly —
                # same flush boundary, no list round trip.
                run = arr[i : i + take].copy()
                self._n += take
                i += take
                self._flush_run(run)

    def _prepare_query(self) -> None:
        if self._buffer:
            self._flush()
        if isinstance(self._values, np.ndarray):
            # The vectorized merge leaves the tuple arrays as numpy;
            # normalize to plain lists (and Python ints) lazily, only
            # when a query/inspection path actually needs them.
            self._values = self._values.tolist()
            self._gs = self._gs.tolist()
            self._deltas = self._deltas.tolist()

    def _flush(self) -> None:
        """Sort the buffer and merge it into the tuple arrays (step 2)."""
        with span("cash_register.flush", algo=self.name, n=self._n):
            run = to_element_array(self._buffer)
            if run.dtype == object:
                self._buffer.sort()
                run = self._buffer
            else:
                run.sort()
            self._buffer = []
            self._merge_run(run)

    def _flush_run(self, run: np.ndarray) -> None:
        """Merge a raw (unsorted) numeric slice, bypassing the buffer."""
        with span("cash_register.flush", algo=self.name, n=self._n):
            run.sort()
            self._merge_run(run)

    def _merge_run(self, run) -> None:
        incoming = len(self._values) + len(run)
        start_ns = time.perf_counter_ns()
        budget = self._budget()
        if isinstance(run, np.ndarray) and run.dtype != object:
            merged = merge_sorted_run(
                self._values, self._gs, self._deltas, run, budget
            )
        else:
            merged = merge_sorted_run_scalar(
                self._values, self._gs, self._deltas, run, budget
            )
        self._values, self._gs, self._deltas = merged
        new_values = self._values
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("cash_register.buffer_flush", 1, algo=self.name)
            rec.inc(
                "cash_register.pruned_tuples",
                incoming - len(new_values),
                algo=self.name,
            )
            rec.observe(
                "cash_register.flush_ns",
                time.perf_counter_ns() - start_ns,
                algo=self.name,
            )
            rec.set("cash_register.tuples", len(new_values), algo=self.name)

    def merge(self, other) -> None:
        """Fold another GK summary of the same ``eps`` into this one.

        Both buffers are flushed, the tuple lists are interleaved with
        the summary-merge ``Delta`` accounting, and the union is folded
        at the union budget — the ``eps`` guarantee is preserved (see
        :mod:`repro.cash_register.gk_batch`).  ``other`` should be
        discarded afterwards.
        """
        self._merge_gk(other)

    def tuple_count(self) -> int:
        """Number of tuples |L| (excludes buffered raw elements)."""
        return len(self._values)

    def size_words(self) -> int:
        """Three words per tuple plus one word per allocated buffer slot."""
        return 3 * len(self._values) + self._capacity()
