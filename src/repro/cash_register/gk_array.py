"""GKArray — the batched, array-backed GK variant (Section 2.1.2, new in
the journal paper).

Incoming elements are buffered; when the buffer fills (its capacity tracks
``Theta(|L|)``), it is sorted and merged into the tuple array in one
linear pass.  During the merge each new element ``v`` receives the tuple
``(v, 1, g_i + Delta_i - 1)`` from its successor *in L* (0 at the
extremes), and every outgoing tuple is dropped on the spot if removable.
Sorting and merging are cache-friendly, which is the entire point: same
asymptotic (amortized) update cost as GKAdaptive, far better constants.

Queries arriving mid-buffer force a flush first, preserving the
"answer at any time" contract.
"""

from __future__ import annotations

import math
import time
from typing import List

from repro.cash_register.gk_base import GKBase
from repro.core.base import reject_nan
from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span


@snapshottable("gk_array")
@register("gk_array")
class GKArray(GKBase):
    """Buffered GK summary merged in batch mode.

    Args:
        eps: target rank error.
        buffer_factor: buffer capacity as a multiple of the current tuple
            count ``|L|`` (ablation knob; the paper uses Theta(|L|), i.e.
            factor 1).
    """

    name = "GKArray"

    def __init__(self, eps: float, buffer_factor: float = 1.0) -> None:
        super().__init__(eps)
        if buffer_factor <= 0:
            raise ValueError(
                f"buffer_factor must be positive, got {buffer_factor!r}"
            )
        self.buffer_factor = float(buffer_factor)
        self._buffer: List = []
        # Never let the buffer collapse to nothing: half the removability
        # window keeps amortization sound even while |L| is tiny.
        self._min_capacity = max(16, math.ceil(1.0 / (2.0 * self.eps)))

    def _capacity(self) -> int:
        return max(
            self._min_capacity,
            int(self.buffer_factor * len(self._values)),
        )

    def update(self, value) -> None:
        reject_nan(value)
        self._buffer.append(value)
        self._n += 1
        if len(self._buffer) >= self._capacity():
            self._flush()

    def extend(self, values) -> None:
        """Bulk insert; slightly faster than looping ``update``."""
        for value in values:
            reject_nan(value)
            self._buffer.append(value)
            self._n += 1
            if len(self._buffer) >= self._capacity():
                self._flush()

    def _prepare_query(self) -> None:
        if self._buffer:
            self._flush()

    def _flush(self) -> None:
        """Sort the buffer and merge it into the tuple arrays (step 2)."""
        with span("cash_register.flush", algo=self.name, n=self._n):
            self._flush_merge()

    def _flush_merge(self) -> None:
        incoming = len(self._values) + len(self._buffer)
        start_ns = time.perf_counter_ns()
        self._buffer.sort()
        budget = self._budget()
        values, gs, deltas = self._values, self._gs, self._deltas
        new_values: List = []
        new_gs: List[int] = []
        new_deltas: List[int] = []

        def emit(value, g: int, delta: int) -> None:
            """Append a tuple, folding the previous one into it when the
            previous tuple is removable (backward merge on the fly).  The
            first tuple (the minimum) is never folded: its exact rank is
            what anchors small-rank queries."""
            if len(new_values) >= 2 and new_gs[-1] + g + delta <= budget:
                g += new_gs.pop()
                new_values.pop()
                new_deltas.pop()
            new_values.append(value)
            new_gs.append(g)
            new_deltas.append(delta)

        i = 0  # cursor into the sorted buffer
        buf = self._buffer
        m = len(buf)
        for j, v_l in enumerate(values):
            while i < m and buf[i] < v_l:
                # Successor of buf[i] in L is (v_l, gs[j], deltas[j]).
                delta = gs[j] + deltas[j] - 1
                if not new_values and i == 0:
                    delta = 0  # new minimum: rank known exactly
                emit(buf[i], 1, delta)
                i += 1
            emit(v_l, gs[j], deltas[j])
        while i < m:
            emit(buf[i], 1, 0)  # beyond the old maximum: rank exact
            i += 1

        self._values = new_values
        self._gs = new_gs
        self._deltas = new_deltas
        self._buffer = []
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("cash_register.buffer_flush", 1, algo=self.name)
            rec.inc(
                "cash_register.pruned_tuples",
                incoming - len(new_values),
                algo=self.name,
            )
            rec.observe(
                "cash_register.flush_ns",
                time.perf_counter_ns() - start_ns,
                algo=self.name,
            )
            rec.set("cash_register.tuples", len(new_values), algo=self.name)

    def tuple_count(self) -> int:
        """Number of tuples |L| (excludes buffered raw elements)."""
        return len(self._values)

    def size_words(self) -> int:
        """Three words per tuple plus one word per allocated buffer slot."""
        return 3 * len(self._values) + self._capacity()
