"""FastQDigest — the q-digest of Shrivastava et al. [26].

A q-digest summarizes a multiset over the fixed universe ``[0, u)`` (``u``
a power of two) by counts attached to nodes of the complete binary tree
whose leaves are the universe elements.  The *digest property* keeps the
structure small: any non-root node ``v`` whose count, plus its sibling's,
plus its parent's, totals at most ``floor(n / k)`` is folded into the
parent.  With ``k = ceil(log2(u) / eps)`` the rank error of any query is
at most ``log2(u) * n / k <= eps * n``, and at most ``O(k)`` nodes
survive compression — the ``O((1/eps) log u)`` bound of Table 1.

The "Fast" engineering from the paper: nodes live in a hash map keyed by
their heap index (root = 1, children ``2i``/``2i + 1``, leaf for value
``x`` = ``u + x``); updates drop a count on the leaf in O(1); COMPRESS
runs bottom-up over the map only when the map outgrows a multiple of
``k``, so its linear cost amortizes.

q-digest is deterministic and *mergeable* (it is the only deterministic
mergeable quantile summary [1]): merging adds the count maps and
recompresses.
"""

from __future__ import annotations

import bisect
import math
import time
from collections import defaultdict
from itertools import accumulate as _accumulate
from typing import Dict, List, Tuple

import numpy as np

from repro.core.base import (
    MergeableSketch,
    QuantileSketch,
    validate_eps,
    validate_phi,
    validate_universe_log2,
)
from repro.core.errors import (
    CorruptSummaryError,
    MergeError,
    UniverseOverflowError,
)
from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span


@snapshottable("qdigest")
@register("qdigest")
class QDigest(QuantileSketch, MergeableSketch):
    """q-digest over the universe ``[0, 2**universe_log2)``.

    Args:
        eps: target rank error.
        universe_log2: log2 of the universe size (elements are ints in
            ``[0, 2**universe_log2)``).
        compress_factor: COMPRESS triggers when the node map exceeds
            ``compress_factor * k`` entries (engineering knob; larger
            trades space for speed).
    """

    name = "FastQDigest"
    deterministic = True
    comparison_based = False
    mergeable = True

    def __init__(
        self,
        eps: float,
        universe_log2: int,
        compress_factor: float = 6.0,
    ) -> None:
        self.eps = validate_eps(eps)
        self.universe_log2 = validate_universe_log2(universe_log2)
        if compress_factor < 1.0:
            raise ValueError(
                f"compress_factor must be >= 1, got {compress_factor!r}"
            )
        self.universe = 1 << universe_log2
        self.k = max(1, math.ceil(universe_log2 / self.eps))
        self._compress_at = max(64, int(compress_factor * self.k))
        self._counts: Dict[int, int] = defaultdict(int)
        self._n = 0
        # Powers 2^1 .. 2^L: the count of powers <= node is its depth.
        # Only built when node ids fit int64 (the vectorized batch path's
        # precondition; wider universes use the scalar path throughout).
        if universe_log2 <= 62:
            self._depth_powers = np.array(
                [1 << d for d in range(1, universe_log2 + 1)],
                dtype=np.int64,
            )
        else:
            self._depth_powers = None

    @property
    def n(self) -> int:
        return self._n

    def update(self, value) -> None:
        value = int(value)
        if not (0 <= value < self.universe):
            raise UniverseOverflowError(
                f"value {value!r} outside universe [0, {self.universe})"
            )
        self._counts[self.universe + value] += 1
        self._n += 1
        if len(self._counts) > self._compress_at:
            self.compress()

    def extend(self, values) -> None:
        """Bulk insert via ``np.unique``-bucketed leaf counts.

        Each chunk of the batch is deduplicated into ``(leaf, count)``
        pairs in one vectorized pass, so the per-element Python work
        collapses to one dict update per *distinct* value; COMPRESS runs
        at most once per chunk.  Error-equivalent to elementwise feeding:
        the digest property is restored against the same thresholds, only
        the compression schedule differs.  Non-numeric inputs fall back
        to the scalar loop.  The whole batch is bounds-checked before any
        element is applied.
        """
        arr = np.asarray(values)
        if (
            self.universe_log2 > 62  # node ids would overflow int64
            or arr.ndim != 1
            or arr.dtype == object
            or arr.dtype.kind not in "iuf"
        ):
            for value in values:
                self.update(value)
            return
        m = len(arr)
        if m == 0:
            return
        # int(value) truncates toward zero; astype matches that for the
        # float case.  NaN maps to INT64_MIN and fails the bounds check.
        ints = arr.astype(np.int64, copy=False)
        u = self.universe
        bad = (ints < 0) | (ints >= u)
        if bad.any():
            idx = int(np.argmax(bad))
            raise UniverseOverflowError(
                f"value {arr[idx]!r} outside universe [0, {u})"
            )
        chunk_size = max(self._compress_at, 1 << 16)
        for start in range(0, m, chunk_size):
            chunk = ints[start : start + chunk_size]
            leaves, leaf_counts = np.unique(chunk + u, return_counts=True)
            counts = self._counts  # rebound by the vectorized compress
            for leaf, count in zip(leaves.tolist(), leaf_counts.tolist()):
                counts[leaf] += count
            self._n += len(chunk)
            if len(counts) > self._compress_at:
                self._compress_batch()

    def _compress_batch(self) -> None:
        """COMPRESS via the vectorized sweep (batch-path counterpart of
        :meth:`compress`; same thresholds, same resulting digest)."""
        threshold = self._n // self.k
        if threshold == 0:
            return
        with span("cash_register.compress", algo=self.name, n=self._n):
            before = len(self._counts)
            start_ns = time.perf_counter_ns()
            self._compress_sweep_vectorized(threshold)
            self._record_compress(before, start_ns)

    def _compress_sweep_vectorized(self, threshold: int) -> None:
        """Array formulation of the bottom-up sweep.

        Nodes are grouped by depth; at each depth the per-parent children
        sums come from one ``np.unique`` + ``np.bincount`` pass, parent
        lookups from ``np.searchsorted`` against the (sorted) next level.
        Produces exactly the map the scalar sweep would (the fold decision
        for a parent depends only on its children and its own count, so
        within a depth the decisions are independent).
        """
        counts = self._counts
        total = len(counts)
        nodes = np.fromiter(counts.keys(), dtype=np.int64, count=total)
        cnts = np.fromiter(counts.values(), dtype=np.int64, count=total)
        # depth = bit_length - 1: count the powers of two <= node.
        depths = np.searchsorted(self._depth_powers, nodes, side="right")
        level_nodes: Dict[int, np.ndarray] = {}
        level_cnts: Dict[int, np.ndarray] = {}
        for d in np.unique(depths).tolist():
            sel = depths == d
            ln = nodes[sel]
            order = np.argsort(ln)
            level_nodes[d] = ln[order]
            level_cnts[d] = cnts[sel][order]
        surviving_nodes = []
        surviving_cnts = []
        for d in range(self.universe_log2, 0, -1):
            ln = level_nodes.get(d)
            if ln is None or not len(ln):
                continue
            lc = level_cnts[d]
            parents, inv = np.unique(ln >> 1, return_inverse=True)
            child_sum = np.bincount(
                inv, weights=lc, minlength=len(parents)
            ).astype(np.int64)
            pn = level_nodes.get(d - 1)
            if pn is not None and len(pn):
                pc = level_cnts[d - 1]
                pos = np.clip(np.searchsorted(pn, parents), 0, len(pn) - 1)
                present = pn[pos] == parents
                parent_cnt = np.where(present, pc[pos], 0)
            else:
                pn = pc = None
                present = np.zeros(len(parents), dtype=bool)
                parent_cnt = np.zeros(len(parents), dtype=np.int64)
            combined = child_sum + parent_cnt
            fold = combined <= threshold
            keep = ~fold[inv]
            if keep.any():
                surviving_nodes.append(ln[keep])
                surviving_cnts.append(lc[keep])
            if fold.any():
                if pn is not None:
                    keep_parent = np.ones(len(pn), dtype=bool)
                    keep_parent[pos[present & fold]] = False
                    pn2, pc2 = pn[keep_parent], pc[keep_parent]
                else:
                    pn2 = np.empty(0, dtype=np.int64)
                    pc2 = np.empty(0, dtype=np.int64)
                merged_n = np.concatenate([pn2, parents[fold]])
                merged_c = np.concatenate([pc2, combined[fold]])
                order = np.argsort(merged_n)
                level_nodes[d - 1] = merged_n[order]
                level_cnts[d - 1] = merged_c[order]
        root = level_nodes.get(0)
        if root is not None and len(root):
            surviving_nodes.append(root)
            surviving_cnts.append(level_cnts[0])
        rebuilt: Dict[int, int] = defaultdict(int)
        if surviving_nodes:
            rebuilt.update(
                zip(
                    np.concatenate(surviving_nodes).tolist(),
                    np.concatenate(surviving_cnts).tolist(),
                )
            )
        self._counts = rebuilt

    def compress(self) -> None:
        """Restore the digest property bottom-up (fold light siblings)."""
        threshold = self._n // self.k
        if threshold == 0:
            return
        with span("cash_register.compress", algo=self.name, n=self._n):
            self._compress_sweep(threshold)

    def _compress_sweep(self, threshold: int) -> None:
        before = len(self._counts)
        start_ns = time.perf_counter_ns()
        counts = self._counts
        # Group nodes by depth so we can sweep bottom-up.
        by_depth: Dict[int, set] = defaultdict(set)
        for node in counts:
            by_depth[node.bit_length() - 1].add(node)
        # Sweep every depth from the leaves up (folding creates parents at
        # depths that may have started empty, so iterate them all).
        for depth in range(self.universe_log2, 0, -1):
            for node in list(by_depth[depth]):
                count = counts.get(node)
                if count is None:
                    continue  # already folded via its sibling
                sibling = node ^ 1
                parent = node >> 1
                combined = (
                    count + counts.get(sibling, 0) + counts.get(parent, 0)
                )
                if combined <= threshold:
                    counts.pop(node, None)
                    counts.pop(sibling, None)
                    if combined:
                        counts[parent] = combined
                        by_depth[depth - 1].add(parent)
        self._record_compress(before, start_ns)

    def _record_compress(self, before: int, start_ns: int) -> None:
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("cash_register.compress", 1, algo=self.name)
            rec.inc(
                "cash_register.pruned_tuples",
                max(0, before - len(self._counts)),
                algo=self.name,
            )
            rec.observe(
                "cash_register.compress_ns",
                time.perf_counter_ns() - start_ns,
                algo=self.name,
            )
            rec.set(
                "cash_register.tuples", len(self._counts), algo=self.name
            )

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------

    def _node_interval(self, node: int) -> Tuple[int, int]:
        """The value interval ``[lo, hi]`` covered by heap node ``node``."""
        depth = node.bit_length() - 1
        span_log = self.universe_log2 - depth
        lo = (node - (1 << depth)) << span_log
        return lo, lo + (1 << span_log) - 1

    def _postorder_nodes(self) -> List[Tuple[int, int, int, int]]:
        """Nodes as ``(hi, span, lo, count)`` sorted in the q-digest query
        order: increasing right endpoint, smaller intervals first."""
        out = []
        for node, count in self._counts.items():
            lo, hi = self._node_interval(node)
            out.append((hi, hi - lo, lo, count))
        out.sort()
        return out

    def query(self, phi: float):
        return self.query_batch([phi])[0]

    def query_batch(self, phis) -> list:
        """Batch quantile extraction: one postorder sweep answers every
        ``phi`` (the sweep dominates, so batching is much faster)."""
        for phi in phis:
            validate_phi(phi)
        self._require_nonempty()
        nodes = self._postorder_nodes()
        his = [node[0] for node in nodes]
        cum = list(_accumulate(node[3] for node in nodes))
        out = []
        for phi in phis:
            target = max(1, math.ceil(phi * self._n))
            idx = bisect.bisect_left(cum, target)
            out.append(his[min(idx, len(his) - 1)])
        return out

    def rank(self, value) -> float:
        """Estimated rank: full counts of nodes entirely below ``value``
        plus half the counts of straddling nodes."""
        value = int(value)
        total = 0.0
        for node, count in self._counts.items():
            lo, hi = self._node_interval(node)
            if hi < value:
                total += count
            elif lo < value <= hi:
                total += count / 2.0
        return total

    def merge(self, other: "QDigest") -> None:
        """Fold another q-digest over the same universe into this one."""
        if not isinstance(other, QDigest):
            raise MergeError(f"cannot merge QDigest with {type(other)!r}")
        if other.universe_log2 != self.universe_log2:
            raise MergeError("cannot merge q-digests over different universes")
        if other.eps != self.eps:
            raise MergeError(
                f"QDigest: eps mismatch ({self.eps} vs {other.eps})"
            )
        for node, count in other._counts.items():
            self._counts[node] += count
        self._n += other._n
        self.compress()

    def validate(self) -> "QDigest":
        """Check the digest's structural invariants; return ``self``.

        Verified: every node id addresses a real node of the binary tree
        over ``[0, 2 * universe)``, every stored count is a positive
        integer, and the counts sum to exactly ``n``.  Called by
        :func:`repro.core.snapshot.restore` and after merging payloads
        received over an untrusted channel.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(f"q-digest: bad element count {self._n!r}")
        total = 0
        for node, count in self._counts.items():
            if not isinstance(node, int) or not (1 <= node < 2 * self.universe):
                raise CorruptSummaryError(
                    f"q-digest: node id {node!r} outside tree "
                    f"[1, {2 * self.universe})"
                )
            if not isinstance(count, int) or count <= 0:
                raise CorruptSummaryError(
                    f"q-digest: node {node} has non-positive count {count!r}"
                )
            total += count
        if total != self._n:
            raise CorruptSummaryError(
                f"q-digest: node counts sum to {total}, expected n={self._n}"
            )
        return self

    def node_count(self) -> int:
        """Number of live nodes in the digest."""
        return len(self._counts)

    def size_words(self) -> int:
        """Two words per stored node (id, count)."""
        return 2 * len(self._counts)
