"""repro — streaming quantile algorithms, reproduced.

A production-quality reimplementation of every algorithm studied in
"Quantiles over Data Streams: An Experimental Study" (Wang, Luo, Yi,
Cormode — SIGMOD 2013) and its journal extension (The VLDB Journal,
2016), together with the paper's full experimental harness.

Quick start::

    from repro import make_sketch
    sk = make_sketch("gk_array", eps=1e-3)
    for x in stream:
        sk.update(x)
    median = sk.query(0.5)

Cash-register (insert-only) algorithms: ``gk_adaptive``, ``gk_array``,
``gk_theory``, ``mrl99``, ``random``, ``qdigest``, ``reservoir``.
Turnstile (insert+delete): ``dcm``, ``dcs``, ``post``, ``rss``.
"""

from repro.cash_register import (
    BiasedQuantiles,
    GKAdaptive,
    GKArray,
    GKTheory,
    MRL99,
    QDigest,
    RandomSketch,
    ReservoirSampling,
    SlidingWindowQuantiles,
)
from repro.core import (
    CorruptSummaryError,
    EmptySummaryError,
    ExactQuantiles,
    InvalidParameterError,
    MergeError,
    MergeableSketch,
    NegativeFrequencyError,
    QuantileSketch,
    ReproError,
    SiteUnavailableError,
    TurnstileSketch,
    UniverseOverflowError,
    UnmergeableSketchError,
    algorithms,
    get_algorithm,
    make_sketch,
    merge_shares_seed,
    mergeable_algorithms,
    restore,
    snapshot,
    snapshot_registry,
)
from repro.successors import KLL, SampledGK, TDigest
from repro.turnstile import (
    DCSWithPostProcessing,
    DyadicCountMin,
    DyadicCountSketch,
    PostProcessedSnapshot,
    RandomSubsetSums,
)

__version__ = "1.0.0"

__all__ = [
    "BiasedQuantiles",
    "CorruptSummaryError",
    "DCSWithPostProcessing",
    "DyadicCountMin",
    "DyadicCountSketch",
    "EmptySummaryError",
    "ExactQuantiles",
    "GKAdaptive",
    "GKArray",
    "GKTheory",
    "KLL",
    "InvalidParameterError",
    "MRL99",
    "MergeError",
    "MergeableSketch",
    "NegativeFrequencyError",
    "PostProcessedSnapshot",
    "QDigest",
    "QuantileSketch",
    "RandomSketch",
    "RandomSubsetSums",
    "ReproError",
    "SampledGK",
    "SiteUnavailableError",
    "TDigest",
    "ReservoirSampling",
    "SlidingWindowQuantiles",
    "TurnstileSketch",
    "UniverseOverflowError",
    "UnmergeableSketchError",
    "__version__",
    "algorithms",
    "get_algorithm",
    "make_sketch",
    "merge_shares_seed",
    "mergeable_algorithms",
    "restore",
    "snapshot",
    "snapshot_registry",
]
